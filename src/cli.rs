//! A dependency-free `--flag value` parser for the example and harness
//! binaries.
//!
//! Every experiment binary takes a handful of numeric knobs
//! (`--seed 42 --cascades 3000 …`); this keeps them uniform without
//! pulling an argument-parsing crate into the offline dependency set.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    /// Bare (non-flag) arguments, in order.
    pub positional: Vec<String>,
}

impl Flags {
    /// Parses `--key value` pairs (and bare `--key` as `"true"`) from an
    /// iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut positional = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                values.insert(key.to_string(), value);
            } else {
                positional.push(arg);
            }
        }
        Flags { values, positional }
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Raw string value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether a flag was given (with any value).
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// A `usize` flag with a default.
    ///
    /// # Panics
    /// Panics with a readable message if the value does not parse.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.parsed(key).unwrap_or(default)
    }

    /// A `u64` flag with a default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.parsed(key).unwrap_or(default)
    }

    /// An `f64` flag with a default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.parsed(key).unwrap_or(default)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.values.get(key).map(|v| {
            v.parse().unwrap_or_else(|_| {
                panic!(
                    "flag --{key} expects a {}, got {v:?}",
                    std::any::type_name::<T>()
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = flags(&["--seed", "42", "--cascades", "100"]);
        assert_eq!(f.u64("seed", 0), 42);
        assert_eq!(f.usize("cascades", 0), 100);
    }

    #[test]
    fn defaults_apply_when_missing() {
        let f = flags(&[]);
        assert_eq!(f.usize("cores", 8), 8);
        assert_eq!(f.f64("window", 1.5), 1.5);
    }

    #[test]
    fn bare_flags_are_true() {
        let f = flags(&["--verbose", "--seed", "7"]);
        assert!(f.has("verbose"));
        assert_eq!(f.get("verbose"), Some("true"));
        assert_eq!(f.u64("seed", 0), 7);
    }

    #[test]
    fn positional_arguments_kept() {
        let f = flags(&["run", "--seed", "1", "fast"]);
        assert_eq!(f.positional, vec!["run", "fast"]);
    }

    #[test]
    fn floats_parse() {
        let f = flags(&["--alpha", "0.25"]);
        assert!((f.f64("alpha", 0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expects a")]
    fn bad_value_panics_with_message() {
        flags(&["--seed", "notanumber"]).u64("seed", 0);
    }

    #[test]
    fn adjacent_flags_do_not_consume_each_other() {
        let f = flags(&["--fast", "--seed", "3"]);
        assert_eq!(f.get("fast"), Some("true"));
        assert_eq!(f.u64("seed", 0), 3);
    }
}
