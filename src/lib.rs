//! Workspace root: shared helpers for the runnable examples and the
//! cross-crate integration tests. The library surface of the project
//! itself lives in the [`viralcast`] crate — this crate only hosts the
//! tiny flag parser the example binaries share.

pub mod cli;

pub use viralcast;
