//! End-to-end integration test of the Section VI-A pipeline through
//! the public API only: synthetic world → inference → prediction.

use viralnews::viralcast::prelude::*;

fn small_config() -> SbmExperimentConfig {
    // The quickstart's world: ~20% of cascades escape their community
    // and spread widely, so the top-20% label is a genuine minority
    // class rather than a saturated "everything floods" label.
    SbmExperimentConfig {
        sbm: SbmConfig {
            nodes: 400,
            community_size: 20,
            intra_prob: 0.3,
            inter_prob: 0.002,
        },
        cascades: 450,
        planted: PlantedConfig {
            on_topic: 4.0,
            off_topic: 0.05,
            jitter: 0.5,
        },
        ..SbmExperimentConfig::default()
    }
}

#[test]
fn full_pipeline_beats_naive_baselines() {
    let experiment = SbmExperiment::build(&small_config(), 42);
    let inference = infer_embeddings(experiment.train(), &InferOptions::default());

    let task = PredictionTask {
        window: experiment.config().observation_window,
        folds: 5,
        ..PredictionTask::default()
    };
    let dataset = extract_dataset(&inference.embeddings, experiment.test(), &task);
    let threshold = dataset.top_fraction_threshold(0.2);
    let point = threshold_sweep(&dataset, &[threshold], &task)
        .into_iter()
        .next()
        .expect("top-20% threshold must be non-degenerate");

    // The always-positive classifier has F1 = 2p/(1+p) with p the
    // positive rate (~0.2 ⇒ ~0.33). The pipeline must clearly beat it.
    let p = point.positives as f64 / dataset.sizes.len() as f64;
    let naive = 2.0 * p / (1.0 + p);
    assert!(
        point.f1 > naive + 0.1,
        "pipeline F1 {} vs always-positive {naive}",
        point.f1
    );
}

#[test]
fn embeddings_norms_track_observed_influence() {
    // Nodes that appear early in many cascades should carry larger
    // inferred influence mass than nodes that only ever arrive late.
    let experiment = SbmExperiment::build(&small_config(), 7);
    let inference = infer_embeddings(experiment.train(), &InferOptions::default());

    // Observed out-influence proxy: how often a node is in the first
    // quarter of a cascade.
    let n = experiment.graph().node_count();
    let mut early_counts = vec![0usize; n];
    for c in experiment.train().cascades() {
        let quarter = (c.len() / 4).max(1);
        for inf in &c.infections()[..quarter] {
            early_counts[inf.node.index()] += 1;
        }
    }
    let ranked = top_influencers(&inference.embeddings, n);
    let top_mean: f64 = ranked[..n / 10]
        .iter()
        .map(|r| early_counts[r.node.index()] as f64)
        .sum::<f64>()
        / (n / 10) as f64;
    let rest_mean: f64 = ranked[n / 10..]
        .iter()
        .map(|r| early_counts[r.node.index()] as f64)
        .sum::<f64>()
        / (n - n / 10) as f64;
    assert!(
        top_mean > rest_mean,
        "top influencers seed less than the rest ({top_mean} vs {rest_mean})"
    );
}

#[test]
fn train_test_split_is_disjoint_and_ordered() {
    let experiment = SbmExperiment::build(&small_config(), 9);
    assert_eq!(experiment.train().len(), 300);
    assert_eq!(experiment.test().len(), 150);
    assert_eq!(
        experiment.train().node_count(),
        experiment.test().node_count()
    );
}

#[test]
fn inference_report_is_coherent() {
    let experiment = SbmExperiment::build(&small_config(), 11);
    let inference = infer_embeddings(experiment.train(), &InferOptions::default());
    let report = &inference.report;
    assert!(!report.levels.is_empty());
    // Group counts halve level over level (Algorithm 2).
    for w in report.levels.windows(2) {
        assert_eq!(w[1].groups, w[0].groups.div_ceil(2));
    }
    // The last level is the root (stop_groups defaults to 1).
    assert_eq!(report.levels.last().unwrap().groups, 1);
    assert!(report.total_seconds() > 0.0);
}
