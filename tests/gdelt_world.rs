//! Integration tests of the synthetic GDELT substrate against the
//! Section II data properties the paper reports, exercised through the
//! public API.

use rand::rngs::StdRng;
use rand::SeedableRng;
use viralnews::viralcast::gdelt::query;
use viralnews::viralcast::prelude::*;
use viralnews::viralcast::propagation::stats::{duration_summary, locality_fraction};

fn world_and_events(seed: u64, events: usize) -> (GdeltWorld, MentionTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let world = GdeltWorld::generate(
        GdeltConfig {
            sites: 600,
            ..GdeltConfig::default()
        },
        &mut rng,
    );
    let table = world.simulate_events(events, &mut rng);
    (world, table)
}

#[test]
fn most_cascades_are_regional() {
    // Section II: "most cascades are local".
    let (world, table) = world_and_events(1, 300);
    let cascades = table.to_cascade_set();
    let frac = locality_fraction(&cascades, &world.region_labels());
    assert!(frac > 0.6, "regional locality only {frac}");
}

#[test]
fn events_have_short_life_cycles() {
    // Section II: "most news events are reported … within the first 50
    // hours" of a 72-hour window.
    let (_, table) = world_and_events(2, 300);
    let cascades = table.to_cascade_set();
    let d = duration_summary(&cascades);
    assert!(
        d.median < 50.0,
        "median event duration {} exceeds the 50-hour life cycle",
        d.median
    );
}

#[test]
fn backbone_clusters_are_regional() {
    // Figure 2's qualitative claim, quantified via assortativity.
    // A high threshold keeps only strongly co-reporting pairs, which
    // is exactly the paper's point (50 of 5 000 events).
    let (world, table) = world_and_events(3, 400);
    let events: Vec<u32> = (0..400).collect();
    let backbone = query::coreport_backbone(&table, &events, 12);
    assert!(backbone.graph().edge_count() > 0, "backbone is empty");
    let assort = backbone.label_assortativity(&world.region_labels());
    assert!(assort > 0.7, "intra-region edge fraction only {assort}");
}

#[test]
fn dendrogram_of_cascades_separates_regions() {
    // Figure 1: Ward clustering of cascades aligns with regions.
    use viralnews::viralcast::community::jaccard::pairwise_jaccard_distances;
    use viralnews::viralcast::community::ward::ward_linkage;
    let (world, table) = world_and_events(4, 300);
    let mut rng = StdRng::seed_from_u64(5);
    let sample = query::sample_events(&table, 150, &mut rng);
    let sets = query::site_sets_of(&table, &sample);
    let distances = pairwise_jaccard_distances(&sets);
    let dendrogram = Dendrogram::new(sets.len(), ward_linkage(&distances));
    let labels = dendrogram.cut_k(4);

    // Purity: each cluster should be dominated by one region.
    let regions = world.region_labels();
    let mut pure = 0usize;
    let mut total = 0usize;
    for c in 0..4 {
        let members: Vec<usize> = (0..sets.len()).filter(|&i| labels[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let mut counts = [0usize; 4];
        for &i in &members {
            let mut rc = [0usize; 4];
            for site in &sets[i] {
                rc[regions[site.index()]] += 1;
            }
            counts[(0..4).max_by_key(|&r| rc[r]).unwrap()] += 1;
        }
        pure += counts.iter().max().unwrap();
        total += members.len();
    }
    let purity = pure as f64 / total as f64;
    assert!(purity > 0.7, "cluster/region purity only {purity}");
}

#[test]
fn full_gdelt_prediction_pipeline_runs() {
    // A larger corpus than the other tests: prediction quality needs
    // enough training events for the embeddings to stabilise.
    let mut rng = StdRng::seed_from_u64(6);
    let world = GdeltWorld::generate(
        GdeltConfig {
            sites: 800,
            ..GdeltConfig::default()
        },
        &mut rng,
    );
    let table = world.simulate_events(900, &mut rng);
    let corpus = table.to_cascade_set();
    let (train, test) = corpus.split_at(600);
    let inference = infer_embeddings(&train, &InferOptions::default());
    let window = world.config().observation_hours;
    let task = PredictionTask {
        window,
        early_fraction: 5.0 / window,
        folds: 5,
        ..PredictionTask::default()
    };
    let dataset = extract_dataset(&inference.embeddings, &test, &task);
    let threshold = dataset.top_fraction_threshold(0.2);
    let points = threshold_sweep(&dataset, &[threshold], &task);
    assert!(!points.is_empty(), "degenerate threshold");
    // Beat the always-positive baseline.
    let p = points[0].positives as f64 / dataset.sizes.len() as f64;
    let naive = 2.0 * p / (1.0 + p);
    assert!(
        points[0].f1 > naive + 0.05,
        "GDELT pipeline F1 {} does not beat naive {naive}",
        points[0].f1
    );
}

#[test]
fn query_layer_is_consistent_with_table() {
    let (_, table) = world_and_events(7, 200);
    let top = query::top_sites(&table, 10);
    assert_eq!(top.len(), 10);
    let counts = table.reports_per_site();
    for w in top.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    assert_eq!(top[0].1, *counts.iter().max().unwrap());
}
