//! Crash-recovery integration test: a durable daemon write-ahead-logs
//! every acked ingest, checkpoints published snapshots, and a restart
//! on the same data directory loses nothing that was acked.
//!
//! One test function, three sequential legs (the obs metrics registry
//! is process-global, so later legs assert on deltas, not absolutes):
//!
//! 1. ack N ingests with the trainer effectively off, restart, and the
//!    full batch is back in the trainer's queue with identical serving
//!    behaviour;
//! 2. let the trainer publish + checkpoint, restart, and the snapshot
//!    lineage resumes past v1 with no pending replay;
//! 3. tear the final WAL record mid-byte and recovery keeps every
//!    record before the tear.

use std::sync::Arc;
use std::time::{Duration, Instant};
use viralnews::viralcast::embed::Embeddings;
use viralnews::viralcast::model::{CascadeModel, EmbeddingBackend};
use viralnews::viralcast::propagation::{Cascade, Infection};
use viralnews::viralcast::serve::{self, client};
use viralnews::viralcast::store::{EventStore, WalOptions};

fn embeddings() -> Arc<dyn CascadeModel> {
    Arc::new(EmbeddingBackend::new(Embeddings::from_matrices(
        8,
        1,
        vec![0.4; 8],
        vec![0.6; 8],
    )))
}

fn identity_retrain() -> serve::RetrainFn {
    Box::new(|model, _| Ok(Arc::clone(model)))
}

fn cascade(seed: u32) -> Cascade {
    Cascade::new(vec![
        Infection::new(seed, 0.0),
        Infection::new((seed + 1) % 8, 0.5),
    ])
    .unwrap()
}

/// Renders cascades as a `/v1/ingest` request body.
fn ingest_body(cascades: &[Cascade]) -> String {
    let lists: Vec<String> = cascades
        .iter()
        .map(|c| {
            let events: Vec<String> = c
                .infections()
                .iter()
                .map(|i| format!(r#"{{"node":{},"time":{}}}"#, i.node.0, i.time))
                .collect();
            format!("[{}]", events.join(","))
        })
        .collect();
    format!(r#"{{"cascades":[{}]}}"#, lists.join(","))
}

/// Value of a bare `name value` line in Prometheus text output.
fn metric_value(metrics: &str, name: &str) -> Option<f64> {
    metrics
        .lines()
        .find(|line| line.starts_with(&format!("{name} ")))
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
}

fn durable_config(dir: &std::path::Path, trainer_interval: Duration) -> serve::ServeConfig {
    serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        trainer: serve::TrainerConfig {
            interval: trainer_interval,
            min_batch: 1,
        },
        data_dir: Some(dir.to_path_buf()),
        ..serve::ServeConfig::default()
    }
}

#[test]
fn durable_daemon_recovers_acked_events_and_snapshot_lineage() {
    let base =
        std::env::temp_dir().join(format!("viralcast-store-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Leg 1 — acked ingests survive a restart with the trainer off.
    let dir = base.join("replay");
    let slow = Duration::from_secs(3600);
    let predict_body = r#"{"cascade":[{"node":0,"time":0.0},{"node":1,"time":0.3}],"top":3}"#;
    let cascades: Vec<Cascade> = (0..5u32).map(cascade).collect();

    let handle = serve::start(embeddings(), identity_retrain(), durable_config(&dir, slow))
        .expect("durable daemon boots");
    let addr = handle.local_addr();
    let resp = client::request(&addr, "POST", "/v1/ingest", Some(&ingest_body(&cascades))).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"accepted\":5"), "{}", resp.body);
    let predict_before = client::request(&addr, "POST", "/v1/predict", Some(predict_body)).unwrap();
    assert_eq!(predict_before.status, 200, "{}", predict_before.body);
    // The daemon stops without the trainer ever draining the batch: the
    // WAL is the only place the acked cascades survive.
    handle.shutdown();

    let handle = serve::start(embeddings(), identity_retrain(), durable_config(&dir, slow))
        .expect("daemon reboots on the same data directory");
    let addr = handle.local_addr();
    let recovery = handle.recovery().expect("durable boot reports recovery");
    assert_eq!(recovery.replayed, 5, "every acked ingest replayed");
    assert_eq!(recovery.pending, 5, "nothing was trained, all pending");
    assert_eq!(recovery.truncated_bytes, 0);
    assert_eq!(recovery.snapshot_version, 1);
    assert_eq!(handle.ingest().len(), 5, "batch is back in the queue");

    let metrics = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert!(
        metric_value(&metrics.body, "store_wal_replayed_records").unwrap_or(0.0) >= 5.0,
        "{}",
        metrics.body
    );
    // Identical model, identical serving: no acked event changed what
    // the daemon answers before retraining folds them in.
    let predict_after = client::request(&addr, "POST", "/v1/predict", Some(predict_body)).unwrap();
    assert_eq!(predict_after.body, predict_before.body);
    handle.shutdown();

    // Leg 2 — a published snapshot checkpoints; the restart resumes the
    // lineage with nothing left to replay into the trainer.
    let dir = base.join("lineage");
    let fast = Duration::from_millis(50);
    let handle = serve::start(embeddings(), identity_retrain(), durable_config(&dir, fast))
        .expect("fast-trainer daemon boots");
    let addr = handle.local_addr();
    let resp = client::request(
        &addr,
        "POST",
        "/v1/ingest",
        Some(&ingest_body(&cascades[..1])),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let snapshots = handle.snapshots();
    let deadline = Instant::now() + Duration::from_secs(30);
    while snapshots.version() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let published = snapshots.version();
    assert!(published >= 2, "trainer never published");
    // The checkpoint lands after the publish; wait for the manifest.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !dir.join("manifest").exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(dir.join("manifest").exists(), "checkpoint never landed");
    handle.shutdown();

    let handle = serve::start(embeddings(), identity_retrain(), durable_config(&dir, slow))
        .expect("daemon resumes the checkpointed lineage");
    let addr = handle.local_addr();
    let recovery = handle.recovery().expect("durable boot reports recovery");
    assert!(
        recovery.snapshot_version >= 2,
        "lineage restarted at v{}",
        recovery.snapshot_version
    );
    assert_eq!(recovery.pending, 0, "checkpoint covers the trained batch");
    assert_eq!(handle.snapshots().version(), recovery.snapshot_version);
    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert!(
        health.body.contains(&format!(
            "\"snapshot_version\":{}",
            recovery.snapshot_version
        )),
        "{}",
        health.body
    );
    handle.shutdown();

    // Leg 3 — a torn final record costs exactly the torn record.
    let dir = base.join("torn");
    {
        let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
        store.append_batch(&cascades[..4]).unwrap();
        store.abandon(); // crash: no clean close
    }
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .expect("the crash left a segment behind");
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let (_, recovery) = EventStore::open(&dir, WalOptions::default()).unwrap();
    assert_eq!(recovery.replayed, 3, "records before the tear survive");
    assert_eq!(recovery.pending.len(), 3);
    assert!(recovery.truncated_bytes > 0, "the tear was trimmed");
    assert_eq!(recovery.pending[2], cascades[2]);

    std::fs::remove_dir_all(&base).ok();
}
