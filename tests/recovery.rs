//! Statistical recovery tests: can the inference machinery actually
//! recover the generative structure it claims to model?

use viralnews::viralcast::prelude::*;

/// A local-spreading world where rate structure is identifiable.
fn local_world(seed: u64) -> SbmExperiment {
    SbmExperiment::build(
        &SbmExperimentConfig {
            sbm: SbmConfig {
                nodes: 160,
                community_size: 20,
                intra_prob: 0.4,
                inter_prob: 0.003,
            },
            cascades: 400,
            planted: PlantedConfig {
                on_topic: 1.2,
                off_topic: 0.02,
                jitter: 0.3,
            },
            ..SbmExperimentConfig::default()
        },
        seed,
    )
}

#[test]
fn inferred_rates_correlate_with_ground_truth() {
    let experiment = local_world(1);
    let outcome = infer_embeddings(experiment.train(), &InferOptions::default());
    let truth = experiment.ground_truth();
    let n = experiment.graph().node_count();

    // Correlate modelled vs true rates over sampled ordered pairs.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for u in (0..n).step_by(2) {
        for v in (0..n).step_by(2) {
            if u == v {
                continue;
            }
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            xs.push(truth.rate(u, v));
            ys.push(outcome.embeddings.rate(u, v));
        }
    }
    // Individual pair rates are only identified up to how the MLE
    // splits a node's total incoming rate among predecessors, so the
    // pointwise correlation is moderate even for a well-fit model.
    let corr = pearson(&xs, &ys);
    assert!(corr > 0.4, "rate recovery correlation only {corr}");
}

#[test]
fn mle_recovers_scaled_rate_on_chain_world() {
    // A controlled check of the estimator itself: chains 0→1→2 with a
    // known rate; the product A_0·B_1 must converge near the truth.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use viralnews::viralcast::embed::pgd::{optimize, PgdConfig};
    use viralnews::viralcast::embed::subcascade::IndexedCascade;

    let true_rate = 3.0;
    let mut rng = StdRng::seed_from_u64(2);
    let cascades: Vec<IndexedCascade> = (0..400)
        .map(|_| {
            let d1 = -(1.0 - rng.gen_range(0.0..1.0f64)).ln() / true_rate;
            let d2 = -(1.0 - rng.gen_range(0.0..1.0f64)).ln() / true_rate;
            IndexedCascade {
                rows: vec![0, 1, 2],
                times: vec![0.0, d1, d1 + d2],
            }
        })
        .collect();
    let mut a = vec![0.3; 3];
    let mut b = vec![0.3; 3];
    let config = PgdConfig {
        max_epochs: 800,
        ..PgdConfig::default()
    };
    optimize(&cascades, &mut a, &mut b, 1, &config);
    // v=2's infection can come from node 0 or 1: the MLE matches the
    // total rate A_0 B_2 + A_1 B_2 against the observed delays, and
    // A_0 B_1 against d1.
    let rate01 = a[0] * b[1];
    assert!(
        (rate01 - true_rate).abs() / true_rate < 0.25,
        "recovered rate {rate01} vs true {true_rate}"
    );
}

#[test]
fn slpa_partition_matches_planted_blocks() {
    use viralnews::viralcast::community::metrics::nmi;
    let experiment = local_world(3);
    let outcome = infer_embeddings(experiment.train(), &InferOptions::default());
    let planted = Partition::from_membership(&experiment.planted_membership());
    let score = nmi(&outcome.partition, &planted);
    assert!(score > 0.7, "community NMI only {score}");
}

#[test]
fn influencer_ranking_recovers_boosted_nodes() {
    // Plant a world where nodes 0..8 have triple influence; they must
    // dominate the inferred top-10 ranking.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viralnews::viralcast::graph::sbm;
    use viralnews::viralcast::propagation::{
        planted_embeddings, EmbeddingRates, SimulationConfig, Simulator,
    };

    let sbm_config = SbmConfig {
        nodes: 120,
        community_size: 20,
        intra_prob: 0.4,
        inter_prob: 0.003,
    };
    let mut rng = StdRng::seed_from_u64(4);
    let graph = sbm::generate(&sbm_config, &mut rng);
    let base = planted_embeddings(
        &sbm_config.ground_truth(),
        &PlantedConfig {
            on_topic: 1.2,
            off_topic: 0.02,
            jitter: 0.2,
        },
        &mut rng,
    );
    let k = base.topic_count();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for u in 0..120 {
        let boost = if u < 8 { 3.0 } else { 1.0 };
        for t in 0..k {
            a.push(base.influence(NodeId::new(u))[t] * boost);
            b.push(base.selectivity(NodeId::new(u))[t]);
        }
    }
    let rates = EmbeddingRates::from_matrices(120, k, a, b);
    let sim = Simulator::new(
        &graph,
        rates,
        SimulationConfig {
            observation_window: 1.0,
            min_cascade_size: 2,
            ..SimulationConfig::default()
        },
    );
    let corpus = sim.simulate_corpus(500, &mut rng);

    let outcome = infer_embeddings(&corpus, &InferOptions::default());
    let top10 = top_influencers(&outcome.embeddings, 10);
    let boosted_in_top = top10.iter().filter(|r| r.node.index() < 8).count();
    assert!(
        boosted_in_top >= 5,
        "only {boosted_in_top} of 8 boosted nodes in the inferred top-10"
    );
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum::<f64>().sqrt();
    let sy: f64 = y.iter().map(|b| (b - my).powi(2)).sum::<f64>().sqrt();
    cov / (sx * sy)
}
