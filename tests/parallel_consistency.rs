//! The reproducibility guarantee of the community-parallel design:
//! because workers own disjoint matrix row blocks, the result is
//! bit-identical for every thread count — unlike lock-free approaches.

use viralnews::viralcast::prelude::*;

fn world() -> (CascadeSet, Partition) {
    let experiment = SbmExperiment::build(
        &SbmExperimentConfig {
            sbm: SbmConfig {
                nodes: 240,
                community_size: 20,
                intra_prob: 0.3,
                inter_prob: 0.002,
            },
            cascades: 250,
            ..SbmExperimentConfig::default()
        },
        5,
    );
    let outcome = infer_embeddings(experiment.train(), &InferOptions::default());
    (experiment.train().clone(), outcome.partition)
}

#[test]
fn inference_is_bit_identical_across_thread_counts() {
    let (cascades, partition) = world();
    let config = HierarchicalConfig {
        topics: 6,
        ..HierarchicalConfig::default()
    };
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| infer(&cascades, &partition, &config).0)
    };
    let one = run(1);
    for threads in [2, 3, 8] {
        let multi = run(threads);
        assert_eq!(
            one, multi,
            "results diverged at {threads} threads — write-write isolation broken"
        );
    }
}

#[test]
fn repeated_runs_are_identical() {
    let (cascades, partition) = world();
    let config = HierarchicalConfig::default();
    let a = infer(&cascades, &partition, &config).0;
    let b = infer(&cascades, &partition, &config).0;
    assert_eq!(a, b);
}

#[test]
fn balance_strategies_agree_on_balanced_input() {
    // With equal-size communities the two leaf orders produce the same
    // block structure up to permutation; final likelihoods must agree
    // closely (each block's optimisation is independent).
    let (cascades, partition) = world();
    let leaf = HierarchicalConfig {
        balance: Balance::LeafCount,
        stop_groups: partition.community_count(), // leaves only
        ..HierarchicalConfig::default()
    };
    let node = HierarchicalConfig {
        balance: Balance::NodeCount,
        stop_groups: partition.community_count(),
        ..HierarchicalConfig::default()
    };
    let (_, report_leaf) = infer(&cascades, &partition, &leaf);
    let (_, report_node) = infer(&cascades, &partition, &node);
    let ll_leaf = report_leaf.final_ll();
    let ll_node = report_node.final_ll();
    assert!(
        (ll_leaf - ll_node).abs() < 1e-6 * (1.0 + ll_leaf.abs()),
        "leaf-level likelihood differs across balance strategies: {ll_leaf} vs {ll_node}"
    );
}
