//! Round-trip persistence across the public API: cascade corpora
//! (JSON-lines) and GDELT mention tables (CSV) survive disk.

use rand::rngs::StdRng;
use rand::SeedableRng;
use viralnews::viralcast::prelude::*;
use viralnews::viralcast::propagation::store;

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("viralcast-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cascade_corpus_round_trips_through_disk() {
    let experiment = SbmExperiment::build(
        &SbmExperimentConfig {
            sbm: SbmConfig {
                nodes: 100,
                community_size: 20,
                intra_prob: 0.3,
                inter_prob: 0.002,
            },
            cascades: 40,
            ..SbmExperimentConfig::default()
        },
        1,
    );
    let path = temp_dir().join("corpus.jsonl");
    store::save(experiment.train(), &path).unwrap();
    let loaded = store::load(&path).unwrap();
    assert_eq!(loaded.node_count(), experiment.train().node_count());
    assert_eq!(loaded.cascades(), experiment.train().cascades());
    std::fs::remove_file(&path).ok();
}

#[test]
fn mention_table_round_trips_through_csv() {
    let mut rng = StdRng::seed_from_u64(2);
    let world = GdeltWorld::generate(
        GdeltConfig {
            sites: 300,
            ..GdeltConfig::default()
        },
        &mut rng,
    );
    let table = world.simulate_events(50, &mut rng);
    let path = temp_dir().join("mentions.csv");
    table.save_csv(&path).unwrap();
    let loaded = MentionTable::load_csv(&path).unwrap();
    assert_eq!(loaded.mentions().len(), table.mentions().len());
    // Aggregations agree.
    assert_eq!(loaded.reports_per_event(), table.reports_per_event());
    std::fs::remove_file(&path).ok();
}

#[test]
fn loaded_corpus_supports_inference() {
    // Persistence must not break downstream processing.
    let experiment = SbmExperiment::build(
        &SbmExperimentConfig {
            sbm: SbmConfig {
                nodes: 100,
                community_size: 20,
                intra_prob: 0.3,
                inter_prob: 0.002,
            },
            cascades: 80,
            ..SbmExperimentConfig::default()
        },
        3,
    );
    let path = temp_dir().join("corpus2.jsonl");
    store::save(experiment.train(), &path).unwrap();
    let loaded = store::load(&path).unwrap();

    let direct = infer_embeddings(experiment.train(), &InferOptions::default());
    let via_disk = infer_embeddings(&loaded, &InferOptions::default());
    assert_eq!(direct.embeddings, via_disk.embeddings);
    std::fs::remove_file(&path).ok();
}

#[test]
fn embeddings_serialize_through_json() {
    let mut rng = StdRng::seed_from_u64(4);
    let emb = Embeddings::random(50, 4, 0.05, 0.5, &mut rng);
    let json = serde_json::to_string(&emb).unwrap();
    let back: Embeddings = serde_json::from_str(&json).unwrap();
    assert!(emb.max_abs_diff(&back) < 1e-12);
}
