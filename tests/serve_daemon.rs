//! End-to-end daemon test: boot `viralcast-serve` on an ephemeral port
//! with a real inferred model and the real incremental-update pipeline
//! as its trainer, then drive the full serving loop over HTTP —
//! health, hazard, predict, ingest, hot swap, metrics, shutdown — plus
//! the request-tracing contract: every response carries an
//! `X-Request-Id`, and each request lands as one line in the JSONL
//! access log under that same ID.

use std::time::{Duration, Instant};
use viralnews::viralcast::prelude::*;
use viralnews::viralcast::serve::{self, client};

/// A small world plus embeddings inferred from its training half.
fn trained_world(seed: u64) -> (SbmExperiment, Embeddings) {
    let experiment = SbmExperiment::build(
        &SbmExperimentConfig {
            sbm: SbmConfig {
                nodes: 60,
                community_size: 20,
                intra_prob: 0.4,
                inter_prob: 0.003,
            },
            cascades: 120,
            planted: PlantedConfig {
                on_topic: 1.2,
                off_topic: 0.02,
                jitter: 0.3,
            },
            ..SbmExperimentConfig::default()
        },
        seed,
    );
    let outcome = infer_embeddings(
        experiment.train(),
        &InferOptions {
            topics: 4,
            ..InferOptions::default()
        },
    );
    (experiment, outcome.embeddings)
}

/// The backend's own incremental update as the daemon's trainer.
fn pipeline_retrain() -> serve::RetrainFn {
    Box::new(|current, fresh| current.update(fresh))
}

/// Renders cascades as a `/v1/ingest` request body.
fn ingest_body(cascades: &[viralnews::viralcast::propagation::Cascade]) -> String {
    let lists: Vec<String> = cascades
        .iter()
        .map(|c| {
            let events: Vec<String> = c
                .infections()
                .iter()
                .map(|i| format!(r#"{{"node":{},"time":{}}}"#, i.node.0, i.time))
                .collect();
            format!("[{}]", events.join(","))
        })
        .collect();
    format!(r#"{{"cascades":[{}]}}"#, lists.join(","))
}

/// Value of a bare `name value` line in Prometheus text output.
fn metric_value(metrics: &str, name: &str) -> Option<f64> {
    metrics
        .lines()
        .find(|line| line.starts_with(&format!("{name} ")))
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn daemon_serves_hot_swaps_and_shuts_down() {
    let (experiment, embeddings) = trained_world(11);
    let handle = serve::start(
        std::sync::Arc::new(EmbeddingBackend::new(embeddings)),
        pipeline_retrain(),
        serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            trainer: serve::TrainerConfig {
                interval: Duration::from_millis(50),
                min_batch: 1,
            },
            ..serve::ServeConfig::default()
        },
    )
    .expect("daemon boots on an ephemeral port");
    let addr = handle.local_addr();

    // Health: the boot snapshot is version 1.
    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    assert!(
        health.body.contains("\"snapshot_version\":1"),
        "{}",
        health.body
    );
    assert!(health.body.contains("\"nodes\":60"), "{}", health.body);

    // Hazard: pairwise rates plus survival for a given Δt.
    let hazard = client::request(
        &addr,
        "POST",
        "/v1/hazard",
        Some(r#"{"pairs":[[0,1],[5,40]],"dt":0.5}"#),
    )
    .unwrap();
    assert_eq!(hazard.status, 200, "{}", hazard.body);
    assert!(hazard.body.contains("\"rate\":"), "{}", hazard.body);
    assert!(hazard.body.contains("\"survival\":"), "{}", hazard.body);

    // Predict: next-adopter ranking against snapshot 1.
    let predict_body = r#"{"cascade":[{"node":0,"time":0.0},{"node":1,"time":0.3}],"top":5}"#;
    let predict = client::request(&addr, "POST", "/v1/predict", Some(predict_body)).unwrap();
    assert_eq!(predict.status, 200, "{}", predict.body);
    assert!(
        predict.body.contains("\"snapshot_version\":1"),
        "{}",
        predict.body
    );
    assert!(predict.body.contains("\"candidates\":"), "{}", predict.body);

    // Metrics baseline (for the monotonicity check below).
    let before = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(before.status, 200);
    let requests_before =
        metric_value(&before.body, "serve_http_requests").expect("request counter exposed");
    assert_eq!(
        metric_value(&before.body, "serve_snapshot_version"),
        Some(1.0)
    );

    // Ingest two held-out cascades; the trainer must retrain and
    // publish snapshot 2 while predicts keep flowing.
    let ingest = client::request(
        &addr,
        "POST",
        "/v1/ingest",
        Some(&ingest_body(&experiment.test().cascades()[..2])),
    )
    .unwrap();
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    assert!(ingest.body.contains("\"accepted\":2"), "{}", ingest.body);

    let snapshots = handle.snapshots();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut swapped_version = None;
    while Instant::now() < deadline {
        // Concurrent reads never block on the retrain and never see a
        // torn model: every response is well-formed and carries the
        // version it was computed from.
        let p = client::request(&addr, "POST", "/v1/predict", Some(predict_body)).unwrap();
        assert_eq!(p.status, 200, "{}", p.body);
        assert!(p.body.contains("\"snapshot_version\":"), "{}", p.body);
        if snapshots.version() >= 2 {
            swapped_version = Some(snapshots.version());
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let swapped_version = swapped_version.expect("trainer never published a new snapshot");

    // New requests observe the published version.
    let p = client::request(&addr, "POST", "/v1/predict", Some(predict_body)).unwrap();
    assert!(
        p.body
            .contains(&format!("\"snapshot_version\":{swapped_version}")),
        "{}",
        p.body
    );

    // Influencers come from the swapped model too.
    let inf = client::request(&addr, "GET", "/v1/influencers?top=3", None).unwrap();
    assert_eq!(inf.status, 200, "{}", inf.body);
    assert!(inf.body.contains("\"influencers\":"), "{}", inf.body);

    // Metrics moved monotonically and track the swap.
    let after = client::request(&addr, "GET", "/metrics", None).unwrap();
    let requests_after =
        metric_value(&after.body, "serve_http_requests").expect("request counter exposed");
    assert!(
        requests_after > requests_before,
        "request counter did not advance ({requests_before} → {requests_after})"
    );
    assert_eq!(
        metric_value(&after.body, "serve_snapshot_version"),
        Some(swapped_version as f64)
    );
    assert!(
        metric_value(&after.body, "serve_retrain_runs").unwrap_or(0.0) >= 1.0,
        "{}",
        after.body
    );
    // Latency histograms are exposed per endpoint.
    assert!(
        after
            .body
            .contains("serve_http_latency_ms_v1_predict_bucket{le=\"+Inf\"}"),
        "{}",
        after.body
    );

    // Bad requests surface as HTTP errors, not hangs.
    let bad = client::request(&addr, "POST", "/v1/hazard", Some("{broken")).unwrap();
    assert_eq!(bad.status, 400);
    let missing = client::request(&addr, "GET", "/no-such-endpoint", None).unwrap();
    assert_eq!(missing.status, 404);

    handle.shutdown();
    // The port is released after a clean shutdown.
    assert!(std::net::TcpListener::bind(addr).is_ok());
}

#[test]
fn requests_carry_trace_ids_into_the_access_log() {
    let dir = std::env::temp_dir().join(format!("viralcast-access-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log_path = dir.join("access.jsonl");

    let embeddings = Embeddings::from_matrices(3, 1, vec![0.5, 0.4, 0.3], vec![0.5, 0.5, 0.5]);
    let handle = serve::start(
        std::sync::Arc::new(EmbeddingBackend::new(embeddings)),
        pipeline_retrain(),
        serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            access_log: Some(log_path.clone()),
            ..serve::ServeConfig::default()
        },
    )
    .expect("daemon boots with an access log");
    let addr = handle.local_addr();

    // A caller-supplied X-Request-Id is echoed verbatim…
    let resp = client::request_with_headers(
        &addr,
        "GET",
        "/healthz",
        None,
        &[("X-Request-Id", "trace-e2e-1")],
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-request-id"), Some("trace-e2e-1"));
    // …and the widened health body reports build info, uptime, lag and
    // per-endpoint quantiles.
    for needle in [
        "\"build_info\":{\"version\":",
        "\"uptime_seconds\":",
        "\"wal_pending_records\":null",
        "\"ingest_to_publish_ms\":",
        "\"endpoints\":",
    ] {
        assert!(
            resp.body.contains(needle),
            "{needle} missing: {}",
            resp.body
        );
    }

    // Requests without an ID get a generated one.
    let generated = client::request(&addr, "POST", "/v1/hazard", Some(r#"{"pairs":[[0,1]]}"#))
        .unwrap()
        .header("x-request-id")
        .expect("generated trace id")
        .to_string();
    assert!(!generated.is_empty());
    assert_ne!(generated, "trace-e2e-1");

    handle.shutdown();

    // Both requests landed in the access log under their trace IDs.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    assert!(log.lines().count() >= 2, "{log}");
    for needle in [
        "viralcast-access-log/v1",
        "\"trace_id\":\"trace-e2e-1\"",
        "\"path\":\"/healthz\"",
        "\"path\":\"/v1/hazard\"",
        "\"latency_us\":",
        "\"snapshot_version\":",
    ] {
        assert!(log.contains(needle), "{needle} missing from {log}");
    }
    assert!(
        log.contains(&format!("\"trace_id\":\"{generated}\"")),
        "generated id {generated} missing from {log}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
