#!/usr/bin/env bash
# Local CI: the gate every PR must pass.
#
#   scripts/ci.sh            # full sweep
#   scripts/ci.sh --no-build # skip the release build (quick lint loop)
set -euo pipefail

cd "$(dirname "$0")/.."

build=1
for arg in "$@"; do
    case "$arg" in
        --no-build) build=0 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

# Boots the released daemon against a tiny fixture model on a random
# port, polls /healthz, scrapes /metrics, and asserts a clean SIGINT
# shutdown (exit 0).
smoke_serve() {
    local tmp fixture log pid port health metrics
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    log="$tmp/serve.log"
    printf '%s' '{"format":"viralcast-embeddings-v1","n":3,"k":2,"a":[0.5,0.1,0.2,0.6,0.3,0.3],"b":[0.4,0.2,0.1,0.5,0.2,0.4]}' >"$fixture"

    target/release/viralcast serve --embeddings "$fixture" \
        --addr 127.0.0.1:0 --workers 2 >"$log" 2>&1 &
    pid=$!

    # The daemon picks an ephemeral port and reports it on stdout.
    port=""
    for _ in $(seq 1 100); do
        port="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$log")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "daemon never reported its port" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    http_get() {
        exec 3<>"/dev/tcp/127.0.0.1/$1"
        printf 'GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' "$2" >&3
        cat <&3
        exec 3>&- 3<&-
    }

    health=""
    for _ in $(seq 1 50); do
        health="$(http_get "$port" /healthz 2>/dev/null || true)"
        case "$health" in *'"status":"ok"'*) break ;; esac
        sleep 0.1
    done
    case "$health" in
        *'"status":"ok"'*) ;;
        *)
            echo "healthz never became ok" >&2
            cat "$log" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac

    metrics="$(http_get "$port" /metrics)"
    case "$metrics" in
        *serve_snapshot_version*) ;;
        *)
            echo "/metrics is missing serve_snapshot_version" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac

    kill -INT "$pid"
    wait "$pid" # a clean shutdown exits 0; set -e fails the sweep otherwise
    echo "serve smoke test OK (port $port)"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
if [ "$build" -eq 1 ]; then
    run cargo build --release
fi
run cargo test -q
if [ "$build" -eq 1 ]; then
    run smoke_serve
fi

echo
echo "CI OK"
