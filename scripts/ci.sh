#!/usr/bin/env bash
# Local CI: the gate every PR must pass.
#
#   scripts/ci.sh            # full sweep
#   scripts/ci.sh --no-build # skip the release build (quick lint loop)
set -euo pipefail

cd "$(dirname "$0")/.."

build=1
for arg in "$@"; do
    case "$arg" in
        --no-build) build=0 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf 'GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' "$2" >&3
    cat <&3
    exec 3>&- 3<&-
}

http_post() {
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf 'POST %s HTTP/1.1\r\nHost: smoke\r\nContent-Type: application/json\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "$2" "${#3}" "$3" >&3
    cat <&3
    exec 3>&- 3<&-
}

write_fixture() {
    printf '%s' '{"format":"viralcast-embeddings-v1","n":3,"k":2,"a":[0.5,0.1,0.2,0.6,0.3,0.3],"b":[0.4,0.2,0.1,0.5,0.2,0.4]}' >"$1"
}

# Polls the daemon's log for the ephemeral port it reports on stdout;
# prints the port, or nothing on timeout.
await_port() {
    local port=""
    for _ in $(seq 1 100); do
        port="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$1")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    printf '%s' "$port"
}

# Polls /healthz until it answers ok; prints the last response.
await_health() {
    local health=""
    for _ in $(seq 1 50); do
        health="$(http_get "$1" /healthz 2>/dev/null || true)"
        case "$health" in *'"status":"ok"'*) break ;; esac
        sleep 0.1
    done
    printf '%s' "$health"
}

# Boots the released daemon against a tiny fixture model on a random
# port, polls /healthz, scrapes /metrics, and asserts a clean SIGINT
# shutdown (exit 0).
smoke_serve() {
    local tmp fixture log pid port health metrics
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    log="$tmp/serve.log"
    write_fixture "$fixture"

    target/release/viralcast serve --embeddings "$fixture" \
        --addr 127.0.0.1:0 --workers 2 >"$log" 2>&1 &
    pid=$!

    port="$(await_port "$log")"
    if [ -z "$port" ]; then
        echo "daemon never reported its port" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    health="$(await_health "$port")"
    case "$health" in
        *'"status":"ok"'*) ;;
        *)
            echo "healthz never became ok" >&2
            cat "$log" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac

    metrics="$(http_get "$port" /metrics)"
    case "$metrics" in
        *serve_snapshot_version*) ;;
        *)
            echo "/metrics is missing serve_snapshot_version" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac

    kill -INT "$pid"
    wait "$pid" # a clean shutdown exits 0; set -e fails the sweep otherwise
    echo "serve smoke test OK (port $port)"
}

# Kill-loop resilience: `viralcast chaos` spawns a durable serve child,
# drives it with sequence-tagged ingests, SIGKILLs and restarts it three
# times, then replays the data dir and exits non-zero on any acked-event
# loss or 5xx-after-recovery. The leg additionally requires the report
# to exist, parse, and record the full kill-cycle count with zero loss.
smoke_chaos() {
    local tmp fixture bench
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    bench="$tmp/BENCH_chaos.json"
    write_fixture "$fixture"

    if ! target/release/viralcast chaos --embeddings "$fixture" \
        --data-dir "$tmp/data" --workers 2 --cycles 3 --steady 1 \
        --recovery-timeout 30 --seed 7 --out "$bench"; then
        echo "chaos run failed (acked loss, 5xx after recovery, or a dead daemon)" >&2
        [ -s "$bench" ] && cat "$bench" >&2
        return 1
    fi

    if [ ! -s "$bench" ]; then
        echo "chaos produced no $bench" >&2
        return 1
    fi
    # Parse strictly when a JSON parser is around; schema-grep otherwise.
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$bench" >/dev/null
    fi
    if ! grep -q '"schema": *"viralcast-run-report/v1"' "$bench"; then
        echo "BENCH_chaos.json is missing the run-report schema" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"kill_cycles": *3\b' "$bench"; then
        echo "chaos completed fewer than 3 kill cycles" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"missing": *0\b' "$bench"; then
        echo "chaos recovered fewer records than were acked" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"post_recovery_5xx": *0\b' "$bench"; then
        echo "chaos observed 5xx responses after recovery" >&2
        cat "$bench" >&2
        return 1
    fi
    echo "chaos smoke test OK (3 kill cycles, zero acked loss)"
}

# Perf harness smoke: boot the daemon with an access log, run a short
# loadgen burst, and assert BENCH_http.json exists, parses, counts a
# non-zero number of requests, and saw zero 5xx responses.
smoke_loadgen() {
    local tmp fixture log pid port bench
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    log="$tmp/serve.log"
    bench="$tmp/BENCH_http.json"
    write_fixture "$fixture"

    target/release/viralcast serve --embeddings "$fixture" \
        --addr 127.0.0.1:0 --workers 2 \
        --access-log "$tmp/access.jsonl" >"$log" 2>&1 &
    pid=$!

    port="$(await_port "$log")"
    if [ -z "$port" ] || ! await_health "$port" | grep -q '"status":"ok"'; then
        echo "daemon never became healthy for loadgen" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    if ! target/release/viralcast loadgen --addr "127.0.0.1:$port" \
        --workers 2 --warmup 0.5 --duration 2 --seed 7 --out "$bench"; then
        echo "loadgen run failed" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    kill -INT "$pid"
    wait "$pid"

    if [ ! -s "$bench" ]; then
        echo "loadgen produced no $bench" >&2
        return 1
    fi
    # Parse strictly when a JSON parser is around; schema-grep otherwise.
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$bench" >/dev/null
    fi
    if ! grep -q '"schema": *"viralcast-run-report/v1"' "$bench"; then
        echo "BENCH_http.json is missing the run-report schema" >&2
        cat "$bench" >&2
        return 1
    fi
    if grep -q '"total_requests": *0\b' "$bench"; then
        echo "loadgen measured zero requests" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"http_5xx": *0\b' "$bench"; then
        echo "loadgen observed 5xx responses" >&2
        cat "$bench" >&2
        return 1
    fi
    # The access log actually recorded the burst's trace IDs.
    if ! grep -q '"trace_id":"lg-' "$tmp/access.jsonl"; then
        echo "access log is missing loadgen trace IDs" >&2
        head "$tmp/access.jsonl" >&2
        return 1
    fi
    echo "loadgen smoke test OK (port $port)"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
if [ "$build" -eq 1 ]; then
    # --workspace: a root-package build compiles member *libs* but not the
    # `viralcast` bin the smoke tests drive.
    run cargo build --release --workspace
fi
run cargo test -q --workspace
if [ "$build" -eq 1 ]; then
    run smoke_serve
    run smoke_chaos
    run smoke_loadgen
fi

echo
echo "CI OK"
