#!/usr/bin/env bash
# Local CI: the gate every PR must pass.
#
#   scripts/ci.sh            # full sweep
#   scripts/ci.sh --no-build # skip the release build (quick lint loop)
set -euo pipefail

cd "$(dirname "$0")/.."

build=1
for arg in "$@"; do
    case "$arg" in
        --no-build) build=0 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
if [ "$build" -eq 1 ]; then
    run cargo build --release
fi
run cargo test -q

echo
echo "CI OK"
