#!/usr/bin/env bash
# Local CI: the gate every PR must pass.
#
#   scripts/ci.sh            # full sweep
#   scripts/ci.sh --no-build # skip the release build (quick lint loop)
set -euo pipefail

cd "$(dirname "$0")/.."

build=1
for arg in "$@"; do
    case "$arg" in
        --no-build) build=0 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf 'GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' "$2" >&3
    cat <&3
    exec 3>&- 3<&-
}

http_post() {
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf 'POST %s HTTP/1.1\r\nHost: smoke\r\nContent-Type: application/json\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "$2" "${#3}" "$3" >&3
    cat <&3
    exec 3>&- 3<&-
}

write_fixture() {
    printf '%s' '{"format":"viralcast-embeddings-v1","n":3,"k":2,"a":[0.5,0.1,0.2,0.6,0.3,0.3],"b":[0.4,0.2,0.1,0.5,0.2,0.4]}' >"$1"
}

# A tiny cascade corpus (JSON-lines, viralcast-cascades-v1) for the
# netinf backend to fit at boot.
write_corpus_fixture() {
    {
        printf '%s\n' '{"format":"viralcast-cascades-v1","node_count":3,"cascade_count":4}'
        printf '%s\n' '{"infections":[{"node":0,"time":0.0},{"node":1,"time":0.4},{"node":2,"time":0.9}]}'
        printf '%s\n' '{"infections":[{"node":1,"time":0.0},{"node":2,"time":0.3}]}'
        printf '%s\n' '{"infections":[{"node":0,"time":0.0},{"node":2,"time":0.5}]}'
        printf '%s\n' '{"infections":[{"node":2,"time":0.0},{"node":0,"time":0.7},{"node":1,"time":1.1}]}'
    } >"$1"
}

# Polls the daemon's log for the ephemeral port it reports on stdout;
# prints the port, or nothing on timeout.
await_port() {
    local port=""
    for _ in $(seq 1 100); do
        port="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$1")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    printf '%s' "$port"
}

# Polls /healthz until it answers ok; prints the last response.
await_health() {
    local health=""
    for _ in $(seq 1 50); do
        health="$(http_get "$1" /healthz 2>/dev/null || true)"
        case "$health" in *'"status":"ok"'*) break ;; esac
        sleep 0.1
    done
    printf '%s' "$health"
}

# Boots the released daemon against a tiny fixture model on a random
# port, polls /healthz, scrapes /metrics, and asserts a clean SIGINT
# shutdown (exit 0).
smoke_serve() {
    local tmp fixture log pid port health metrics
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    log="$tmp/serve.log"
    write_fixture "$fixture"

    target/release/viralcast serve --embeddings "$fixture" \
        --addr 127.0.0.1:0 --workers 2 >"$log" 2>&1 &
    pid=$!

    port="$(await_port "$log")"
    if [ -z "$port" ]; then
        echo "daemon never reported its port" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    health="$(await_health "$port")"
    case "$health" in
        *'"status":"ok"'*) ;;
        *)
            echo "healthz never became ok" >&2
            cat "$log" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac

    metrics="$(http_get "$port" /metrics)"
    case "$metrics" in
        *serve_snapshot_version*) ;;
        *)
            echo "/metrics is missing serve_snapshot_version" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac

    kill -INT "$pid"
    wait "$pid" # a clean shutdown exits 0; set -e fails the sweep otherwise
    echo "serve smoke test OK (port $port)"
}

# Kill-loop resilience: `viralcast chaos` spawns a durable serve child,
# drives it with sequence-tagged ingests, SIGKILLs and restarts it three
# times, then replays the data dir and exits non-zero on any acked-event
# loss or 5xx-after-recovery. The leg additionally requires the report
# to exist, parse, and record the full kill-cycle count with zero loss.
smoke_chaos() {
    local tmp fixture bench
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    bench="$tmp/BENCH_chaos.json"
    write_fixture "$fixture"

    if ! target/release/viralcast chaos --embeddings "$fixture" \
        --data-dir "$tmp/data" --workers 2 --cycles 3 --steady 1 \
        --recovery-timeout 30 --seed 7 --out "$bench"; then
        echo "chaos run failed (acked loss, 5xx after recovery, or a dead daemon)" >&2
        [ -s "$bench" ] && cat "$bench" >&2
        return 1
    fi

    if [ ! -s "$bench" ]; then
        echo "chaos produced no $bench" >&2
        return 1
    fi
    # Parse strictly when a JSON parser is around; schema-grep otherwise.
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$bench" >/dev/null
    fi
    if ! grep -q '"schema": *"viralcast-run-report/v1"' "$bench"; then
        echo "BENCH_chaos.json is missing the run-report schema" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"kill_cycles": *3\b' "$bench"; then
        echo "chaos completed fewer than 3 kill cycles" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"missing": *0\b' "$bench"; then
        echo "chaos recovered fewer records than were acked" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"post_recovery_5xx": *0\b' "$bench"; then
        echo "chaos observed 5xx responses after recovery" >&2
        cat "$bench" >&2
        return 1
    fi
    echo "chaos smoke test OK (3 kill cycles, zero acked loss)"
}

# Backend abstraction smoke: boot the released daemon with the NETINF
# greedy backend fit from a tiny corpus, require /healthz and /metrics
# to report the backend id, hit all four /v1 endpoints, then run
# bench-backends and assert BENCH_backends.json scores both registered
# backends.
smoke_backends() {
    local tmp corpus log pid port reply bench
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    corpus="$tmp/corpus.jsonl"
    log="$tmp/serve.log"
    bench="$tmp/BENCH_backends.json"
    write_corpus_fixture "$corpus"

    target/release/viralcast serve --backend netinf --corpus "$corpus" \
        --addr 127.0.0.1:0 --workers 2 >"$log" 2>&1 &
    pid=$!

    port="$(await_port "$log")"
    if [ -z "$port" ] || ! await_health "$port" | grep -q '"status":"ok"'; then
        echo "netinf daemon never became healthy" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi
    if ! http_get "$port" /healthz | grep -q '"backend":"netinf"'; then
        echo "/healthz does not report the netinf backend" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi
    if ! http_get "$port" /metrics | grep -q 'viralcast_backend_info{backend="netinf"} 1'; then
        echo "/metrics is missing the viralcast_backend_info gauge" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    reply="$(http_post "$port" /v1/hazard '{"pairs":[[0,1]],"dt":1.0}')"
    case "$reply" in
        *'HTTP/1.1 200'*'"rate":'*) ;;
        *)
            echo "netinf /v1/hazard failed: $reply" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac
    reply="$(http_post "$port" /v1/predict '{"cascade":[{"node":0,"time":0.0}],"top":3}')"
    case "$reply" in
        *'HTTP/1.1 200'*'"candidates":'*) ;;
        *)
            echo "netinf /v1/predict failed: $reply" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac
    reply="$(http_get "$port" '/v1/influencers?top=3')"
    case "$reply" in
        *'HTTP/1.1 200'*'"influencers":'*) ;;
        *)
            echo "netinf /v1/influencers failed: $reply" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac
    reply="$(http_post "$port" /v1/ingest '{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":0.6}]]}')"
    case "$reply" in
        *'HTTP/1.1 200'*'"accepted":1'*) ;;
        *)
            echo "netinf /v1/ingest failed: $reply" >&2
            kill "$pid" 2>/dev/null || true
            return 1
            ;;
    esac

    kill -INT "$pid"
    wait "$pid" # a clean shutdown exits 0; set -e fails the sweep otherwise

    if ! target/release/viralcast bench-backends --nodes 60 --cascades 40 \
        --topics 2 --top 5 --scan-iterations 4 --seed 7 --out "$bench"; then
        echo "bench-backends failed" >&2
        return 1
    fi
    if [ ! -s "$bench" ]; then
        echo "bench-backends produced no $bench" >&2
        return 1
    fi
    # Parse strictly when a JSON parser is around; schema-grep otherwise.
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$bench" >/dev/null
    fi
    if ! grep -q '"schema": *"viralcast-run-report/v1"' "$bench"; then
        echo "BENCH_backends.json is missing the run-report schema" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"backend": *"embed"' "$bench"; then
        echo "BENCH_backends.json is missing the embed backend" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"backend": *"netinf"' "$bench"; then
        echo "BENCH_backends.json is missing the netinf backend" >&2
        cat "$bench" >&2
        return 1
    fi
    echo "backends smoke test OK (netinf serve on port $port, both backends benched)"
}

# Perf harness smoke: boot the daemon with an access log, run a short
# loadgen burst, and assert BENCH_http.json exists, parses, counts a
# non-zero number of requests, and saw zero 5xx responses.
smoke_loadgen() {
    local tmp fixture log pid port bench
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    log="$tmp/serve.log"
    bench="$tmp/BENCH_http.json"
    write_fixture "$fixture"

    target/release/viralcast serve --embeddings "$fixture" \
        --addr 127.0.0.1:0 --workers 2 \
        --access-log "$tmp/access.jsonl" >"$log" 2>&1 &
    pid=$!

    port="$(await_port "$log")"
    if [ -z "$port" ] || ! await_health "$port" | grep -q '"status":"ok"'; then
        echo "daemon never became healthy for loadgen" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    if ! target/release/viralcast loadgen --addr "127.0.0.1:$port" \
        --workers 2 --warmup 0.5 --duration 2 --seed 7 --out "$bench"; then
        echo "loadgen run failed" >&2
        cat "$log" >&2
        kill "$pid" 2>/dev/null || true
        return 1
    fi

    kill -INT "$pid"
    wait "$pid"

    if [ ! -s "$bench" ]; then
        echo "loadgen produced no $bench" >&2
        return 1
    fi
    # Parse strictly when a JSON parser is around; schema-grep otherwise.
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$bench" >/dev/null
    fi
    if ! grep -q '"schema": *"viralcast-run-report/v1"' "$bench"; then
        echo "BENCH_http.json is missing the run-report schema" >&2
        cat "$bench" >&2
        return 1
    fi
    if grep -q '"total_requests": *0\b' "$bench"; then
        echo "loadgen measured zero requests" >&2
        cat "$bench" >&2
        return 1
    fi
    if ! grep -q '"http_5xx": *0\b' "$bench"; then
        echo "loadgen observed 5xx responses" >&2
        cat "$bench" >&2
        return 1
    fi
    # The access log actually recorded the burst's trace IDs.
    if ! grep -q '"trace_id":"lg-' "$tmp/access.jsonl"; then
        echo "access log is missing loadgen trace IDs" >&2
        head "$tmp/access.jsonl" >&2
        return 1
    fi
    echo "loadgen smoke test OK (port $port)"
}

# Sharded-cluster smoke: a 2-shard round-robin manifest, two shard
# daemons, and the scatter-gather router in front. A short loadgen burst
# through the router must see zero 5xx; after SIGKILLing one shard the
# router must keep answering /v1/predict with HTTP 200 and
# "partial":true — any 5xx during the outage fails the leg.
smoke_cluster() {
    local tmp fixture manifest bench port0 port1 rport pid0 pid1 rpid reply partial
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    manifest="$tmp/cluster-manifest.json"
    bench="$tmp/BENCH_cluster_http.json"
    write_fixture "$fixture"

    # The manifest names fixed shard ports up front; $RANDOM keeps
    # reruns from colliding.
    port0=$((20000 + RANDOM % 20000))
    port1=$((port0 + 1))
    if ! target/release/viralcast cluster-plan --out "$manifest" \
        --shards "127.0.0.1:$port0,127.0.0.1:$port1"; then
        echo "cluster-plan failed" >&2
        return 1
    fi

    target/release/viralcast serve --embeddings "$fixture" --workers 2 \
        --shard 0/2 --cluster-manifest "$manifest" >"$tmp/shard0.log" 2>&1 &
    pid0=$!
    target/release/viralcast serve --embeddings "$fixture" --workers 2 \
        --shard 1/2 --cluster-manifest "$manifest" >"$tmp/shard1.log" 2>&1 &
    pid1=$!
    target/release/viralcast router --cluster-manifest "$manifest" \
        --addr 127.0.0.1:0 --probe-interval 0.2 >"$tmp/router.log" 2>&1 &
    rpid=$!

    rport="$(await_port "$tmp/router.log")"
    # The router reports "ok" only once its prober has seen every shard
    # healthy, so one await covers the whole cluster.
    if [ -z "$rport" ] || ! await_health "$rport" | grep -q '"status":"ok"'; then
        echo "cluster never became healthy" >&2
        cat "$tmp/router.log" "$tmp/shard0.log" "$tmp/shard1.log" >&2
        kill "$pid0" "$pid1" "$rpid" 2>/dev/null || true
        return 1
    fi

    if ! target/release/viralcast loadgen --addr "127.0.0.1:$rport" \
        --workers 2 --warmup 0.5 --duration 2 --seed 7 --out "$bench"; then
        echo "loadgen through the router failed" >&2
        kill "$pid0" "$pid1" "$rpid" 2>/dev/null || true
        return 1
    fi
    if ! grep -q '"http_5xx": *0\b' "$bench"; then
        echo "router answered 5xx under healthy-cluster load" >&2
        cat "$bench" >&2
        kill "$pid0" "$pid1" "$rpid" 2>/dev/null || true
        return 1
    fi

    # One shard dies hard; the router must degrade, not fail.
    kill -9 "$pid1"
    partial=0
    for _ in $(seq 1 25); do
        reply="$(http_post "$rport" /v1/predict \
            '{"cascade":[{"node":0,"time":0.0}],"top":3}' 2>/dev/null || true)"
        case "$reply" in
            *'HTTP/1.1 5'*)
                echo "router answered 5xx while a shard was down" >&2
                echo "$reply" >&2
                kill "$pid0" "$rpid" 2>/dev/null || true
                return 1
                ;;
            *'"partial":true'*) partial=1; break ;;
        esac
        sleep 0.2
    done
    if [ "$partial" -ne 1 ]; then
        echo "router never served a partial response during the outage" >&2
        cat "$tmp/router.log" >&2
        kill "$pid0" "$rpid" 2>/dev/null || true
        return 1
    fi

    kill -INT "$pid0" "$rpid"
    wait "$pid0" # clean SIGINT shutdowns exit 0; set -e fails otherwise
    wait "$rpid"
    echo "cluster smoke test OK (router port $rport, partial answer after shard kill)"
}

# Replication smoke: a leader and one `serve --follow` follower. The
# follower must boot from the leader's snapshot stream, refuse writes
# with a 409 leader redirect, and — after the leader is SIGKILLed —
# keep answering reads with non-partial HTTP 200s from its replicated
# model.
smoke_replica() {
    local tmp fixture lport fport lpid fpid reply ok
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    fixture="$tmp/embeddings.json"
    write_fixture "$fixture"

    target/release/viralcast serve --embeddings "$fixture" \
        --addr 127.0.0.1:0 --workers 2 >"$tmp/leader.log" 2>&1 &
    lpid=$!
    lport="$(await_port "$tmp/leader.log")"
    if [ -z "$lport" ] || ! await_health "$lport" | grep -q '"status":"ok"'; then
        echo "leader never became healthy" >&2
        cat "$tmp/leader.log" >&2
        kill "$lpid" 2>/dev/null || true
        return 1
    fi

    target/release/viralcast serve --follow "127.0.0.1:$lport" \
        --addr 127.0.0.1:0 --workers 2 --poll-interval 0.1 \
        >"$tmp/follower.log" 2>&1 &
    fpid=$!
    fport="$(await_port "$tmp/follower.log")"
    if [ -z "$fport" ] || ! await_health "$fport" | grep -q '"status":"ok"'; then
        echo "follower never became healthy" >&2
        cat "$tmp/follower.log" "$tmp/leader.log" >&2
        kill "$lpid" "$fpid" 2>/dev/null || true
        return 1
    fi
    # A healthy, caught-up follower reports its lag.
    if ! http_get "$fport" /healthz | grep -q '"replica_lag_versions":0'; then
        echo "follower /healthz is missing replica_lag_versions:0" >&2
        http_get "$fport" /healthz >&2 || true
        kill "$lpid" "$fpid" 2>/dev/null || true
        return 1
    fi

    # Writes are refused with a redirect to the leader, never accepted.
    reply="$(http_post "$fport" /v1/ingest \
        '{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":0.5}]]}')"
    case "$reply" in
        *'HTTP/1.1 409'*"Location: http://127.0.0.1:$lport/v1/ingest"*) ;;
        *)
            echo "follower ingest did not 409-redirect to the leader: $reply" >&2
            kill "$lpid" "$fpid" 2>/dev/null || true
            return 1
            ;;
    esac

    # The leader dies hard; the follower keeps serving reads.
    kill -9 "$lpid"
    ok=0
    for _ in $(seq 1 25); do
        reply="$(http_post "$fport" /v1/predict \
            '{"cascade":[{"node":0,"time":0.0}],"top":3}' 2>/dev/null || true)"
        case "$reply" in
            *'HTTP/1.1 5'*)
                echo "follower answered 5xx after the leader died" >&2
                echo "$reply" >&2
                kill "$fpid" 2>/dev/null || true
                return 1
                ;;
            *'"partial":true'*)
                echo "follower served a partial read after the leader died" >&2
                echo "$reply" >&2
                kill "$fpid" 2>/dev/null || true
                return 1
                ;;
            *'HTTP/1.1 200'*'"candidates":'*) ok=1; break ;;
        esac
        sleep 0.2
    done
    if [ "$ok" -ne 1 ]; then
        echo "follower never served a full read after the leader died" >&2
        cat "$tmp/follower.log" >&2
        kill "$fpid" 2>/dev/null || true
        return 1
    fi

    kill -INT "$fpid"
    wait "$fpid" # a clean shutdown exits 0; set -e fails the sweep otherwise
    echo "replica smoke test OK (leader port $lport, follower port $fport survived the kill)"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
if [ "$build" -eq 1 ]; then
    # --workspace: a root-package build compiles member *libs* but not the
    # `viralcast` bin the smoke tests drive.
    run cargo build --release --workspace
    # Examples are not part of --workspace's default targets; keep them
    # compiling (they are the README's executable documentation).
    run cargo build --release --examples
fi
run cargo test -q --workspace
if [ "$build" -eq 1 ]; then
    run smoke_serve
    run smoke_backends
    run smoke_chaos
    run smoke_loadgen
    run smoke_cluster
    run smoke_replica
fi

echo
echo "CI OK"
