//! Significant-influencer identification (the application promised in
//! the paper's introduction): infer site embeddings from synthetic
//! GDELT events and rank outlets by influence, then check the ranking
//! against the world's latent popularity.
//!
//! ```text
//! cargo run --release --example influencers -- --sites 800 --events 1000
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use viralnews::cli::Flags;
use viralnews::viralcast::gdelt::{GdeltConfig, GdeltWorld};
use viralnews::viralcast::prelude::*;

fn main() {
    let flags = Flags::from_env();
    let sites = flags.usize("sites", 800);
    let events = flags.usize("events", 1_000);
    let seed = flags.u64("seed", 11);

    let mut rng = StdRng::seed_from_u64(seed);
    let world = GdeltWorld::generate(
        GdeltConfig {
            sites,
            ..GdeltConfig::default()
        },
        &mut rng,
    );
    let table = world.simulate_events(events, &mut rng);
    let corpus = table.to_cascade_set();

    println!("inferring embeddings from {} events…", corpus.len());
    let inference = infer_embeddings(&corpus, &InferOptions::default());

    println!("\ntop 15 influencers by inferred ‖A_u‖:");
    println!(
        "{:>5} {:<22} {:>6} {:>12} {:>10}",
        "rank", "site", "region", "popularity", "score"
    );
    let reports = table.reports_per_site();
    for (rank, r) in top_influencers(&inference.embeddings, 15)
        .iter()
        .enumerate()
    {
        let site = &world.sites()[r.node.index()];
        println!(
            "{:>5} {:<22} {:>6} {:>12.0} {:>10.3}",
            rank + 1,
            site.name,
            site.region.to_string(),
            site.popularity,
            r.score
        );
    }

    // How well does inferred influence track latent popularity? Compare
    // mean popularity of the inferred top decile vs the rest.
    let ranked = top_influencers(&inference.embeddings, sites);
    let decile = sites / 10;
    let mean_pop = |rs: &[InfluencerRank]| {
        rs.iter()
            .map(|r| world.sites()[r.node.index()].popularity)
            .sum::<f64>()
            / rs.len() as f64
    };
    let top_mean = mean_pop(&ranked[..decile]);
    let rest_mean = mean_pop(&ranked[decile..]);
    println!(
        "\nmean latent popularity: inferred-top-decile {top_mean:.0} vs rest {rest_mean:.0} ({:.1}×)",
        top_mean / rest_mean
    );
    let mean_reports_top = ranked[..decile]
        .iter()
        .map(|r| reports[r.node.index()] as f64)
        .sum::<f64>()
        / decile as f64;
    println!("mean observed reports of inferred top decile: {mean_reports_top:.1}");
}
