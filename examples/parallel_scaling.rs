//! A compact live demo of the paper's headline parallelism claim:
//! the same hierarchical inference run under rayon pools of increasing
//! size, reporting wall-clock, speedup and efficiency (Figures 10/13 in
//! miniature — the full harnesses live in `crates/bench`).
//!
//! ```text
//! cargo run --release --example parallel_scaling -- \
//!     --nodes 1000 --cascades 1000 --max-cores 8
//! ```

use viralnews::cli::Flags;
use viralnews::viralcast::prelude::*;

fn main() {
    let flags = Flags::from_env();
    let nodes = flags.usize("nodes", 1_000);
    let cascades = flags.usize("cascades", 1_000);
    let max_cores = flags.usize("max-cores", num_threads_available());
    let seed = flags.u64("seed", 5);

    let config = SbmExperimentConfig {
        sbm: SbmConfig {
            nodes,
            community_size: 40,
            intra_prob: 0.2,
            inter_prob: 0.001,
        },
        cascades,
        ..SbmExperimentConfig::default()
    };
    println!("building world ({nodes} nodes, {cascades} cascades)…");
    let experiment = SbmExperiment::build(&config, seed);
    let options = InferOptions::default();

    // Community detection once — the sweep measures the inference.
    let outcome = infer_embeddings(experiment.train(), &options);
    let partition = outcome.partition.clone();
    println!(
        "{} communities; physical cores available: {}\n",
        partition.community_count(),
        num_threads_available()
    );

    println!(
        "{:>6} {:>10} {:>9} {:>11}",
        "cores", "time (s)", "speedup", "efficiency"
    );
    let mut t1 = None;
    let mut cores = 1;
    let mut last_report = None;
    while cores <= max_cores {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cores)
            .build()
            .expect("pool");
        let hier = HierarchicalConfig {
            topics: options.topics,
            ..options.hierarchical
        };
        let (_emb, report) = pool.install(|| infer(experiment.train(), &partition, &hier));
        // Seconds come from the inference's own span tree, so pool
        // setup/teardown never pollutes the measurement.
        let secs = report.total_seconds();
        last_report = Some(report);
        let base = *t1.get_or_insert(secs);
        println!(
            "{:>6} {:>10.2} {:>9.2} {:>11.2}",
            cores,
            secs,
            base / secs,
            base / secs / cores as f64
        );
        cores *= 2;
    }
    if let Some(report) = last_report {
        println!("\nspan tree of the last run ({} cores):", cores / 2);
        println!("{}", report.timings.render());
    }
    println!("\n(speedup saturates near the physical core count; the paper's 50× needs 64 cores)");
}

fn num_threads_available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
