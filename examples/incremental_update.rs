//! Incremental updating: the deployment loop of the paper's Figure 5.
//!
//! Historical cascades train the embeddings once; as new cascades
//! arrive, `update_embeddings` warm-starts from the existing matrices
//! and fits only the fresh data — much cheaper than refitting history,
//! with prediction quality maintained.
//!
//! ```text
//! cargo run --release --example incremental_update -- --nodes 400 --seed 9
//! ```

use viralnews::cli::Flags;
use viralnews::viralcast::prelude::*;

fn main() {
    let flags = Flags::from_env();
    let nodes = flags.usize("nodes", 400);
    let seed = flags.u64("seed", 9);

    let config = SbmExperimentConfig {
        sbm: SbmConfig {
            nodes,
            community_size: 20,
            intra_prob: 0.3,
            inter_prob: 0.002,
        },
        cascades: 900,
        planted: PlantedConfig {
            on_topic: 4.0,
            off_topic: 0.05,
            jitter: 0.5,
        },
        ..SbmExperimentConfig::default()
    };
    let experiment = SbmExperiment::build(&config, seed);

    // Three slices: history, a fresh batch, and a held-out test set.
    let (train, fresh) = experiment.train().split_at(experiment.train().len() / 2);
    let test = experiment.test();
    println!(
        "history: {} cascades, fresh batch: {}, test: {}",
        train.len(),
        fresh.len(),
        test.len()
    );

    let options = InferOptions::default();
    let t0 = std::time::Instant::now();
    let base = infer_embeddings(&train, &options);
    let base_secs = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let updated = update_embeddings(&base.embeddings, &fresh, &options).expect("universes match");
    let update_secs = t1.elapsed().as_secs_f64();
    println!(
        "initial fit {base_secs:.2}s over {} cascades; incremental update {update_secs:.2}s over {}",
        train.len(),
        fresh.len()
    );

    // Compare prediction quality before and after the update.
    let task = PredictionTask {
        window: config.observation_window,
        ..PredictionTask::default()
    };
    let f1_of = |emb: &Embeddings| {
        let ds = extract_dataset(emb, test, &task);
        let threshold = ds.top_fraction_threshold(0.2);
        threshold_sweep(&ds, &[threshold], &task)
            .first()
            .map_or(0.0, |p| p.f1)
    };
    println!(
        "top-20% F1: history-only {:.3} → after update {:.3}",
        f1_of(&base.embeddings),
        f1_of(&updated.embeddings)
    );

    // And the full refit for reference.
    let t2 = std::time::Instant::now();
    let full = infer_embeddings(experiment.train(), &options);
    println!(
        "full refit over {} cascades: {:.2}s, F1 {:.3}",
        experiment.train().len(),
        t2.elapsed().as_secs_f64(),
        f1_of(&full.embeddings)
    );
}
