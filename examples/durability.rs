//! Durability demo: the write-ahead event log surviving a simulated
//! crash. One process plays both lives of the daemon's store — append
//! some acked cascades, "crash" without a clean close, tear the final
//! record the way a mid-write power cut would, then reopen and watch
//! recovery hand back every intact record.
//!
//! ```text
//! cargo run --release --example durability -- --events 8 --seed 3
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viralnews::cli::Flags;
use viralnews::viralcast::propagation::{Cascade, Infection};
use viralnews::viralcast::store::{EventStore, FsyncPolicy, WalOptions};

/// A small random cascade over a 64-node universe.
fn random_cascade(rng: &mut StdRng) -> Cascade {
    let len = rng.gen_range(2..6);
    let start: u32 = rng.gen_range(0..64);
    let infections = (0..len)
        .map(|i| Infection::new((start + i * 7) % 64, i as f64 * 0.25))
        .collect();
    Cascade::new(infections).expect("generator emits valid cascades")
}

fn main() {
    let flags = Flags::from_env();
    let events = flags.usize("events", 8);
    let seed = flags.u64("seed", 3);
    let mut rng = StdRng::seed_from_u64(seed);

    let dir = std::env::temp_dir().join(format!("viralcast-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = WalOptions {
        fsync: FsyncPolicy::Always,
        ..WalOptions::default()
    };

    // Life 1: ack a batch, then crash without a clean close.
    let cascades: Vec<Cascade> = (0..events).map(|_| random_cascade(&mut rng)).collect();
    let (mut store, _) = EventStore::open(&dir, options).expect("open data dir");
    let next = store.append_batch(&cascades).expect("append batch");
    println!(
        "life 1: acked {events} cascade(s) into {} (next record index {next})",
        dir.display()
    );
    store.abandon(); // no final fsync, no clean shutdown — a crash

    // The power cut lands mid-write: cut a few bytes off the final
    // record so it can never pass its CRC.
    let segment = std::fs::read_dir(&dir)
        .expect("read data dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            let name = p
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .expect("the crash left a segment behind");
    let len = std::fs::metadata(&segment).expect("stat segment").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .and_then(|f| f.set_len(len - 3))
        .expect("tear the tail");
    println!(
        "crash: tore 3 byte(s) off the final record of {}",
        segment.display()
    );

    // Life 2: recovery replays the maximal intact prefix and trims the
    // torn tail; appending resumes at the first lost index.
    let (mut store, recovery) = EventStore::open(&dir, options).expect("reopen after crash");
    println!(
        "life 2: recovered {} of {events} record(s), {} torn byte(s) truncated",
        recovery.replayed, recovery.truncated_bytes
    );
    for (i, cascade) in recovery.pending.iter().enumerate() {
        println!(
            "  record {i}: {} infection(s), seed node {}",
            cascade.infections().len(),
            cascade.seed().node.0
        );
    }
    assert_eq!(
        recovery.replayed,
        events - 1,
        "exactly the torn record lost"
    );

    // The lost record was never acked as recovered — re-append it and
    // the log is whole again.
    let next = store
        .append_batch(&cascades[events - 1..])
        .expect("re-append the torn record");
    println!("re-appended the torn cascade; next record index {next}");

    std::fs::remove_dir_all(&dir).ok();
}
