//! Quickstart: the whole paper in sixty lines.
//!
//! Generates a small synthetic world (an SBM graph with planted
//! influence/selectivity embeddings), simulates cascades, infers the
//! embeddings back from the cascades alone, and predicts which held-out
//! cascades go viral from their early adopters.
//!
//! ```text
//! cargo run --release --example quickstart [-- --seed 42]
//! ```

use viralnews::cli::Flags;
use viralnews::viralcast::prelude::*;

fn main() {
    let flags = Flags::from_env();
    let seed = flags.u64("seed", 42);

    // 1. A synthetic world: 400 nodes in 20 communities (Section VI-A,
    //    scaled down for a quick run).
    let config = SbmExperimentConfig {
        sbm: SbmConfig {
            nodes: 400,
            community_size: 20,
            intra_prob: 0.3,
            inter_prob: 0.002,
        },
        cascades: 600,
        // A regime where ~20% of cascades escape their community and
        // flood much of the graph — rare enough that "viral" is a real
        // minority class, predictable enough to beat naive baselines.
        planted: PlantedConfig {
            on_topic: 4.0,
            off_topic: 0.05,
            jitter: 0.5,
        },
        ..SbmExperimentConfig::default()
    };
    let experiment = SbmExperiment::build(&config, seed);
    println!(
        "world: {} nodes, {} train / {} test cascades",
        experiment.graph().node_count(),
        experiment.train().len(),
        experiment.test().len()
    );

    // 2. Infer influence/selectivity embeddings from the training
    //    cascades (co-occurrence graph -> SLPA -> Algorithm 2).
    let options = InferOptions {
        topics: 8,
        ..InferOptions::default()
    };
    let inference = infer_embeddings(experiment.train(), &options);
    println!(
        "inference: {} SLPA communities, {} hierarchy levels, final LL {:.1}",
        inference.partition.community_count(),
        inference.report.levels.len(),
        inference.report.final_ll()
    );

    // 3. Predict virality of held-out cascades from early adopters.
    let task = PredictionTask {
        window: config.observation_window,
        ..PredictionTask::default()
    };
    let dataset = extract_dataset(&inference.embeddings, experiment.test(), &task);
    let threshold = dataset.top_fraction_threshold(0.2);
    let points = threshold_sweep(&dataset, &[threshold], &task);
    match points.first() {
        Some(p) => println!(
            "prediction: top-20% threshold = size > {}, F1 = {:.3} (precision {:.3}, recall {:.3})",
            p.threshold, p.f1, p.precision, p.recall
        ),
        None => println!("prediction: degenerate threshold (all cascades one class)"),
    }

    // 4. Who are the most influential nodes?
    let top = top_influencers(&inference.embeddings, 5);
    println!("top influencers by ‖A_u‖:");
    for r in top {
        println!("  node {:>4}  score {:.3}", r.node, r.score);
    }

    // 5. Where did the time go? The span tree recorded by viralcast-obs.
    println!("\nstage timings:\n{}", inference.timings.render());
}
