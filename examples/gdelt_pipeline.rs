//! The Section VI-B pipeline on the synthetic GDELT world: simulate
//! news events across regional site communities, infer site embeddings
//! from historical events, and predict each new event's 3-day report
//! count from the sites that covered it in its first 5 hours
//! (Figure 12's protocol).
//!
//! ```text
//! cargo run --release --example gdelt_pipeline -- \
//!     --sites 1200 --events 1500 --seed 7
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use viralnews::cli::Flags;
use viralnews::viralcast::gdelt::{GdeltConfig, GdeltWorld};
use viralnews::viralcast::predict::pipeline::Dataset;
use viralnews::viralcast::prelude::*;
use viralnews::viralcast::propagation::stats::locality_fraction;

fn main() {
    let flags = Flags::from_env();
    let sites = flags.usize("sites", 1_200);
    let events = flags.usize("events", 1_500);
    let seed = flags.u64("seed", 7);
    let early_hours = flags.f64("early-hours", 5.0);

    let config = GdeltConfig {
        sites,
        ..GdeltConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    println!("generating GDELT world: {sites} sites across 4 regions…");
    let world = GdeltWorld::generate(config, &mut rng);

    println!("simulating {events} news events over 72-hour windows…");
    let table = world.simulate_events(events, &mut rng);
    let corpus = table.to_cascade_set();
    println!(
        "  {} mentions; {:.0}% of events stayed within one region",
        table.mentions().len(),
        100.0 * locality_fraction(&corpus, &world.region_labels())
    );

    // Train on the first 2/3 of events, test on the rest.
    let split = events * 2 / 3;
    let (train, test) = corpus.split_at(split);

    println!(
        "inferring site embeddings from {} historical events…",
        train.len()
    );
    let inference = infer_embeddings(&train, &InferOptions::default());
    println!(
        "  {} co-reporting communities detected",
        inference.partition.community_count()
    );

    // Early adopters = sites reporting within the first `early_hours`.
    let task = PredictionTask {
        window: world.config().observation_hours,
        early_fraction: early_hours / world.config().observation_hours,
        ..PredictionTask::default()
    };
    let dataset: Dataset = extract_dataset(&inference.embeddings, &test, &task);

    let top20 = dataset.top_fraction_threshold(0.2);
    let thresholds: Vec<usize> = {
        let max = dataset.sizes.iter().copied().max().unwrap_or(0);
        (0..=max).step_by((max / 10).max(1)).collect()
    };
    println!("\npredicting 3-day report counts from the first {early_hours} hours:");
    println!("{:>10} {:>10} {:>8}", "size >", "#viral", "F1");
    for p in threshold_sweep(&dataset, &thresholds, &task) {
        println!("{:>10} {:>10} {:>8.3}", p.threshold, p.positives, p.f1);
    }
    if let Some(p) = threshold_sweep(&dataset, &[top20], &task).first() {
        println!(
            "\ntop-20% events: F1 = {:.3} (paper reports ≈ 0.80 on GDELT)",
            p.f1
        );
    }
}
