//! The serving loop end to end, without leaving one process: train a
//! model on a synthetic world, boot the daemon on an ephemeral port,
//! query it over real HTTP, ingest fresh cascades, and watch the
//! background trainer hot-swap in snapshot v2.
//!
//! ```text
//! cargo run --release --example serving -- --nodes 100 --seed 7
//! ```

use std::time::{Duration, Instant};
use viralnews::cli::Flags;
use viralnews::viralcast::prelude::*;
use viralnews::viralcast::serve::{self, client};

fn main() {
    let flags = Flags::from_env();
    let nodes = flags.usize("nodes", 100);
    let seed = flags.u64("seed", 7);
    let topics = flags.usize("topics", 4);

    let experiment = SbmExperiment::build(
        &SbmExperimentConfig {
            sbm: SbmConfig {
                nodes,
                community_size: 20,
                intra_prob: 0.4,
                inter_prob: 0.003,
            },
            cascades: 200,
            planted: PlantedConfig {
                on_topic: 1.2,
                off_topic: 0.02,
                jitter: 0.3,
            },
            ..SbmExperimentConfig::default()
        },
        seed,
    );
    println!(
        "training a {topics}-topic model on {} cascades…",
        experiment.train().len()
    );
    let outcome = infer_embeddings(
        experiment.train(),
        &InferOptions {
            topics,
            ..InferOptions::default()
        },
    );

    let retrain: serve::RetrainFn = Box::new(|current, fresh| current.update(fresh));
    let handle = serve::start(
        std::sync::Arc::new(EmbeddingBackend::new(outcome.embeddings)),
        retrain,
        serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            trainer: serve::TrainerConfig {
                interval: Duration::from_millis(200),
                min_batch: 1,
            },
            ..serve::ServeConfig::default()
        },
    )
    .expect("daemon boots");
    let addr = handle.local_addr();
    println!("daemon listening on http://{addr}");

    let show = |label: &str, resp: &client::ClientResponse| {
        println!("\n{label} → HTTP {}\n{}", resp.status, resp.body.trim_end());
    };

    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    show("GET /healthz", &health);

    let hazard = client::request(
        &addr,
        "POST",
        "/v1/hazard",
        Some(r#"{"pairs":[[0,1],[0,21]],"dt":1.0}"#),
    )
    .unwrap();
    show("POST /v1/hazard", &hazard);

    let predict = client::request(
        &addr,
        "POST",
        "/v1/predict",
        Some(r#"{"cascade":[{"node":0,"time":0.0},{"node":1,"time":0.4}],"top":5}"#),
    )
    .unwrap();
    show("POST /v1/predict", &predict);

    // Feed two held-out cascades back and wait for the hot swap.
    let lists: Vec<String> = experiment.test().cascades()[..2]
        .iter()
        .map(|c| {
            let events: Vec<String> = c
                .infections()
                .iter()
                .map(|i| format!(r#"{{"node":{},"time":{}}}"#, i.node.0, i.time))
                .collect();
            format!("[{}]", events.join(","))
        })
        .collect();
    let ingest = client::request(
        &addr,
        "POST",
        "/v1/ingest",
        Some(&format!(r#"{{"cascades":[{}]}}"#, lists.join(","))),
    )
    .unwrap();
    show("POST /v1/ingest", &ingest);

    print!("\nwaiting for the background retrain");
    let snapshots = handle.snapshots();
    let deadline = Instant::now() + Duration::from_secs(60);
    while snapshots.version() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!(" → snapshot v{}", snapshots.version());

    let predict = client::request(
        &addr,
        "POST",
        "/v1/predict",
        Some(r#"{"cascade":[{"node":0,"time":0.0}],"top":3}"#),
    )
    .unwrap();
    show("POST /v1/predict (after swap)", &predict);

    let influencers = client::request(&addr, "GET", "/v1/influencers?top=5", None).unwrap();
    show("GET /v1/influencers?top=5", &influencers);

    let metrics = client::request(&addr, "GET", "/metrics", None).unwrap();
    let serving_lines: Vec<&str> = metrics
        .body
        .lines()
        .filter(|l| l.starts_with("serve_") && !l.contains("_bucket"))
        .collect();
    println!("\nGET /metrics (serve_* series, buckets elided)");
    for line in serving_lines {
        println!("{line}");
    }

    handle.shutdown();
    println!("\ndaemon stopped cleanly");
}
