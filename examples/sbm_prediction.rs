//! The Section VI-A experiment at configurable scale: SBM graph,
//! simulated cascades, inference, and the full F1-vs-threshold sweep of
//! Figure 9.
//!
//! ```text
//! cargo run --release --example sbm_prediction -- \
//!     --nodes 2000 --cascades 3000 --topics 8 --seed 1
//! ```

use viralnews::cli::Flags;
use viralnews::viralcast::prelude::*;
use viralnews::viralcast::propagation::stats::{size_histogram, size_summary};

fn main() {
    let flags = Flags::from_env();
    let nodes = flags.usize("nodes", 1_000);
    let cascades = flags.usize("cascades", 1_500);
    let topics = flags.usize("topics", 8);
    let seed = flags.u64("seed", 1);

    let config = SbmExperimentConfig {
        sbm: SbmConfig {
            nodes,
            community_size: 40,
            intra_prob: 0.2,
            inter_prob: 0.001,
        },
        cascades,
        ..SbmExperimentConfig::default()
    };
    println!("generating SBM world: {nodes} nodes, {cascades} cascades (seed {seed})");
    let experiment = SbmExperiment::build(&config, seed);
    let sizes = size_summary(experiment.test());
    println!(
        "test cascade sizes: mean {:.1}, median {:.0}, p90 {:.0}, max {:.0}",
        sizes.mean, sizes.median, sizes.p90, sizes.max
    );

    println!(
        "inferring embeddings from {} training cascades…",
        experiment.train().len()
    );
    let t0 = std::time::Instant::now();
    let inference = infer_embeddings(
        experiment.train(),
        &InferOptions {
            topics,
            ..InferOptions::default()
        },
    );
    println!(
        "…done in {:.1}s ({} communities, {} levels)",
        t0.elapsed().as_secs_f64(),
        inference.partition.community_count(),
        inference.report.levels.len()
    );

    let task = PredictionTask {
        window: config.observation_window,
        ..PredictionTask::default()
    };
    let dataset = extract_dataset(&inference.embeddings, experiment.test(), &task);

    // Size histogram (the bars of Figure 9).
    println!("\nsize histogram (bin width 50):");
    for (lo, count) in size_histogram(experiment.test(), 50) {
        if count > 0 {
            println!("  [{lo:>4}, {:>4})  {count}", lo + 50);
        }
    }

    // F1 sweep (the red curve of Figure 9).
    let max_size = dataset.sizes.iter().copied().max().unwrap_or(0);
    let thresholds: Vec<usize> = (0..=max_size).step_by((max_size / 12).max(1)).collect();
    println!("\nthreshold sweep:");
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>8}",
        "size >", "#viral", "F1", "prec", "recall"
    );
    for p in threshold_sweep(&dataset, &thresholds, &task) {
        println!(
            "{:>10} {:>10} {:>8.3} {:>8.3} {:>8.3}",
            p.threshold, p.positives, p.f1, p.precision, p.recall
        );
    }

    let top20 = dataset.top_fraction_threshold(0.2);
    if let Some(p) = threshold_sweep(&dataset, &[top20], &task).first() {
        println!(
            "\npaper operating point (top 20% of cascades): F1 = {:.3} (paper reports ≈ 0.80)",
            p.f1
        );
    }
}
