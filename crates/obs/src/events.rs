//! Leveled structured events and pluggable sinks.
//!
//! An [`Event`] is a level + stage + message + structured fields. The
//! process-global [`Logger`] fans events out to whatever [`Sink`]s are
//! attached: a human-readable stderr sink, a JSONL file sink, or
//! anything test code supplies. The level check is a single relaxed
//! atomic load, so disabled `debug!`-style call sites cost nothing in
//! the hot loops.

use crate::json::JsonValue;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// Stage progress (the default).
    Info = 3,
    /// Per-iteration detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as accepted by [`Level::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name. `"off"` yields `None` (log nothing);
    /// unknown names are an error.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(None),
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            other => Err(format!(
                "unknown log level '{other}' (expected off|error|warn|info|debug|trace)"
            )),
        }
    }
}

/// One structured event, borrowed from the emitting call site.
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// Pipeline stage name (matches the span names, e.g. `"slpa"`).
    pub stage: &'a str,
    /// Human-readable message.
    pub message: &'a str,
    /// Structured key/value payload.
    pub fields: &'a [(&'a str, JsonValue)],
    /// Seconds since the logger was created.
    pub elapsed_secs: f64,
}

/// An event destination.
pub trait Sink: Send + Sync {
    /// Handles one event already filtered by the logger threshold.
    fn emit(&self, event: &Event<'_>);
    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Human-readable sink writing to stderr:
/// `[  12.345s INFO  slpa] converged iterations=14`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = format!(
            "[{:>9.3}s {:<5} {}] {}",
            event.elapsed_secs,
            event.level.as_str().to_ascii_uppercase(),
            event.stage,
            event.message
        );
        for (k, v) in event.fields {
            line.push_str(&format!(" {k}={}", v.render()));
        }
        eprintln!("{line}");
    }
}

/// JSONL sink: one compact JSON object per line, machine-parseable.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event<'_>) {
        let mut pairs: Vec<(String, JsonValue)> = vec![
            ("t".into(), event.elapsed_secs.into()),
            ("level".into(), event.level.as_str().into()),
            ("stage".into(), event.stage.into()),
            ("message".into(), event.message.into()),
        ];
        if !event.fields.is_empty() {
            pairs.push((
                "fields".into(),
                JsonValue::Obj(
                    event
                        .fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        let line = JsonValue::Obj(pairs).render();
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Fan-out logger with an atomic level threshold.
pub struct Logger {
    sinks: RwLock<Vec<Box<dyn Sink>>>,
    /// 0 = off; otherwise the numeric value of the max enabled [`Level`].
    threshold: AtomicU8,
    start: Instant,
}

impl Logger {
    fn new() -> Logger {
        Logger {
            sinks: RwLock::new(Vec::new()),
            threshold: AtomicU8::new(0),
            start: Instant::now(),
        }
    }

    /// Whether an event at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 <= self.threshold.load(Ordering::Relaxed)
    }

    /// Sets the threshold; `None` disables all output.
    pub fn set_level(&self, level: Option<Level>) {
        self.threshold
            .store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
    }

    /// Attaches a sink. Sinks receive only events at or below the
    /// current threshold.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.sinks
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .push(sink);
    }

    /// Emits one event to every sink (after the threshold check).
    pub fn emit(&self, level: Level, stage: &str, message: &str, fields: &[(&str, JsonValue)]) {
        if !self.enabled(level) {
            return;
        }
        let event = Event {
            level,
            stage,
            message,
            fields,
            elapsed_secs: self.start.elapsed().as_secs_f64(),
        };
        for sink in self.sinks.read().unwrap_or_else(|e| e.into_inner()).iter() {
            sink.emit(&event);
        }
    }

    /// Flushes every sink (call before process exit).
    pub fn flush(&self) {
        for sink in self.sinks.read().unwrap_or_else(|e| e.into_inner()).iter() {
            sink.flush();
        }
    }
}

/// The process-global logger. Starts with no sinks and level off, so
/// library code can emit unconditionally and pay only an atomic load
/// until the CLI (or a test) configures it.
pub fn logger() -> &'static Logger {
    static GLOBAL: OnceLock<Logger> = OnceLock::new();
    GLOBAL.get_or_init(Logger::new)
}

/// Emits at [`Level::Info`] on the global logger.
pub fn info(stage: &str, message: &str, fields: &[(&str, JsonValue)]) {
    logger().emit(Level::Info, stage, message, fields);
}

/// Emits at [`Level::Debug`] on the global logger.
pub fn debug(stage: &str, message: &str, fields: &[(&str, JsonValue)]) {
    logger().emit(Level::Debug, stage, message, fields);
}

/// Emits at [`Level::Warn`] on the global logger.
pub fn warn(stage: &str, message: &str, fields: &[(&str, JsonValue)]) {
    logger().emit(Level::Warn, stage, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    struct CountingSink(Arc<AtomicUsize>);

    impl Sink for CountingSink {
        fn emit(&self, _event: &Event<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn level_parse_round_trips() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(level.as_str()).unwrap(), Some(level));
        }
        assert_eq!(Level::parse("OFF").unwrap(), None);
        assert!(Level::parse("loud").is_err());
    }

    #[test]
    fn threshold_filters() {
        // A private logger (the global one is shared across tests).
        let logger = Logger::new();
        let count = Arc::new(AtomicUsize::new(0));
        logger.add_sink(Box::new(CountingSink(Arc::clone(&count))));

        logger.emit(Level::Error, "t", "dropped while off", &[]);
        assert_eq!(count.load(Ordering::Relaxed), 0);

        logger.set_level(Some(Level::Info));
        logger.emit(Level::Info, "t", "kept", &[]);
        logger.emit(Level::Debug, "t", "dropped", &[]);
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert!(logger.enabled(Level::Warn));
        assert!(!logger.enabled(Level::Trace));
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let dir = std::env::temp_dir().join("viralcast-obs-events-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let logger = Logger::new();
        logger.set_level(Some(Level::Debug));
        logger.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
        logger.emit(
            Level::Info,
            "slpa",
            "converged",
            &[("iterations", 14u64.into())],
        );
        logger.emit(Level::Debug, "pgd", "epoch", &[("ll", (-1.5).into())]);
        logger.flush();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage\":\"slpa\""), "{}", lines[0]);
        assert!(lines[0].contains("\"iterations\":14"), "{}", lines[0]);
        assert!(lines[1].contains("\"level\":\"debug\""), "{}", lines[1]);
    }
}
