//! Nested wall-clock spans aggregating into a [`StageTimings`] tree.
//!
//! `Span::enter("slpa")` returns a guard; when the guard drops, the
//! elapsed time is added to the node at the current span path of the
//! innermost installed [`Recorder`] (or a process-global fallback when
//! none is installed). Repeated spans with the same name at the same
//! path accumulate `seconds` and `count`, so a per-level loop produces
//! one node per distinct name, not one per iteration.
//!
//! Recorders nest: installing a second recorder shadows the first until
//! its guard drops, which lets a library (e.g. the hierarchical
//! optimiser) own its private timing tree while the caller owns the
//! surrounding one and grafts the returned subtree in with
//! [`StageTimings::push_child`].
//!
//! Span paths are tracked per thread. The intended pattern — and how the
//! pipeline uses it — is that coordinating code on one thread opens the
//! spans while worker threads report through the (genuinely cross-thread)
//! metrics registry.

use crate::json::JsonValue;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Aggregated wall-clock timings of one stage and its sub-stages.
#[derive(Clone, Debug, PartialEq)]
pub struct StageTimings {
    /// Stage name (one span-path segment).
    pub name: String,
    /// Total seconds across all spans recorded at this node.
    pub seconds: f64,
    /// Number of spans that closed at this node.
    pub count: u64,
    /// Sub-stages, in first-recorded order.
    pub children: Vec<StageTimings>,
}

impl Default for StageTimings {
    fn default() -> Self {
        StageTimings::new("")
    }
}

impl StageTimings {
    /// An empty node.
    pub fn new(name: impl Into<String>) -> Self {
        StageTimings {
            name: name.into(),
            seconds: 0.0,
            count: 0,
            children: Vec::new(),
        }
    }

    /// The direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&StageTimings> {
        self.children.iter().find(|c| c.name == name)
    }

    /// The node at a `/`-free path of child names below this node.
    pub fn find(&self, path: &[&str]) -> Option<&StageTimings> {
        let mut node = self;
        for segment in path {
            node = node.child(segment)?;
        }
        Some(node)
    }

    /// Seconds recorded at a path below this node, `0.0` when absent.
    pub fn seconds_of(&self, path: &[&str]) -> f64 {
        self.find(path).map_or(0.0, |n| n.seconds)
    }

    /// Appends a finished subtree (e.g. a callee's recorder output).
    pub fn push_child(&mut self, child: StageTimings) {
        self.children.push(child);
    }

    /// Seconds this subtree accounts for: the node's own timed seconds
    /// when it was directly spanned, otherwise the sum over its
    /// children. Grafted recorder roots (and other structural nodes)
    /// carry `count == 0`, so their time lives in the children.
    pub fn subtree_seconds(&self) -> f64 {
        if self.count > 0 {
            self.seconds
        } else {
            self.children.iter().map(|c| c.subtree_seconds()).sum()
        }
    }

    /// Sum of the direct children's subtree seconds — the "accounted
    /// for" part of this stage.
    pub fn child_seconds(&self) -> f64 {
        self.children.iter().map(|c| c.subtree_seconds()).sum()
    }

    /// Adds `elapsed` at `path` below this node, creating nodes as
    /// needed.
    fn record(&mut self, path: &[String], elapsed: f64) {
        let mut node = self;
        for segment in path {
            let pos = match node.children.iter().position(|c| &c.name == segment) {
                Some(i) => i,
                None => {
                    node.children.push(StageTimings::new(segment.clone()));
                    node.children.len() - 1
                }
            };
            node = &mut node.children[pos];
        }
        node.seconds += elapsed;
        node.count += 1;
    }

    /// An indented text rendering of the tree (for examples and the
    /// stderr sink).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if self.count > 0 {
            out.push_str(&format!(
                "  {:.3}s{}",
                self.seconds,
                if self.count > 1 {
                    format!(" (x{})", self.count)
                } else {
                    String::new()
                }
            ));
        } else if !self.children.is_empty() {
            // Structural node (e.g. a grafted recorder root): show the
            // time its subtree accounts for.
            out.push_str(&format!("  Σ {:.3}s", self.subtree_seconds()));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// The JSON form used by the run report:
    /// `{"name": …, "seconds": …, "count": …, "children": […]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("name", JsonValue::from(self.name.as_str())),
            ("seconds", JsonValue::from(self.seconds)),
            ("count", JsonValue::from(self.count)),
            (
                "children",
                JsonValue::Arr(self.children.iter().map(StageTimings::to_json).collect()),
            ),
        ])
    }
}

struct RecorderInner {
    root: Mutex<StageTimings>,
}

impl RecorderInner {
    fn record(&self, path: &[String], elapsed: f64) {
        self.root
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(path, elapsed);
    }
}

/// A span-timing collector. Create one per logical run, [install]
/// (Recorder::install) it, run the instrumented code, then take the
/// aggregated tree with [`Recorder::finish`].
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

struct Frame {
    inner: Arc<RecorderInner>,
    path: Vec<String>,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static GLOBAL_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn global_inner() -> &'static Arc<RecorderInner> {
    static GLOBAL: OnceLock<Arc<RecorderInner>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Arc::new(RecorderInner {
            root: Mutex::new(StageTimings::new("global")),
        })
    })
}

/// A snapshot of the process-global fallback tree (spans recorded while
/// no recorder was installed on their thread).
pub fn global_timings() -> StageTimings {
    global_inner()
        .root
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

impl Recorder {
    /// A recorder whose tree is rooted at `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                root: Mutex::new(StageTimings::new(name)),
            }),
        }
    }

    /// Makes this recorder the span target for the current thread until
    /// the returned guard drops. Installs nest (last installed wins).
    pub fn install(&self) -> RecorderGuard {
        FRAMES.with(|f| {
            f.borrow_mut().push(Frame {
                inner: Arc::clone(&self.inner),
                path: Vec::new(),
            })
        });
        RecorderGuard {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Grafts a finished subtree under this recorder's root (used to
    /// nest a callee's private recorder output).
    pub fn attach_child(&self, child: StageTimings) {
        self.inner
            .root
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_child(child);
    }

    /// The aggregated tree recorded so far.
    pub fn finish(self) -> StageTimings {
        self.inner
            .root
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Uninstalls its recorder from the current thread on drop.
pub struct RecorderGuard {
    inner: Arc<RecorderInner>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        FRAMES.with(|f| {
            let mut frames = f.borrow_mut();
            // Normally ours is on top; be defensive about out-of-order
            // drops rather than panicking inside a Drop.
            if let Some(pos) = frames
                .iter()
                .rposition(|fr| Arc::ptr_eq(&fr.inner, &self.inner))
            {
                frames.remove(pos);
            }
        });
    }
}

/// A named wall-clock span. See the module docs for the pattern.
pub struct Span;

impl Span {
    /// Opens a span; the elapsed time is recorded when the returned
    /// guard drops.
    pub fn enter(name: impl Into<String>) -> SpanGuard {
        let name = name.into();
        let (target, path, global) = FRAMES.with(|f| {
            let mut frames = f.borrow_mut();
            if let Some(top) = frames.last_mut() {
                top.path.push(name.clone());
                (Arc::clone(&top.inner), top.path.clone(), false)
            } else {
                let path = GLOBAL_PATH.with(|p| {
                    let mut p = p.borrow_mut();
                    p.push(name.clone());
                    p.clone()
                });
                (Arc::clone(global_inner()), path, true)
            }
        });
        SpanGuard {
            target,
            path,
            global,
            start: Instant::now(),
        }
    }
}

/// Records its span's elapsed time on drop.
pub struct SpanGuard {
    target: Arc<RecorderInner>,
    path: Vec<String>,
    global: bool,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        if self.global {
            GLOBAL_PATH.with(|p| {
                let mut p = p.borrow_mut();
                if p.last() == self.path.last() {
                    p.pop();
                }
            });
        } else {
            FRAMES.with(|f| {
                let mut frames = f.borrow_mut();
                if let Some(top) = frames.last_mut() {
                    if Arc::ptr_eq(&top.inner, &self.target) && top.path.last() == self.path.last()
                    {
                        top.path.pop();
                    }
                }
            });
        }
        self.target.record(&self.path, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_a_tree() {
        let recorder = Recorder::new("run");
        {
            let _g = recorder.install();
            {
                let _a = Span::enter("outer");
                let _b = Span::enter("inner");
            }
            let _c = Span::enter("sibling");
        }
        let tree = recorder.finish();
        assert_eq!(tree.name, "run");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "outer");
        assert_eq!(tree.children[0].children[0].name, "inner");
        assert_eq!(tree.children[1].name, "sibling");
        assert!(tree.seconds_of(&["outer", "inner"]) > 0.0);
        assert_eq!(tree.seconds_of(&["missing"]), 0.0);
    }

    #[test]
    fn repeated_spans_aggregate() {
        let recorder = Recorder::new("run");
        {
            let _g = recorder.install();
            for _ in 0..3 {
                let _s = Span::enter("stage");
            }
        }
        let tree = recorder.finish();
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].count, 3);
    }

    #[test]
    fn inner_recorder_shadows_outer() {
        let outer = Recorder::new("outer");
        let inner = Recorder::new("inner");
        {
            let _og = outer.install();
            let _outer_span = Span::enter("before");
            {
                let _ig = inner.install();
                let _s = Span::enter("callee");
            }
        }
        let inner_tree = inner.finish();
        assert!(inner_tree.child("callee").is_some());
        let outer_tree = outer.finish();
        assert!(outer_tree.child("callee").is_none());
        assert!(outer_tree.child("before").is_some());
    }

    #[test]
    fn uninstalled_spans_go_to_the_global_tree() {
        let before = global_timings().seconds_of(&["orphan-test-span"]);
        {
            let _s = Span::enter("orphan-test-span");
        }
        let after = global_timings().seconds_of(&["orphan-test-span"]);
        assert!(after > before);
    }

    #[test]
    fn attach_child_grafts_subtrees() {
        let recorder = Recorder::new("caller");
        let mut subtree = StageTimings::new("callee");
        subtree.seconds = 1.5;
        subtree.count = 1;
        recorder.attach_child(subtree);
        let tree = recorder.finish();
        assert_eq!(tree.seconds_of(&["callee"]), 1.5);
        assert_eq!(tree.child_seconds(), 1.5);
    }

    #[test]
    fn render_and_json_contain_names() {
        let recorder = Recorder::new("run");
        {
            let _g = recorder.install();
            let _a = Span::enter("stage");
        }
        let tree = recorder.finish();
        assert!(tree.render().contains("stage"));
        let json = tree.to_json().render();
        assert!(json.contains("\"name\":\"stage\""), "{json}");
        assert!(json.contains("\"children\":[]"), "{json}");
    }
}
