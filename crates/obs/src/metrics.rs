//! A lock-free metrics registry: counters, gauges, and fixed-bucket
//! histograms safe to update from inside rayon workers.
//!
//! Handle acquisition (`registry.counter("pgd.epochs")`) takes a
//! read-lock on the name table once; every subsequent update on the
//! returned `Arc` handle is a plain atomic operation, so the inner
//! optimiser loops pay no locks. Floating-point accumulation (histogram
//! sums, gauges, min/max) uses compare-exchange loops on the f64 bit
//! pattern — updates are never lost, though the *order* of additions is
//! whatever the race produced (sums of well-scaled values are stable to
//! ~1 ulp per update, which is far below measurement noise).

use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn incr(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins f64 gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Applies `combine(current, v)` atomically to an f64 stored as bits.
fn atomic_f64_apply(cell: &AtomicU64, v: f64, combine: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = combine(f64::from_bits(cur), v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A histogram over fixed upper-bound buckets.
///
/// A value `v` lands in the first bucket whose bound is `>= v`; values
/// above every bound land in the overflow bucket (`buckets.len() ==
/// bounds.len() + 1`). Count, sum, min and max are tracked exactly.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_apply(&self.sum_bits, v, |a, b| a + b);
        atomic_f64_apply(&self.min_bits, v, f64::min);
        atomic_f64_apply(&self.max_bits, v, f64::max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum(),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (the overflow bucket has no bound).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`0.0` when empty).
    pub min: f64,
    /// Largest observation (`0.0` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Interpolated quantile estimate from the bucket counts.
    ///
    /// The rank `q * count` is located in its bucket and linearly
    /// interpolated across that bucket's span. Spans are clamped to the
    /// tracked `[min, max]`, so a single observation returns exactly that
    /// observation and the unbounded overflow bucket interpolates between
    /// the last bound and `max` instead of running off to infinity.
    /// Returns `None` for an empty histogram or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.count as f64;
        let mut below = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            let through = below + in_bucket;
            if in_bucket > 0 && rank <= through as f64 {
                let lower = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let upper = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                if upper <= lower {
                    return Some(lower.clamp(self.min, self.max));
                }
                let frac = ((rank - below as f64) / in_bucket as f64).clamp(0.0, 1.0);
                return Some((lower + frac * (upper - lower)).clamp(self.min, self.max));
            }
            below = through;
        }
        Some(self.max)
    }

    /// Interpolated median (`quantile(0.5)`).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Interpolated 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// Interpolated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            (
                "bounds",
                JsonValue::Arr(self.bounds.iter().map(|&b| b.into()).collect()),
            ),
            (
                "buckets",
                JsonValue::Arr(self.buckets.iter().map(|&b| b.into()).collect()),
            ),
            ("count", JsonValue::from(self.count)),
            ("sum", JsonValue::from(self.sum)),
            ("min", JsonValue::from(self.min)),
            ("max", JsonValue::from(self.max)),
        ])
    }
}

/// A point-in-time copy of every metric, with deterministic (sorted)
/// iteration order — the unit serialised into run reports and diffed by
/// the bench harness.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// JSON form:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            (
                "counters",
                JsonValue::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                JsonValue::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Summarises every histogram whose name starts with `prefix` as
    /// `{label: {requests, p50_ms, p90_ms, p99_ms, max_ms}}`, keyed by
    /// the name with the prefix stripped — the table `/healthz` exposes
    /// for per-endpoint (and, on a cluster router, per-shard) latency.
    pub fn quantile_table(&self, prefix: &str) -> JsonValue {
        JsonValue::Obj(
            self.histograms
                .iter()
                .filter_map(|(name, hist)| {
                    let label = name.strip_prefix(prefix)?;
                    Some((
                        label.to_string(),
                        JsonValue::obj(vec![
                            ("requests", JsonValue::from(hist.count)),
                            (
                                "p50_ms",
                                hist.p50().map_or(JsonValue::Null, JsonValue::from),
                            ),
                            (
                                "p90_ms",
                                hist.p90().map_or(JsonValue::Null, JsonValue::from),
                            ),
                            (
                                "p99_ms",
                                hist.p99().map_or(JsonValue::Null, JsonValue::from),
                            ),
                            ("max_ms", JsonValue::from(hist.max)),
                        ]),
                    ))
                })
                .collect(),
        )
    }

    /// Prometheus text exposition format (version 0.0.4), the payload a
    /// `/metrics` endpoint returns. Dotted registry names become
    /// underscore-separated metric names; histogram buckets are emitted
    /// cumulatively with `le` labels plus the `+Inf` total, `_sum`, and
    /// `_count` series; label values are escaped per the format's
    /// `\\` / `\"` / `\n` rules.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, &v) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, bound) in h.bounds.iter().enumerate() {
                cumulative += h.buckets.get(i).copied().unwrap_or(0);
                let le = prometheus_label_value(&format!("{bound}"));
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            cumulative += h.buckets.get(h.bounds.len()).copied().unwrap_or(0);
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }
}

/// Strictly increasing exponential bucket bounds: `count` values
/// starting at `start` and multiplying by `factor` — the standard shape
/// for latency histograms, where resolution should track magnitude.
///
/// # Panics
/// Panics if `start <= 0`, `factor <= 1`, or `count == 0` — any of those
/// would produce a non-monotone (hence invalid) bound ladder.
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && factor > 1.0 && count > 0,
        "exponential_bounds needs start > 0, factor > 1, count > 0 \
         (got start={start}, factor={factor}, count={count})"
    );
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    bounds
}

/// Maps a registry name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters (the `.` separators
/// used here) become `_`, and a leading digit gets a `_` prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a string for use inside a quoted Prometheus label value:
/// backslash, double quote, and newline become `\\`, `\"`, and `\n`
/// (exposition format 0.0.4). Everything else passes through.
pub fn prometheus_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn read_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// The name → metric table. Use [`crate::metrics()`] for the process
/// global, or create private registries in tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read_or_recover(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            write_or_recover(&self.counters)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read_or_recover(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            write_or_recover(&self.gauges)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = read_or_recover(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            write_or_recover(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// The histogram registered under `name`, created with
    /// [`exponential_bounds`]`(start, factor, count)` on first use —
    /// the usual constructor for latency histograms.
    pub fn histogram_exponential(
        &self,
        name: &str,
        start: f64,
        factor: f64,
        count: usize,
    ) -> Arc<Histogram> {
        if let Some(h) = read_or_recover(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        self.histogram(name, &exponential_bounds(start, factor, count))
    }

    /// Zeroes every registered metric in place — existing handles stay
    /// attached (the CLI resets between a warm-up and a measured run).
    pub fn reset(&self) {
        for c in read_or_recover(&self.counters).values() {
            c.reset();
        }
        for g in read_or_recover(&self.gauges).values() {
            g.reset();
        }
        for h in read_or_recover(&self.histograms).values() {
            h.reset();
        }
    }

    /// A consistent-enough copy of every metric (each value is read
    /// atomically; the set is whatever was registered at call time).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: read_or_recover(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: read_or_recover(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: read_or_recover(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry the pipeline stages report into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.counter("a").incr(2);
        r.counter("a").incr(3);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.snapshot().counters["a"], 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge("g").set(1.5);
        r.gauge("g").set(-2.25);
        assert_eq!(r.gauge("g").get(), -2.25);
    }

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // 0.5 and 1.0 land in the <=1 bucket, 5.0 in <=10, 100 overflows.
        assert_eq!(s.buckets, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert!((s.sum - 106.5).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_finite() {
        let h = Histogram::new(&[1.0]);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn histogram_bounds_are_first_registration_wins() {
        let r = MetricsRegistry::new();
        let h1 = r.histogram("h", &[1.0, 2.0]);
        let h2 = r.histogram("h", &[99.0]);
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(h2.snapshot().bounds, vec![1.0, 2.0]);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h", &[1.0]);
        c.incr(7);
        h.record(0.5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // Handles acquired before the reset still feed the registry.
        c.incr(1);
        assert_eq!(r.snapshot().counters["c"], 1);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        // Std-thread version of the rayon test in tests/concurrency.rs,
        // runnable without any dev-dependencies.
        let r = MetricsRegistry::new();
        let c = r.counter("spins");
        let h = r.histogram("values", &[8.0, 64.0]);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for i in 0..per_thread {
                        c.incr(1);
                        h.record((i % 100) as f64);
                    }
                });
            }
        });
        let total = threads * per_thread;
        assert_eq!(c.get(), total);
        let s = h.snapshot();
        assert_eq!(s.count, total);
        assert_eq!(s.buckets.iter().sum::<u64>(), total);
        // Sum of 0..100 repeated: exact in f64 (integers < 2^53).
        let expected: f64 = (0..per_thread).map(|i| (i % 100) as f64).sum::<f64>() * threads as f64;
        assert_eq!(s.sum, expected);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_sanitised() {
        let r = MetricsRegistry::new();
        r.counter("serve.http.requests").incr(3);
        r.gauge("serve.snapshot.version").set(2.0);
        let h = r.histogram("serve.retrain.seconds", &[1.0, 10.0]);
        // Dyadic values: the sum (106) is exact, so Display is stable.
        for v in [0.5, 0.5, 5.0, 100.0] {
            h.record(v);
        }
        let text = r.snapshot().render_prometheus();
        for needle in [
            "# TYPE serve_http_requests counter\nserve_http_requests 3\n",
            "# TYPE serve_snapshot_version gauge\nserve_snapshot_version 2\n",
            "# TYPE serve_retrain_seconds histogram\n",
            "serve_retrain_seconds_bucket{le=\"1\"} 2\n",
            "serve_retrain_seconds_bucket{le=\"10\"} 3\n",
            "serve_retrain_seconds_bucket{le=\"+Inf\"} 4\n",
            "serve_retrain_seconds_sum 106\n",
            "serve_retrain_seconds_count 4\n",
        ] {
            assert!(text.contains(needle), "{needle:?} missing from:\n{text}");
        }
    }

    #[test]
    fn prometheus_names_are_grammar_safe() {
        assert_eq!(
            prometheus_name("serve.http.latency_ms.v1_hazard"),
            "serve_http_latency_ms_v1_hazard"
        );
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn quantile_table_summarises_matching_histograms() {
        let r = MetricsRegistry::new();
        let h = r.histogram("router.shard.latency_ms.0", &[1.0, 10.0]);
        for v in [0.5, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        // Empty histograms report null quantiles but still appear.
        r.histogram("router.shard.latency_ms.1", &[1.0, 10.0]);
        // Non-matching names are excluded.
        r.histogram("other.latency_ms.x", &[1.0]).record(1.0);
        let table = r.snapshot().quantile_table("router.shard.latency_ms.");
        let text = table.render();
        assert!(text.contains("\"0\":{\"requests\":4,\"p50_ms\":"), "{text}");
        assert!(
            text.contains("\"1\":{\"requests\":0,\"p50_ms\":null"),
            "{text}"
        );
        assert!(!text.contains("other"), "{text}");
        assert!(text.contains("\"max_ms\":4"), "{text}");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        // 100 observations spread uniformly over (0, 10]: every quantile
        // sits in the first bucket, interpolated between min and bound.
        for i in 1..=100 {
            h.record(i as f64 / 10.0);
        }
        let s = h.snapshot();
        let p50 = s.p50().unwrap();
        assert!((p50 - 5.0).abs() < 0.2, "p50 ≈ 5, got {p50}");
        let p99 = s.p99().unwrap();
        assert!((p99 - 9.9).abs() < 0.2, "p99 ≈ 9.9, got {p99}");
        // Quantiles are monotone in q and bracketed by min/max.
        assert!(s.quantile(0.0).unwrap() >= s.min);
        assert!(s.p50().unwrap() <= s.p90().unwrap());
        assert!(s.p90().unwrap() <= s.p99().unwrap());
        assert!(s.quantile(1.0).unwrap() <= s.max);
    }

    #[test]
    fn quantile_hits_exact_bounds() {
        let h = Histogram::new(&[1.0, 2.0]);
        // Two observations at the bucket bounds themselves: the median
        // rank falls on the first bucket's edge.
        h.record(1.0);
        h.record(2.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(2.0));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let s = Histogram::new(&[1.0]).snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p99(), None);
    }

    #[test]
    fn quantile_rejects_out_of_range_q() {
        let h = Histogram::new(&[1.0]);
        h.record(0.5);
        let s = h.snapshot();
        assert_eq!(s.quantile(-0.01), None);
        assert_eq!(s.quantile(1.01), None);
        assert_eq!(s.quantile(f64::NAN), None);
    }

    #[test]
    fn quantile_in_overflow_bucket_is_bounded_by_max() {
        let h = Histogram::new(&[1.0]);
        // Everything overflows the last bound; interpolation must use
        // the tracked max, not run off to infinity.
        for v in [5.0, 7.0, 9.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let p99 = s.p99().unwrap();
        assert!((1.0..=9.0).contains(&p99), "p99 within [bound, max]: {p99}");
        assert_eq!(s.quantile(1.0), Some(9.0));
    }

    #[test]
    fn quantile_of_single_observation_is_that_observation() {
        let h = Histogram::new(&[10.0, 100.0]);
        h.record(42.0);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(42.0), "q={q}");
        }
    }

    #[test]
    fn exponential_bounds_are_geometric_and_strict() {
        let b = exponential_bounds(0.5, 2.0, 5);
        assert_eq!(b, vec![0.5, 1.0, 2.0, 4.0, 8.0]);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "exponential_bounds")]
    fn exponential_bounds_reject_flat_ladders() {
        exponential_bounds(1.0, 1.0, 4);
    }

    #[test]
    fn exponential_histograms_register_once() {
        let r = MetricsRegistry::new();
        let h1 = r.histogram_exponential("lat", 1.0, 2.0, 3);
        let h2 = r.histogram_exponential("lat", 9.0, 9.0, 9);
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(h1.snapshot().bounds, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(prometheus_label_value("plain"), "plain");
        assert_eq!(prometheus_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn snapshot_json_is_shaped() {
        let r = MetricsRegistry::new();
        r.counter("n").incr(1);
        r.gauge("g").set(0.5);
        r.histogram("h", &[1.0]).record(2.0);
        let json = r.snapshot().to_json().render();
        for needle in [
            "\"counters\":{\"n\":1}",
            "\"gauges\":{\"g\":0.5}",
            "\"buckets\":[0,1]",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }
}
