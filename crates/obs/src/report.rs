//! The machine-readable run report: top-level run attributes + the
//! span-timing tree + a metrics snapshot, serialised as one JSON
//! document the bench harness diffs across PRs.

use crate::json::JsonValue;
use crate::metrics::MetricsSnapshot;
use crate::span::StageTimings;
use std::io::Write;
use std::path::Path;

/// Schema identifier written into every report.
pub const RUN_REPORT_SCHEMA: &str = "viralcast-run-report/v1";

/// One run's worth of observability output.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Free-form top-level attributes (command, dataset sizes, thread
    /// count, objective trajectory, …) in insertion order.
    pub attrs: Vec<(String, JsonValue)>,
    /// Aggregated span timings.
    pub timings: StageTimings,
    /// Metrics registry snapshot.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// A report with the given timing tree and metrics.
    pub fn new(timings: StageTimings, metrics: MetricsSnapshot) -> RunReport {
        RunReport {
            attrs: Vec::new(),
            timings,
            metrics,
        }
    }

    /// Adds a top-level attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> RunReport {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// The JSON document:
    /// `{"schema": …, <attrs…>, "timings": {…}, "metrics": {…}}`.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs: Vec<(String, JsonValue)> = vec![("schema".into(), RUN_REPORT_SCHEMA.into())];
        pairs.extend(self.attrs.iter().cloned());
        pairs.push(("timings".into(), self.timings.to_json()));
        pairs.push(("metrics".into(), self.metrics.to_json()));
        JsonValue::Obj(pairs)
    }

    /// Writes the pretty-printed report to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "{}", self.to_json().render_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::{Recorder, Span};

    #[test]
    fn report_json_contains_all_sections() {
        let recorder = Recorder::new("run");
        {
            let _g = recorder.install();
            let _s = Span::enter("cooccurrence");
        }
        let registry = MetricsRegistry::new();
        registry.counter("slpa.iterations").incr(14);

        let report = RunReport::new(recorder.finish(), registry.snapshot())
            .attr("command", "infer")
            .attr("threads", 4usize);
        let json = report.to_json().render();
        for needle in [
            "\"schema\":\"viralcast-run-report/v1\"",
            "\"command\":\"infer\"",
            "\"threads\":4",
            "\"name\":\"cooccurrence\"",
            "\"slpa.iterations\":14",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }

    #[test]
    fn save_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("viralcast-obs-report-test/nested");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.json");
        RunReport::default().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("viralcast-run-report/v1"));
    }
}
