//! Structured JSONL access log for request-serving daemons.
//!
//! One [`AccessRecord`] per handled request, rendered as one compact
//! JSON object per line. The writer flushes after every append so a
//! `tail -f` sees requests as they happen and a crash loses at most the
//! line being written. The schema is flat on purpose — every value a
//! log pipeline might filter on (status, endpoint, trace ID) is a
//! top-level key.

use crate::json::JsonValue;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Identifies the access-log line format; bump on breaking changes.
pub const ACCESS_LOG_SCHEMA: &str = "viralcast-access-log/v1";

/// One handled request, borrowed from the serving call site.
#[derive(Clone, Copy, Debug)]
pub struct AccessRecord<'a> {
    /// HTTP method (`GET`, `POST`, …).
    pub method: &'a str,
    /// Request path as received (no query string).
    pub path: &'a str,
    /// Response status code.
    pub status: u16,
    /// Model snapshot version the response was computed from (0 when
    /// the request never touched the model, e.g. a parse error).
    pub snapshot_version: u64,
    /// Wall-clock handling latency in microseconds.
    pub latency_us: u64,
    /// The request's trace ID (accepted or generated).
    pub trace_id: &'a str,
}

/// An append-only JSONL access log.
pub struct AccessLog {
    out: Mutex<BufWriter<File>>,
}

impl AccessLog {
    /// Creates (truncating) the log at `path`, making parent directories
    /// as needed.
    pub fn create(path: &Path) -> io::Result<AccessLog> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(AccessLog {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&self, record: &AccessRecord<'_>) {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let line = JsonValue::obj(vec![
            ("schema", ACCESS_LOG_SCHEMA.into()),
            ("unix_ms", unix_ms.into()),
            ("method", record.method.into()),
            ("path", record.path.into()),
            ("status", JsonValue::U64(record.status as u64)),
            ("snapshot_version", record.snapshot_version.into()),
            ("latency_us", record.latency_us.into()),
            ("trace_id", record.trace_id.into()),
        ])
        .render();
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_one_json_object_per_line() {
        let dir =
            std::env::temp_dir().join(format!("viralcast-obs-access-test-{}", std::process::id()));
        let path = dir.join("nested/access.jsonl");
        let log = AccessLog::create(&path).unwrap();
        log.append(&AccessRecord {
            method: "GET",
            path: "/healthz",
            status: 200,
            snapshot_version: 1,
            latency_us: 120,
            trace_id: "abc-1",
        });
        log.append(&AccessRecord {
            method: "POST",
            path: "/v1/predict",
            status: 400,
            snapshot_version: 0,
            latency_us: 37,
            trace_id: "abc-2",
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, needles) in lines.iter().zip([
            vec![
                r#""schema":"viralcast-access-log/v1""#,
                r#""method":"GET""#,
                r#""path":"/healthz""#,
                r#""status":200"#,
                r#""snapshot_version":1"#,
                r#""latency_us":120"#,
                r#""trace_id":"abc-1""#,
            ],
            vec![r#""status":400"#, r#""trace_id":"abc-2""#],
        ]) {
            for needle in needles {
                assert!(line.contains(needle), "{needle} missing from {line}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
