//! `viralcast-obs`: dependency-free observability for the viralcast
//! pipeline.
//!
//! Three pieces, matching the three blind spots the pipeline had:
//!
//! * **Spans** ([`Span`], [`Recorder`], [`StageTimings`]) — nested
//!   wall-clock timings that aggregate into a tree, replacing the loose
//!   `*_seconds: f64` fields that used to be hand-threaded through
//!   `InferenceOutcome` and `LevelSummary`.
//! * **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]) — lock-free, safe to update from inside rayon
//!   workers: per-epoch objective, gradient norms, accepted vs
//!   rolled-back PGD steps, SLPA iterations, sub-cascade fan-out, merge
//!   level sizes.
//! * **Sinks** ([`Logger`], [`StderrSink`], [`JsonlSink`],
//!   [`RunReport`]) — a leveled stderr logger, a JSONL event log, and a
//!   JSON run-report writer whose schema
//!   ([`RUN_REPORT_SCHEMA`]) the bench harness diffs across PRs.
//!
//! The crate is deliberately free of runtime dependencies so that
//! instrumentation can never break the build or perturb the hot path;
//! JSON output comes from a small built-in writer
//! ([`JsonValue`]) that the integration tests round-trip through
//! `serde_json`.
//!
//! # Typical wiring (what the `viralcast` CLI does)
//!
//! ```
//! use viralcast_obs as obs;
//!
//! let recorder = obs::Recorder::new("viralcast");
//! {
//!     let _guard = recorder.install();
//!     let _span = obs::Span::enter("cooccurrence");
//!     obs::metrics().counter("cooccurrence.edges").incr(42);
//! } // span closes, timing lands in the recorder
//!
//! let report = obs::RunReport::new(recorder.finish(), obs::metrics().snapshot())
//!     .attr("command", "infer");
//! assert!(report.to_json().render().contains("cooccurrence"));
//! ```

mod access;
mod events;
mod json;
mod metrics;
mod report;
mod span;

pub use access::{AccessLog, AccessRecord, ACCESS_LOG_SCHEMA};
pub use events::{debug, info, logger, warn, Event, JsonlSink, Level, Logger, Sink, StderrSink};
pub use json::JsonValue;
pub use metrics::{
    exponential_bounds, prometheus_label_value, prometheus_name, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use report::{RunReport, RUN_REPORT_SCHEMA};
pub use span::{global_timings, Recorder, RecorderGuard, Span, SpanGuard, StageTimings};

/// The process-global metrics registry the pipeline stages report into.
pub fn metrics() -> &'static MetricsRegistry {
    metrics::global()
}
