//! A minimal JSON value and writer.
//!
//! The sinks and the run report need to *emit* JSON (never parse it), and
//! this crate is deliberately dependency-free, so a ~100-line writer
//! replaces `serde_json` here. The output is strict JSON — the
//! integration tests round-trip every emitted document through
//! `serde_json` to prove it.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact, unlike `F64`).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values are emitted as `null` (JSON has no
    /// NaN/Infinity).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Pretty rendering with two-space indentation — the format of the
    /// run-report files, stable enough to diff across runs.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::F64(x) => write_f64(out, *x),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                // Scalar-only arrays stay on one line (objective
                // trajectories would otherwise take a line per epoch).
                if items
                    .iter()
                    .all(|i| !matches!(i, JsonValue::Arr(_) | JsonValue::Obj(_)))
                {
                    self.write(out);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest round-trip float formatting is valid JSON
        // (digits, optional '.', optional 'e' exponent).
        let _ = write!(out, "{x}");
        // `{}` prints integral floats without a decimal point; that is
        // still valid JSON and parses back as a number.
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::U64(42).render(), "42");
        assert_eq!(JsonValue::I64(-7).render(), "-7");
        assert_eq!(JsonValue::F64(1.5).render(), "1.5");
        assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nested_structures_render() {
        let v = JsonValue::obj(vec![
            ("xs", JsonValue::from(vec![1u64, 2])),
            ("name", JsonValue::from("slpa")),
        ]);
        assert_eq!(v.render(), "{\"xs\":[1,2],\"name\":\"slpa\"}");
    }

    #[test]
    fn pretty_keeps_scalar_arrays_inline() {
        let v = JsonValue::obj(vec![("xs", JsonValue::from(vec![1.0, 2.5]))]);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"xs\": [1,2.5]"), "{pretty}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Arr(vec![]).render_pretty(), "[]");
        assert_eq!(JsonValue::Obj(vec![]).render_pretty(), "{}");
    }
}
