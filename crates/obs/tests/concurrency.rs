//! Proves the metrics registry loses no updates under a multi-threaded
//! rayon pool — the acceptance criterion for the lock-free registry.

use rayon::prelude::*;
use viralcast_obs::MetricsRegistry;

#[test]
fn rayon_pool_counter_and_histogram_totals_are_exact() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool");

    let registry = MetricsRegistry::new();
    let counter = registry.counter("pgd.epochs");
    let histogram = registry.histogram("pgd.grad_norm", &[0.25, 0.5, 0.75]);
    let gauge = registry.gauge("pgd.objective");

    let tasks: u64 = 64;
    let per_task: u64 = 5_000;
    pool.install(|| {
        (0..tasks).into_par_iter().for_each(|task| {
            // Handles cloned per task, like per-group PGD workers would.
            let counter = registry.counter("pgd.epochs");
            for i in 0..per_task {
                counter.incr(1);
                histogram.record((i % 100) as f64 / 100.0);
                gauge.set(task as f64);
            }
        });
    });

    let total = tasks * per_task;
    assert_eq!(counter.get(), total, "counter lost updates");

    let snap = registry.snapshot();
    assert_eq!(snap.counters["pgd.epochs"], total);

    let h = &snap.histograms["pgd.grad_norm"];
    assert_eq!(h.count, total, "histogram lost observations");
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        total,
        "bucket counts inconsistent with total"
    );
    // Values cycle 0.00..0.99; every bucket population is known exactly.
    // bounds [0.25, 0.5, 0.75] → <=0.25: 26 values, <=0.5: 25, <=0.75: 25,
    // overflow: 24 — each times total/100.
    let reps = total / 100;
    assert_eq!(h.buckets, vec![26 * reps, 25 * reps, 25 * reps, 24 * reps]);
    // Sum of 0.00..0.99 in hundredths: each v = k/100 with k < 2^53, so
    // the CAS-loop addition is exact up to f64 rounding of the partial
    // sums; allow a tiny relative tolerance.
    let expected = (0..100).map(|k| k as f64 / 100.0).sum::<f64>() * reps as f64;
    assert!(
        (h.sum - expected).abs() / expected < 1e-9,
        "sum {} vs expected {expected}",
        h.sum
    );
    assert_eq!(h.min, 0.0);
    assert_eq!(h.max, 0.99);

    // The gauge holds *some* task's last write — last-value-wins is the
    // contract, not a specific winner.
    let g = snap.gauges["pgd.objective"];
    assert!((0.0..tasks as f64).contains(&g), "gauge {g} out of range");
}

#[test]
fn concurrent_handle_creation_yields_one_metric() {
    // Racing get-or-create from many threads must converge on a single
    // counter rather than silently forking the value.
    let registry = MetricsRegistry::new();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool");
    pool.install(|| {
        (0..1_000u64).into_par_iter().for_each(|_| {
            registry.counter("race.counter").incr(1);
        });
    });
    assert_eq!(registry.counter("race.counter").get(), 1_000);
    assert_eq!(registry.snapshot().counters.len(), 1);
}
