//! Round-trips every JSON document the obs crate emits through
//! `serde_json`, proving the hand-rolled writer produces strict JSON
//! and that the expected span/metric names survive serialisation.

use std::path::PathBuf;
use viralcast_obs as obs;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("viralcast-obs-roundtrip")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn jsonl_event_log_parses_back() {
    let dir = temp_dir("jsonl");
    let path = dir.join("trace.jsonl");

    // A private logger would be ideal, but the global one is what the
    // pipeline uses; exercise the same path with a dedicated file sink.
    let logger = {
        // Logger::new is private; go through the sink directly.
        obs::JsonlSink::create(&path).unwrap()
    };
    use obs::Sink as _;
    for (stage, msg, n) in [("slpa", "converged", 14u64), ("pgd", "epoch", 3)] {
        logger.emit(&obs::Event {
            level: obs::Level::Info,
            stage,
            message: msg,
            fields: &[
                ("n", n.into()),
                ("weird", "quote\" and \\ backslash".into()),
            ],
            elapsed_secs: 0.125,
        });
    }
    logger.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    let stages: Vec<String> = lines
        .iter()
        .map(|line| {
            let v: serde_json::Value =
                serde_json::from_str(line).expect("line must be strict JSON");
            assert_eq!(v["level"], "info");
            assert_eq!(v["fields"]["weird"], "quote\" and \\ backslash");
            v["stage"].as_str().unwrap().to_string()
        })
        .collect();
    assert_eq!(stages, vec!["slpa", "pgd"]);
}

#[test]
fn metrics_snapshot_parses_back() {
    let registry = obs::MetricsRegistry::new();
    registry.counter("slpa.iterations").incr(14);
    registry.gauge("pgd.objective").set(-1234.5);
    let h = registry.histogram("split.fanout", &[2.0, 8.0]);
    for v in [1.0, 4.0, 100.0] {
        h.record(v);
    }

    let json = registry.snapshot().to_json().render();
    let v: serde_json::Value = serde_json::from_str(&json).expect("snapshot must be strict JSON");
    assert_eq!(v["counters"]["slpa.iterations"], 14);
    assert_eq!(v["gauges"]["pgd.objective"], -1234.5);
    assert_eq!(v["histograms"]["split.fanout"]["count"], 3);
    assert_eq!(
        v["histograms"]["split.fanout"]["buckets"],
        serde_json::json!([1, 1, 1])
    );
}

#[test]
fn run_report_file_parses_back_with_expected_span_names() {
    let dir = temp_dir("report");
    let path = dir.join("run.json");

    // Build a timing tree shaped like a real `viralcast infer` run.
    let recorder = obs::Recorder::new("viralcast");
    {
        let _g = recorder.install();
        {
            let _infer = obs::Span::enter("infer");
            let _c = obs::Span::enter("cooccurrence");
        }
        {
            let _infer = obs::Span::enter("infer");
            let _s = obs::Span::enter("slpa");
        }
    }
    let registry = obs::MetricsRegistry::new();
    registry.counter("pgd.epochs").incr(40);

    obs::RunReport::new(recorder.finish(), registry.snapshot())
        .attr("command", "infer")
        .attr("ll_trajectory", vec![-10.0, -5.0, -2.5])
        .attr("nan_guard", f64::NAN) // must serialise as null, not NaN
        .save(&path)
        .unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).expect("report must be strict JSON");
    assert_eq!(v["schema"], "viralcast-run-report/v1");
    assert_eq!(v["command"], "infer");
    assert_eq!(v["ll_trajectory"], serde_json::json!([-10.0, -5.0, -2.5]));
    assert!(v["nan_guard"].is_null());
    assert_eq!(v["metrics"]["counters"]["pgd.epochs"], 40);

    // Expected span names present in the nested tree.
    assert_eq!(v["timings"]["name"], "viralcast");
    let infer = &v["timings"]["children"][0];
    assert_eq!(infer["name"], "infer");
    assert_eq!(infer["count"], 2, "repeated spans must aggregate");
    let child_names: Vec<&str> = infer["children"]
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c["name"].as_str().unwrap())
        .collect();
    assert_eq!(child_names, vec!["cooccurrence", "slpa"]);
}
