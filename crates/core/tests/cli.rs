//! Integration tests of the `viralcast` command-line binary: the full
//! simulate → infer → predict → influencers loop through files and
//! process boundaries.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_viralcast"))
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("viralcast-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_cli_round_trip() {
    let corpus = temp("corpus.jsonl");
    let embeddings = temp("embeddings.json");

    let out = bin()
        .args([
            "simulate-sbm",
            "--nodes",
            "150",
            "--cascades",
            "80",
            "--local",
        ])
        .args(["--seed", "5", "--out", corpus.to_str().unwrap()])
        .output()
        .expect("simulate-sbm runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(corpus.exists());

    let out = bin()
        .args(["infer", "--corpus", corpus.to_str().unwrap()])
        .args(["--topics", "4", "--out", embeddings.to_str().unwrap()])
        .output()
        .expect("infer runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("communities"),
        "unexpected output: {stdout}"
    );

    let out = bin()
        .args(["predict", "--corpus", corpus.to_str().unwrap()])
        .args(["--embeddings", embeddings.to_str().unwrap()])
        .output()
        .expect("predict runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("F1"), "missing F1 table: {stdout}");

    let out = bin()
        .args(["influencers", "--embeddings", embeddings.to_str().unwrap()])
        .args(["--top", "5"])
        .output()
        .expect("influencers runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Header plus five ranked rows.
    assert_eq!(stdout.lines().count(), 6, "output: {stdout}");

    std::fs::remove_file(&corpus).ok();
    std::fs::remove_file(&embeddings).ok();
}

#[test]
fn gdelt_csv_export() {
    let mentions = temp("mentions.csv");
    let out = bin()
        .args(["simulate-gdelt", "--sites", "300", "--events", "50"])
        .args(["--seed", "2", "--out", mentions.to_str().unwrap()])
        .output()
        .expect("simulate-gdelt runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&mentions).unwrap();
    assert!(text.starts_with("site,event,hour"));
    assert!(text.lines().count() > 50);
    std::fs::remove_file(&mentions).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
}

#[test]
fn missing_required_flag_is_reported() {
    let out = bin().arg("infer").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--corpus"), "stderr: {stderr}");
}

#[test]
fn unknown_flag_exits_with_usage_code() {
    let out = bin()
        .args(["infer", "--corpus", "whatever.jsonl", "--frobnicate", "3"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--frobnicate"), "stderr: {stderr}");
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
}

#[test]
fn malformed_flag_value_exits_with_usage_code() {
    let out = bin()
        .args(["simulate-sbm", "--out", "x.jsonl", "--nodes", "many"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--nodes"), "stderr: {stderr}");
    assert!(stderr.contains("malformed"), "stderr: {stderr}");
}

#[test]
fn missing_flag_value_exits_with_usage_code() {
    // `--seed` followed by another flag has no value.
    let out = bin()
        .args(["simulate-sbm", "--seed", "--out", "x.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--seed"), "stderr: {stderr}");
}

#[test]
fn bad_log_level_exits_with_usage_code() {
    let out = bin()
        .args([
            "influencers",
            "--embeddings",
            "x.json",
            "--log-level",
            "loud",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--log-level"), "stderr: {stderr}");
}

#[test]
fn infer_writes_run_report_and_trace() {
    let corpus = temp("obs-corpus.jsonl");
    let embeddings = temp("obs-emb.json");
    let metrics = temp("obs-run.json");
    let trace = temp("obs-trace.jsonl");

    let out = bin()
        .args([
            "simulate-sbm",
            "--nodes",
            "120",
            "--cascades",
            "60",
            "--local",
        ])
        .args(["--seed", "7", "--out", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["infer", "--corpus", corpus.to_str().unwrap()])
        .args(["--topics", "4", "--out", embeddings.to_str().unwrap()])
        .args(["--metrics-out", metrics.to_str().unwrap()])
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The run report is valid JSON with the nested stage-timing tree.
    let text = std::fs::read_to_string(&metrics).unwrap();
    let report: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(report["schema"], "viralcast-run-report/v1");
    assert_eq!(report["command"], "infer");
    let timings = &report["timings"];
    assert_eq!(timings["name"], "viralcast");
    let top: Vec<&str> = timings["children"]
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c["name"].as_str().unwrap())
        .collect();
    assert!(top.contains(&"infer"), "top-level spans: {top:?}");
    let infer = timings["children"]
        .as_array()
        .unwrap()
        .iter()
        .find(|c| c["name"] == "infer")
        .unwrap();
    let stages: Vec<&str> = infer["children"]
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c["name"].as_str().unwrap())
        .collect();
    for stage in ["cooccurrence", "slpa", "hierarchical"] {
        assert!(stages.contains(&stage), "stages: {stages:?}");
    }
    let hierarchical = infer["children"]
        .as_array()
        .unwrap()
        .iter()
        .find(|c| c["name"] == "hierarchical")
        .unwrap();
    let level0 = &hierarchical["children"].as_array().unwrap()[0];
    assert!(level0["name"].as_str().unwrap().starts_with("level."));
    let phases: Vec<&str> = level0["children"]
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c["name"].as_str().unwrap())
        .collect();
    assert!(phases.contains(&"split"), "phases: {phases:?}");
    assert!(phases.contains(&"optimize"), "phases: {phases:?}");

    // Metric counters and the per-epoch objective trajectory made it in.
    assert!(
        report["metrics"]["counters"]["pgd.epochs"]
            .as_u64()
            .unwrap()
            > 0
    );
    let levels = report["levels"].as_array().unwrap();
    assert!(!levels.is_empty());
    let trajectory = levels[0]["ll_trajectory"].as_array().unwrap();
    assert!(!trajectory.is_empty(), "empty objective trajectory");

    // Every trace line is a standalone JSON event.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.lines().count() > 0);
    for line in trace_text.lines() {
        let event: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(event["stage"].is_string(), "bad event: {line}");
        assert!(event["level"].is_string(), "bad event: {line}");
    }

    for p in [corpus, embeddings, metrics, trace] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn predict_rejects_mismatched_universes() {
    let corpus = temp("mismatch-corpus.jsonl");
    let embeddings = temp("mismatch-emb.json");
    bin()
        .args([
            "simulate-sbm",
            "--nodes",
            "150",
            "--cascades",
            "30",
            "--local",
        ])
        .args(["--seed", "1", "--out", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    // Embeddings over a smaller universe.
    let small = temp("small-corpus.jsonl");
    bin()
        .args([
            "simulate-sbm",
            "--nodes",
            "50",
            "--cascades",
            "30",
            "--local",
        ])
        .args(["--seed", "1", "--out", small.to_str().unwrap()])
        .output()
        .unwrap();
    bin()
        .args(["infer", "--corpus", small.to_str().unwrap()])
        .args(["--topics", "2", "--out", embeddings.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["predict", "--corpus", corpus.to_str().unwrap()])
        .args(["--embeddings", embeddings.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nodes"), "stderr: {stderr}");
    for p in [corpus, embeddings, small] {
        std::fs::remove_file(p).ok();
    }
}
