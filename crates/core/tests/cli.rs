//! Integration tests of the `viralcast` command-line binary: the full
//! simulate → infer → predict → influencers loop through files and
//! process boundaries.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_viralcast"))
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("viralcast-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_cli_round_trip() {
    let corpus = temp("corpus.jsonl");
    let embeddings = temp("embeddings.json");

    let out = bin()
        .args(["simulate-sbm", "--nodes", "150", "--cascades", "80", "--local"])
        .args(["--seed", "5", "--out", corpus.to_str().unwrap()])
        .output()
        .expect("simulate-sbm runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(corpus.exists());

    let out = bin()
        .args(["infer", "--corpus", corpus.to_str().unwrap()])
        .args(["--topics", "4", "--out", embeddings.to_str().unwrap()])
        .output()
        .expect("infer runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("communities"), "unexpected output: {stdout}");

    let out = bin()
        .args(["predict", "--corpus", corpus.to_str().unwrap()])
        .args(["--embeddings", embeddings.to_str().unwrap()])
        .output()
        .expect("predict runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("F1"), "missing F1 table: {stdout}");

    let out = bin()
        .args(["influencers", "--embeddings", embeddings.to_str().unwrap()])
        .args(["--top", "5"])
        .output()
        .expect("influencers runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Header plus five ranked rows.
    assert_eq!(stdout.lines().count(), 6, "output: {stdout}");

    std::fs::remove_file(&corpus).ok();
    std::fs::remove_file(&embeddings).ok();
}

#[test]
fn gdelt_csv_export() {
    let mentions = temp("mentions.csv");
    let out = bin()
        .args(["simulate-gdelt", "--sites", "300", "--events", "50"])
        .args(["--seed", "2", "--out", mentions.to_str().unwrap()])
        .output()
        .expect("simulate-gdelt runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&mentions).unwrap();
    assert!(text.starts_with("site,event,hour"));
    assert!(text.lines().count() > 50);
    std::fs::remove_file(&mentions).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
}

#[test]
fn missing_required_flag_is_reported() {
    let out = bin().arg("infer").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--corpus"), "stderr: {stderr}");
}

#[test]
fn predict_rejects_mismatched_universes() {
    let corpus = temp("mismatch-corpus.jsonl");
    let embeddings = temp("mismatch-emb.json");
    bin()
        .args(["simulate-sbm", "--nodes", "150", "--cascades", "30", "--local"])
        .args(["--seed", "1", "--out", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    // Embeddings over a smaller universe.
    let small = temp("small-corpus.jsonl");
    bin()
        .args(["simulate-sbm", "--nodes", "50", "--cascades", "30", "--local"])
        .args(["--seed", "1", "--out", small.to_str().unwrap()])
        .output()
        .unwrap();
    bin()
        .args(["infer", "--corpus", small.to_str().unwrap()])
        .args(["--topics", "2", "--out", embeddings.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["predict", "--corpus", corpus.to_str().unwrap()])
        .args(["--embeddings", embeddings.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nodes"), "stderr: {stderr}");
    for p in [corpus, embeddings, small] {
        std::fs::remove_file(p).ok();
    }
}
