//! The chaos harness's verification path, exercised without spawning a
//! daemon: sequence numbers planted in cascades must survive the WAL
//! round trip, and `verify_recovered` must flag exactly the acked
//! sequence numbers the log does not hold.

use std::collections::BTreeSet;
use std::path::PathBuf;
use viralcast::chaos;
use viralcast::propagation::{Cascade, Infection};
use viralcast::store::{EventStore, WalOptions};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "viralcast-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seq_cascade(seq: u64) -> Cascade {
    let nodes = 50u64;
    let a = seq % nodes;
    let mut b = (seq + 1) % nodes;
    if b == a {
        b = (a + 1) % nodes;
    }
    Cascade::new(vec![
        Infection::new(a as u32, 0.0),
        Infection::new(b as u32, (seq + 1) as f64),
    ])
    .unwrap()
}

#[test]
fn replay_recovers_every_acked_seq() {
    let dir = tmp_dir("recover");
    let acked: BTreeSet<u64> = [0u64, 1, 2, 5, 9].into_iter().collect();
    {
        let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
        let cascades: Vec<Cascade> = acked.iter().map(|&seq| seq_cascade(seq)).collect();
        store.append_batch(&cascades).unwrap();
    }
    let outcome = chaos::verify_recovered(&dir, &acked).unwrap();
    assert_eq!(outcome.recovered, acked.len() as u64);
    assert!(outcome.missing.is_empty(), "{:?}", outcome.missing);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_flags_acked_seqs_the_log_lost() {
    let dir = tmp_dir("loss");
    {
        let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
        store
            .append_batch(&[seq_cascade(0), seq_cascade(1)])
            .unwrap();
    }
    // The harness acked 0, 1, 7 and 9 — but 7 and 9 never hit the disk.
    let acked: BTreeSet<u64> = [0u64, 1, 7, 9].into_iter().collect();
    let outcome = chaos::verify_recovered(&dir, &acked).unwrap();
    assert_eq!(outcome.recovered, 2);
    assert_eq!(outcome.missing, vec![7, 9]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn foreign_cascades_in_the_log_are_ignored() {
    let dir = tmp_dir("foreign");
    {
        let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
        // A cascade from another workload: three infections, fractional
        // times. It must not decode into a sequence number.
        let foreign = Cascade::new(vec![
            Infection::new(3u32, 0.0),
            Infection::new(4u32, 0.25),
            Infection::new(5u32, 1.75),
        ])
        .unwrap();
        store.append_batch(&[foreign, seq_cascade(11)]).unwrap();
    }
    let acked: BTreeSet<u64> = [11u64].into_iter().collect();
    let outcome = chaos::verify_recovered(&dir, &acked).unwrap();
    assert_eq!(outcome.recovered, 1);
    assert!(outcome.missing.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
