//! **viralcast** — predicting viral news events in online media.
//!
//! A faithful, from-scratch reproduction of Lu & Szymanski, *Predicting
//! Viral News Events in Online Media* (ParSocial / IPDPSW 2017): node
//! influence/selectivity embeddings inferred from information cascades
//! by community-parallel projected gradient ascent, and viral-cascade
//! prediction from the embeddings of early adopters.
//!
//! The workspace is layered; this crate is the facade that wires the
//! layers into the paper's two experimental pipelines:
//!
//! * [`experiment`] — the Section VI-A synthetic setup: an SBM graph,
//!   planted ground-truth embeddings, and a simulated cascade corpus
//!   split into train/test.
//! * [`pipeline`] — the end-to-end flows: cascades → co-occurrence graph
//!   → SLPA communities → hierarchical parallel inference → embeddings,
//!   and embeddings + held-out cascades → early-adopter features →
//!   SVM → F1-vs-threshold curves.
//! * [`influencers`] — the "identification of the significant
//!   influencers" application from the introduction.
//! * [`loadgen`] / [`hotpath`] — the performance harnesses behind
//!   `viralcast loadgen` and `viralcast bench-hotpath`: closed-loop HTTP
//!   load against a live daemon, and a microbenchmark of the hazard
//!   candidate scan. Both write machine-readable `BENCH_*.json` reports.
//! * [`backends`] — the `viralcast bench-backends` head-to-head: every
//!   registered `CascadeModel` backend fit on the same synthetic corpus,
//!   scored on held-out next-adopter accuracy and candidate-scan cost
//!   (`BENCH_backends.json`).
//! * [`chaos`] — the kill-loop resilience harness behind
//!   `viralcast chaos`: repeated SIGKILL/restart of a child daemon under
//!   load, with a final on-disk replay asserting zero acked-event loss
//!   (`BENCH_chaos.json`).
//! * [`replica_bench`] — the `viralcast bench-replica` read-scaling
//!   comparison: the same sharded cluster driven with and without
//!   followers, reporting read throughput per topology
//!   (`BENCH_replica.json`).
//! * [`prelude`] — one-line imports for the common types.
//!
//! # Quickstart
//!
//! ```
//! use viralcast::prelude::*;
//!
//! // A small synthetic world (Section VI-A, scaled down).
//! let experiment = SbmExperiment::build(&SbmExperimentConfig {
//!     sbm: SbmConfig { nodes: 200, community_size: 20, intra_prob: 0.3, inter_prob: 0.002 },
//!     cascades: 300,
//!     ..SbmExperimentConfig::default()
//! }, 42);
//!
//! // Infer influence/selectivity embeddings from the training corpus.
//! let options = InferOptions { topics: 4, ..InferOptions::default() };
//! let inference = infer_embeddings(experiment.train(), &options);
//! assert_eq!(inference.embeddings.node_count(), 200);
//!
//! // Predict which held-out cascades go viral from their early adopters.
//! let task = PredictionTask { window: experiment.config().observation_window, ..PredictionTask::default() };
//! let dataset = extract_dataset(&inference.embeddings, experiment.test(), &task);
//! let threshold = dataset.top_fraction_threshold(0.2);
//! let curve = threshold_sweep(&dataset, &[threshold], &task);
//! assert!(!curve.is_empty());
//! ```

#![warn(missing_docs)]

pub mod backends;
pub mod chaos;
pub mod experiment;
pub mod hotpath;
pub mod influencers;
pub mod loadgen;
pub mod pipeline;
pub mod prelude;
pub mod replica_bench;

pub use experiment::{SbmExperiment, SbmExperimentConfig};
pub use influencers::{top_influencers, topic_influencers, InfluencerRank};
pub use pipeline::{
    infer_embeddings, update_embeddings, InferOptions, InferenceOutcome, UpdateError,
};

// Re-export the component crates under stable names so downstream users
// need only one dependency.
pub use viralcast_cluster as cluster;
pub use viralcast_community as community;
pub use viralcast_embed as embed;
pub use viralcast_gdelt as gdelt;
pub use viralcast_graph as graph;
pub use viralcast_model as model;
pub use viralcast_obs as obs;
pub use viralcast_predict as predict;
pub use viralcast_propagation as propagation;
pub use viralcast_replica as replica;
pub use viralcast_serve as serve;
pub use viralcast_store as store;
