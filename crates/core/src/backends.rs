//! Head-to-head backend benchmark: `viralcast bench-backends`.
//!
//! Fits every registered [`CascadeModel`] backend — the paper's
//! embeddings and the NETINF greedy baseline — on the *same* synthetic
//! SBM corpus, then scores each on the same held-out split so
//! `BENCH_backends.json` answers the two questions a backend choice
//! hinges on: how well does it rank the next adopter, and what does one
//! candidate scan cost?
//!
//! * **fit_seconds** — wall-clock training time on the train split.
//! * **hit_at_top** — held-out next-adopter accuracy: for each test
//!   cascade with at least two infections, observe only the seed and ask
//!   the backend for its top-k next adopters; a hit means the cascade's
//!   actual second adopter is among them. This is the serving question
//!   (`/v1/predict`) asked of ground truth the model never saw.
//! * **ns_per_rate_op** — mean cost of one candidate-row evaluation
//!   inside [`CascadeModel::rank_candidates`], the serving hot path,
//!   measured over repeated full scans with a folded checksum so the
//!   work cannot be dead-code-eliminated.
//!
//! Everything is deterministic given `--seed`: same corpus, same
//! evaluation order, same scan sources for every backend.

use std::sync::Arc;
use std::time::Instant;

use viralcast_graph::SbmConfig;
use viralcast_model::{CascadeModel, EmbeddingBackend, NetInfBackend, NetInfConfig};
use viralcast_obs::JsonValue;
use viralcast_propagation::CascadeSet;

use crate::experiment::{SbmExperiment, SbmExperimentConfig};
use crate::pipeline::{infer_embeddings, InferOptions};

/// One bench run's knobs.
#[derive(Clone, Debug)]
pub struct BackendsBenchConfig {
    /// Synthetic SBM graph size.
    pub nodes: usize,
    /// Cascades to simulate (train ∥ test split at 2/3).
    pub cascades: usize,
    /// Topic count for the embedding fit.
    pub topics: usize,
    /// Top-k cut for the next-adopter accuracy metric.
    pub top: usize,
    /// Full candidate scans to time per backend.
    pub scan_iterations: usize,
    /// Seed for the corpus and the scan sources.
    pub seed: u64,
}

impl Default for BackendsBenchConfig {
    fn default() -> BackendsBenchConfig {
        BackendsBenchConfig {
            nodes: 200,
            cascades: 300,
            topics: 4,
            top: 10,
            scan_iterations: 50,
            seed: 1,
        }
    }
}

/// One backend's scorecard.
#[derive(Clone, Debug)]
pub struct BackendReport {
    /// The backend id (`"embed"`, `"netinf"`).
    pub backend: &'static str,
    /// Wall-clock fit time on the train split, seconds.
    pub fit_seconds: f64,
    /// Held-out cascades evaluated (those with ≥ 2 infections).
    pub evaluated: usize,
    /// Evaluated cascades whose true second adopter ranked in the top-k.
    pub hits: usize,
    /// `hits / evaluated` (0 when nothing was evaluable).
    pub hit_at_top: f64,
    /// Mean cost of one candidate-row evaluation, nanoseconds.
    pub ns_per_rate_op: f64,
    /// Folded sum of every timed scan's scores (anti-DCE; also a cheap
    /// cross-machine determinism probe for a given seed).
    pub checksum: f64,
}

impl BackendReport {
    /// The scorecard as one JSON object for the report's `backends`
    /// array.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("backend", JsonValue::from(self.backend)),
            ("fit_seconds", JsonValue::from(self.fit_seconds)),
            ("evaluated", JsonValue::from(self.evaluated)),
            ("hits", JsonValue::from(self.hits)),
            ("hit_at_top", JsonValue::from(self.hit_at_top)),
            ("ns_per_rate_op", JsonValue::from(self.ns_per_rate_op)),
            ("checksum", JsonValue::from(self.checksum)),
        ])
    }
}

/// What the bench measured, across all backends.
#[derive(Clone, Debug)]
pub struct BackendsBenchSummary {
    /// Nodes in the synthetic universe.
    pub nodes: usize,
    /// Train-split cascades every backend fit on.
    pub train_cascades: usize,
    /// Test-split cascades the accuracy metric drew from.
    pub test_cascades: usize,
    /// The top-k cut used for `hit_at_top`.
    pub top: usize,
    /// One scorecard per backend, in registry order.
    pub backends: Vec<BackendReport>,
}

impl BackendsBenchSummary {
    /// The summary as run-report attributes (the `BENCH_backends.json`
    /// payload beyond the standard report envelope).
    pub fn attrs(&self) -> Vec<(String, JsonValue)> {
        vec![
            ("nodes".into(), self.nodes.into()),
            ("train_cascades".into(), self.train_cascades.into()),
            ("test_cascades".into(), self.test_cascades.into()),
            ("top".into(), self.top.into()),
            (
                "backends".into(),
                JsonValue::Arr(self.backends.iter().map(BackendReport::to_json).collect()),
            ),
        ]
    }
}

/// Runs the benchmark: one corpus, every backend.
pub fn run(config: &BackendsBenchConfig) -> Result<BackendsBenchSummary, String> {
    if config.nodes == 0
        || config.cascades == 0
        || config.topics == 0
        || config.top == 0
        || config.scan_iterations == 0
    {
        return Err(
            "--nodes, --cascades, --topics, --top and --scan-iterations must all be positive"
                .into(),
        );
    }
    let community_size = (config.nodes / 10).max(2);
    let experiment = SbmExperiment::build(
        &SbmExperimentConfig {
            sbm: SbmConfig {
                nodes: config.nodes,
                community_size,
                intra_prob: 0.3,
                inter_prob: 0.002,
            },
            cascades: config.cascades,
            ..SbmExperimentConfig::default()
        },
        config.seed,
    );
    let train = experiment.train();
    let test = experiment.test();

    // Fit both backends on the identical train split, timed.
    let mut backends: Vec<BackendReport> = Vec::with_capacity(2);
    let fit_embed = || -> Arc<dyn CascadeModel> {
        let outcome = infer_embeddings(
            train,
            &InferOptions {
                topics: config.topics,
                ..InferOptions::default()
            },
        );
        Arc::new(EmbeddingBackend::new(outcome.embeddings))
    };
    let fit_netinf = || -> Arc<dyn CascadeModel> {
        Arc::new(NetInfBackend::fit(train, NetInfConfig::default()))
    };
    type Fit<'a> = Box<dyn Fn() -> Arc<dyn CascadeModel> + 'a>;
    let fits: Vec<(&'static str, Fit)> = vec![
        (EmbeddingBackend::ID, Box::new(fit_embed)),
        (NetInfBackend::ID, Box::new(fit_netinf)),
    ];
    for (id, fit) in fits {
        let started = Instant::now();
        let model = fit();
        let fit_seconds = started.elapsed().as_secs_f64();
        debug_assert_eq!(model.backend_id(), id);
        let (evaluated, hits) = next_adopter_hits(model.as_ref(), test, config.top);
        let (ns_per_rate_op, checksum) = time_scans(model.as_ref(), config.scan_iterations);
        backends.push(BackendReport {
            backend: id,
            fit_seconds,
            evaluated,
            hits,
            hit_at_top: if evaluated == 0 {
                0.0
            } else {
                hits as f64 / evaluated as f64
            },
            ns_per_rate_op,
            checksum,
        });
    }

    Ok(BackendsBenchSummary {
        nodes: config.nodes,
        train_cascades: train.len(),
        test_cascades: test.len(),
        top: config.top,
        backends,
    })
}

/// Held-out next-adopter accuracy: observe only the seed of each test
/// cascade with ≥ 2 infections, and count a hit when the true second
/// adopter appears in the backend's top-k ranking.
fn next_adopter_hits(model: &dyn CascadeModel, test: &CascadeSet, top: usize) -> (usize, usize) {
    let mut evaluated = 0usize;
    let mut hits = 0usize;
    for cascade in test.cascades() {
        let infections = cascade.infections();
        if infections.len() < 2 {
            continue;
        }
        let seed = infections[0].node;
        let truth = infections[1].node;
        evaluated += 1;
        let ranked = model.rank_candidates(&[seed], top, None);
        if ranked.iter().any(|&(v, _)| v == truth) {
            hits += 1;
        }
    }
    (evaluated, hits)
}

/// Times repeated full candidate scans (`rank_candidates` over every
/// row) and reports the mean nanoseconds per candidate-row evaluation.
fn time_scans(model: &dyn CascadeModel, iterations: usize) -> (f64, f64) {
    let n = model.node_count();
    // Warm the caches once, untimed; fold every scan into the checksum.
    let seed = viralcast_graph::NodeId::new(0);
    let mut checksum: f64 = model
        .rank_candidates(&[seed], n, None)
        .iter()
        .map(|&(_, s)| s)
        .sum();
    let started = Instant::now();
    for i in 0..iterations {
        let source = viralcast_graph::NodeId::new(i % n);
        checksum += model
            .rank_candidates(&[source], n, None)
            .iter()
            .map(|&(_, s)| s)
            .sum::<f64>();
    }
    let total_rate_ops = (iterations * n) as u64;
    (
        started.elapsed().as_nanos() as f64 / total_rate_ops as f64,
        checksum,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BackendsBenchConfig {
        BackendsBenchConfig {
            nodes: 60,
            cascades: 40,
            topics: 2,
            top: 5,
            scan_iterations: 4,
            seed: 7,
        }
    }

    #[test]
    fn both_backends_are_benched_on_the_same_corpus() {
        let summary = run(&tiny()).unwrap();
        assert_eq!(summary.backends.len(), 2);
        assert_eq!(summary.backends[0].backend, "embed");
        assert_eq!(summary.backends[1].backend, "netinf");
        assert_eq!(summary.train_cascades + summary.test_cascades, 40);
        for report in &summary.backends {
            assert!(report.fit_seconds >= 0.0);
            assert!(report.ns_per_rate_op > 0.0);
            assert!(report.hits <= report.evaluated);
            assert!((0.0..=1.0).contains(&report.hit_at_top));
        }
    }

    #[test]
    fn accuracy_scans_are_deterministic() {
        let a = run(&tiny()).unwrap();
        let b = run(&tiny()).unwrap();
        for (x, y) in a.backends.iter().zip(&b.backends) {
            assert_eq!(x.evaluated, y.evaluated);
            assert_eq!(x.hits, y.hits);
            assert_eq!(x.checksum, y.checksum);
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for broken in [
            BackendsBenchConfig { nodes: 0, ..tiny() },
            BackendsBenchConfig { top: 0, ..tiny() },
            BackendsBenchConfig {
                scan_iterations: 0,
                ..tiny()
            },
        ] {
            assert!(run(&broken).is_err());
        }
    }

    #[test]
    fn attrs_cover_the_bench_schema() {
        let summary = run(&tiny()).unwrap();
        let json = JsonValue::Obj(summary.attrs()).render();
        for needle in [
            "\"nodes\":60",
            "\"backends\":[",
            "\"backend\":\"embed\"",
            "\"backend\":\"netinf\"",
            "\"fit_seconds\":",
            "\"hit_at_top\":",
            "\"ns_per_rate_op\":",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }
}
