//! The Section VI-A synthetic experiment setup.
//!
//! "We create the SBM graphs containing 2,000 nodes with α = 0.2 and
//! β = 0.001. … On each network instance, the spreading process is
//! simulated according to the stochastic propagation model. … A total of
//! 3,000 cascades are collected for each graph instance. The first 2,000
//! cascades are used to infer the influence and selectivity vectors of
//! nodes in the network and the last 1,000 cascades are used to test the
//! accuracy of the virality prediction algorithm."

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use viralcast_graph::{sbm, DiGraph, SbmConfig};
use viralcast_propagation::{
    planted_embeddings, CascadeSet, EmbeddingRates, PlantedConfig, RateProvider, SimulationConfig,
    Simulator,
};

/// Configuration of a full synthetic experiment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SbmExperimentConfig {
    /// Graph shape (paper default: 2 000 nodes, α = 0.2, β = 0.001).
    pub sbm: SbmConfig,
    /// Planted ground-truth embedding shape.
    pub planted: PlantedConfig,
    /// Total cascades to simulate (paper: 3 000).
    pub cascades: usize,
    /// Leading fraction used for embedding inference (paper: 2 000 of
    /// 3 000).
    pub train_fraction: f64,
    /// Observation window length.
    pub observation_window: f64,
    /// Minimum cascade size (re-drawn below this).
    pub min_cascade_size: usize,
}

impl Default for SbmExperimentConfig {
    fn default() -> Self {
        SbmExperimentConfig {
            sbm: SbmConfig::paper_default(),
            // One topic per planted community. Rates sized so a cascade
            // floods its seed community early in the window and then
            // stochastically jumps to further communities — the high-
            // variance regime behind Figures 6–9, where final sizes
            // range from one community to a large fraction of the graph
            // and the early adopters carry real predictive signal. The
            // generous jitter gives nodes heterogeneous influence, which
            // is what normA/maxA pick up.
            planted: PlantedConfig {
                on_topic: 10.0,
                off_topic: 0.002,
                jitter: 0.5,
            },
            cascades: 3_000,
            train_fraction: 2.0 / 3.0,
            observation_window: 1.0,
            min_cascade_size: 2,
        }
    }
}

// SbmConfig is Copy-compatible in spirit but not Copy; store it by value.
/// A generated synthetic world plus its simulated corpus.
#[derive(Clone, Debug)]
pub struct SbmExperiment {
    config: SbmExperimentConfig,
    graph: DiGraph,
    ground_truth: EmbeddingRates,
    train: CascadeSet,
    test: CascadeSet,
}

impl SbmExperiment {
    /// Generates the graph, plants ground-truth embeddings, simulates
    /// the corpus and splits it. Fully deterministic given `seed`.
    pub fn build(config: &SbmExperimentConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&config.train_fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = sbm::generate(&config.sbm, &mut rng);
        let membership = config.sbm.ground_truth();
        let ground_truth = planted_embeddings(&membership, &config.planted, &mut rng);
        let sim_config = SimulationConfig {
            observation_window: config.observation_window,
            max_cascade_size: None,
            min_cascade_size: config.min_cascade_size,
            max_retries: 20,
        };
        let simulator = Simulator::new(&graph, ground_truth.clone(), sim_config);
        let corpus = simulator.simulate_corpus(config.cascades, &mut rng);
        let split = (config.cascades as f64 * config.train_fraction).round() as usize;
        let (train, test) = corpus.split_at(split);
        SbmExperiment {
            config: *config,
            graph,
            ground_truth,
            train,
            test,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &SbmExperimentConfig {
        &self.config
    }

    /// The SBM graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The planted ground-truth rates.
    pub fn ground_truth(&self) -> &EmbeddingRates {
        &self.ground_truth
    }

    /// Planted community membership (one label per node).
    pub fn planted_membership(&self) -> Vec<usize> {
        self.config.sbm.ground_truth()
    }

    /// The training corpus (first part).
    pub fn train(&self) -> &CascadeSet {
        &self.train
    }

    /// The held-out corpus (last part).
    pub fn test(&self) -> &CascadeSet {
        &self.test
    }

    /// Correlation sanity metric: mean modelled ground-truth rate over
    /// intra-community vs inter-community node pairs (sampled).
    pub fn rate_contrast(&self) -> f64 {
        let membership = self.planted_membership();
        let n = membership.len();
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        let step = (n / 50).max(1);
        for u in (0..n).step_by(step) {
            for v in (0..n).step_by(step) {
                if u == v {
                    continue;
                }
                let r = self.ground_truth.rate(
                    viralcast_graph::NodeId::new(u),
                    viralcast_graph::NodeId::new(v),
                );
                if membership[u] == membership[v] {
                    intra.0 += r;
                    intra.1 += 1;
                } else {
                    inter.0 += r;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = if intra.1 == 0 {
            0.0
        } else {
            intra.0 / intra.1 as f64
        };
        let inter_mean = if inter.1 == 0 {
            0.0
        } else {
            inter.0 / inter.1 as f64
        };
        if inter_mean == 0.0 {
            f64::INFINITY
        } else {
            intra_mean / inter_mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_propagation::stats::{locality_fraction, size_summary};

    fn small() -> SbmExperimentConfig {
        SbmExperimentConfig {
            sbm: SbmConfig {
                nodes: 200,
                community_size: 20,
                intra_prob: 0.3,
                inter_prob: 0.002,
            },
            cascades: 120,
            ..SbmExperimentConfig::default()
        }
    }

    #[test]
    fn split_matches_train_fraction() {
        let e = SbmExperiment::build(&small(), 1);
        assert_eq!(e.train().len(), 80);
        assert_eq!(e.test().len(), 40);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SbmExperiment::build(&small(), 2);
        let b = SbmExperiment::build(&small(), 2);
        assert_eq!(a.train().cascades(), b.train().cascades());
        assert_eq!(a.test().cascades(), b.test().cascades());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SbmExperiment::build(&small(), 3);
        let b = SbmExperiment::build(&small(), 4);
        assert_ne!(a.train().cascades(), b.train().cascades());
    }

    #[test]
    fn cascades_meet_min_size_mostly() {
        let e = SbmExperiment::build(&small(), 5);
        let multi = e.train().cascades().iter().filter(|c| c.len() >= 2).count();
        assert!(multi * 10 >= e.train().len() * 9);
    }

    #[test]
    fn planted_rates_show_community_contrast() {
        let e = SbmExperiment::build(&small(), 6);
        assert!(e.rate_contrast() > 10.0, "contrast {}", e.rate_contrast());
    }

    #[test]
    fn cascades_are_mostly_local_in_the_local_regime() {
        // The default planted rates sit in the high-variance jumping
        // regime of Figures 6–9; with weak cross-topic rates the
        // Section II locality property must hold.
        let config = SbmExperimentConfig {
            planted: viralcast_propagation::PlantedConfig {
                on_topic: 1.2,
                off_topic: 0.02,
                jitter: 0.3,
            },
            ..small()
        };
        let e = SbmExperiment::build(&config, 7);
        let membership = e.planted_membership();
        let frac = locality_fraction(e.train(), &membership);
        assert!(frac > 0.5, "locality {frac}");
    }

    #[test]
    fn cascade_sizes_are_nontrivial() {
        let e = SbmExperiment::build(&small(), 8);
        let s = size_summary(e.train());
        assert!(s.mean >= 2.0, "mean size {}", s.mean);
        assert!(s.max > 5.0, "max size {}", s.max);
    }
}
