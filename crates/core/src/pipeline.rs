//! The end-to-end inference flow.
//!
//! [`infer_embeddings`] chains the paper's stages exactly:
//!
//! 1. build the frequent co-occurrence graph from the training cascades
//!    (`w(u,v) = 2 c(u,v)/(c(u)+c(v))`, Section IV-B);
//! 2. detect communities on its undirected view with SLPA;
//! 3. run Algorithm 2 (hierarchical community-parallel projected
//!    gradient ascent) to maximise the cascade likelihood.
//!
//! Physical parallelism is whatever rayon pool is installed around the
//! call — the Figure 10/13 harnesses wrap it in pools of 1..64 threads.

use serde::{Deserialize, Serialize};
use viralcast_community::{Partition, Slpa, SlpaConfig};
use viralcast_embed::{infer, Embeddings, HierarchicalConfig, InferenceReport};
use viralcast_graph::cooccurrence::{CooccurrenceGraph, CooccurrenceOptions};
use viralcast_obs::{self as obs, StageTimings};
use viralcast_propagation::CascadeSet;

/// Options for the full inference pipeline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InferOptions {
    /// Number of latent topics `K`.
    pub topics: usize,
    /// SLPA settings for community detection.
    pub slpa: SlpaConfig,
    /// Hierarchical optimiser settings (its `topics` field is
    /// overwritten by `self.topics`).
    pub hierarchical: HierarchicalConfig,
    /// Drop co-occurrence edges below this weight before community
    /// detection (denoises the SLPA input).
    pub min_cooccurrence_weight: f64,
}

impl Default for InferOptions {
    fn default() -> Self {
        let mut hierarchical = HierarchicalConfig::default();
        // Pipeline default departs from the bare paper objective in one
        // place: a modest L1 shrinkage on the embeddings. Node pairs
        // that never co-occur receive no data gradient, so without
        // shrinkage their modelled rate is frozen at the random init;
        // the penalty drives signal-free components to zero and lets
        // communities occupy disjoint topic subspaces (measured: ~3×
        // better intra/inter rate contrast on SBM worlds). Set
        // `hierarchical.pgd.l1_penalty = 0.0` for the exact eq. 9
        // objective.
        hierarchical.pgd.l1_penalty = 5.0;
        InferOptions {
            topics: 8,
            slpa: SlpaConfig::default(),
            hierarchical,
            min_cooccurrence_weight: 0.05,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Clone, Debug)]
pub struct InferenceOutcome {
    /// The inferred influence/selectivity embeddings (original node
    /// order).
    pub embeddings: Embeddings,
    /// The SLPA communities that drove the parallel decomposition.
    pub partition: Partition,
    /// The per-level optimiser trace.
    pub report: InferenceReport,
    /// Aggregated wall-clock span tree, rooted at `"infer"` with
    /// `cooccurrence`, `slpa` and `hierarchical` children.
    pub timings: StageTimings,
}

impl InferenceOutcome {
    /// Seconds spent building the co-occurrence graph.
    pub fn cooccurrence_seconds(&self) -> f64 {
        self.timings.seconds_of(&["cooccurrence"])
    }

    /// Seconds spent in SLPA.
    pub fn slpa_seconds(&self) -> f64 {
        self.timings.seconds_of(&["slpa"])
    }

    /// Total seconds across all pipeline stages.
    pub fn total_seconds(&self) -> f64 {
        self.timings.child_seconds()
    }
}

/// Stages 1–2: co-occurrence graph + SLPA communities. The per-stage
/// spans land in whatever recorder the caller has installed. Public so
/// cluster placement (`viralcast cluster-plan`) can align shard
/// ownership with the same communities inference parallelises over.
pub fn detect_communities(cascades: &CascadeSet, options: &InferOptions) -> Partition {
    let cooc = CooccurrenceGraph::build(
        cascades.node_count(),
        &cascades.node_sequences(),
        CooccurrenceOptions {
            successor_window: None,
            min_weight: options.min_cooccurrence_weight,
        },
    );
    Slpa::new(options.slpa).run(&cooc.undirected()).partition
}

/// Runs the full pipeline on a training corpus.
pub fn infer_embeddings(cascades: &CascadeSet, options: &InferOptions) -> InferenceOutcome {
    let recorder = obs::Recorder::new("infer");
    let (partition, embeddings, report) = {
        let _recording = recorder.install();
        let partition = detect_communities(cascades, options);
        let config = HierarchicalConfig {
            topics: options.topics,
            ..options.hierarchical
        };
        let (embeddings, report) = infer(cascades, &partition, &config);
        (partition, embeddings, report)
    };
    // The hierarchical stage recorded into its own tree; graft it under
    // the pipeline's so the run report shows one nested hierarchy.
    recorder.attach_child(report.timings.clone());

    InferenceOutcome {
        embeddings,
        partition,
        report,
        timings: recorder.finish(),
    }
}

/// Why an incremental update was rejected before touching the model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// The corpus declares a different node universe than the embeddings
    /// have rows for.
    UniverseMismatch {
        /// Rows in the existing embeddings.
        embedding_nodes: usize,
        /// `node_count` declared by the new corpus.
        corpus_nodes: usize,
    },
    /// `options.topics` differs from the embeddings' topic count.
    TopicMismatch {
        /// Topics in the existing embeddings.
        embedding_topics: usize,
        /// Topics requested by the options.
        requested_topics: usize,
    },
    /// A cascade infects a node outside the declared universe (possible
    /// when the corpus was deserialised rather than built through
    /// `CascadeSet::new`, whose bounds check is debug-only).
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The declared universe size.
        node_count: usize,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::UniverseMismatch {
                embedding_nodes,
                corpus_nodes,
            } => write!(
                f,
                "embedding rows ({embedding_nodes}) and corpus universe \
                 ({corpus_nodes}) differ"
            ),
            UpdateError::TopicMismatch {
                embedding_topics,
                requested_topics,
            } => write!(
                f,
                "topic count cannot change across incremental updates \
                 (embeddings have {embedding_topics}, options request \
                 {requested_topics})"
            ),
            UpdateError::NodeOutOfRange { node, node_count } => write!(
                f,
                "cascade infects node {node}, outside the declared universe \
                 of {node_count} nodes"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Incrementally updates existing embeddings with newly arrived
/// cascades — the online counterpart of [`infer_embeddings`] for the
/// paper's deployment story (Figure 5: historical cascades train the
/// model, new cascades keep arriving).
///
/// The update runs projected gradient ascent over the *new* cascades
/// only, warm-started from `embeddings`, with communities re-detected on
/// the new co-occurrence structure. This is much cheaper than refitting
/// the full history. Nodes absent from the new data receive no data
/// gradient; with `hierarchical.pgd.l1_penalty = 0` they are left
/// exactly untouched, while the pipeline's default L1 decays them
/// slightly per update (old knowledge fades unless refreshed — set the
/// penalty to zero if that is not wanted).
///
/// # Errors
/// Returns an [`UpdateError`] — without touching the model — when the
/// corpus universe or topic count disagrees with the embeddings, or when
/// a cascade references a node beyond the embedding rows.
pub fn update_embeddings(
    embeddings: &Embeddings,
    new_cascades: &CascadeSet,
    options: &InferOptions,
) -> Result<InferenceOutcome, UpdateError> {
    if embeddings.node_count() != new_cascades.node_count() {
        return Err(UpdateError::UniverseMismatch {
            embedding_nodes: embeddings.node_count(),
            corpus_nodes: new_cascades.node_count(),
        });
    }
    if embeddings.topic_count() != options.topics {
        return Err(UpdateError::TopicMismatch {
            embedding_topics: embeddings.topic_count(),
            requested_topics: options.topics,
        });
    }
    for cascade in new_cascades.cascades() {
        for infection in cascade.infections() {
            if infection.node.index() >= new_cascades.node_count() {
                return Err(UpdateError::NodeOutOfRange {
                    node: infection.node.0,
                    node_count: new_cascades.node_count(),
                });
            }
        }
    }
    let recorder = obs::Recorder::new("infer");
    let (partition, embeddings, report) = {
        let _recording = recorder.install();
        let partition = detect_communities(new_cascades, options);
        let config = HierarchicalConfig {
            topics: options.topics,
            ..options.hierarchical
        };
        let (embeddings, report) = viralcast_embed::hierarchical::infer_warm(
            new_cascades,
            &partition,
            &config,
            embeddings,
        );
        (partition, embeddings, report)
    };
    recorder.attach_child(report.timings.clone());

    Ok(InferenceOutcome {
        embeddings,
        partition,
        report,
        timings: recorder.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{SbmExperiment, SbmExperimentConfig};
    use viralcast_community::metrics::nmi;
    use viralcast_graph::{NodeId, SbmConfig};

    fn small_experiment(seed: u64) -> SbmExperiment {
        // Local-spreading regime: rate recovery is only identifiable
        // when cascades respect the community structure, so these tests
        // pin the planted rates instead of using the high-variance
        // prediction defaults.
        SbmExperiment::build(
            &SbmExperimentConfig {
                sbm: SbmConfig {
                    nodes: 120,
                    community_size: 20,
                    intra_prob: 0.4,
                    inter_prob: 0.003,
                },
                cascades: 300,
                planted: viralcast_propagation::PlantedConfig {
                    on_topic: 1.2,
                    off_topic: 0.02,
                    jitter: 0.3,
                },
                ..SbmExperimentConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn pipeline_produces_full_size_embeddings() {
        let e = small_experiment(1);
        let out = infer_embeddings(
            e.train(),
            &InferOptions {
                topics: 4,
                ..InferOptions::default()
            },
        );
        assert_eq!(out.embeddings.node_count(), 120);
        assert_eq!(out.embeddings.topic_count(), 4);
        assert!(!out.report.levels.is_empty());
    }

    #[test]
    fn slpa_recovers_planted_communities_from_cascades_alone() {
        // The pipeline never sees the graph — only cascades — yet the
        // co-occurrence communities should align with the planted
        // blocks. Run in the local-spreading regime, where community
        // structure dominates the cascades.
        let e = SbmExperiment::build(
            &SbmExperimentConfig {
                sbm: SbmConfig {
                    nodes: 120,
                    community_size: 20,
                    intra_prob: 0.4,
                    inter_prob: 0.003,
                },
                cascades: 300,
                planted: viralcast_propagation::PlantedConfig {
                    on_topic: 1.2,
                    off_topic: 0.02,
                    jitter: 0.3,
                },
                ..SbmExperimentConfig::default()
            },
            2,
        );
        let out = infer_embeddings(e.train(), &InferOptions::default());
        let planted = Partition::from_membership(&e.planted_membership());
        let score = nmi(&out.partition, &planted);
        assert!(score > 0.7, "NMI {score} too low");
    }

    #[test]
    fn inferred_rates_separate_intra_from_inter() {
        let e = small_experiment(3);
        let out = infer_embeddings(
            e.train(),
            &InferOptions {
                topics: 6,
                ..InferOptions::default()
            },
        );
        let membership = e.planted_membership();
        // Mean inferred rate over sampled intra vs inter pairs.
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for u in (0..120).step_by(3) {
            for v in (0..120).step_by(3) {
                if u == v {
                    continue;
                }
                let r = out.embeddings.rate(NodeId::new(u), NodeId::new(v));
                if membership[u] == membership[v] {
                    intra = (intra.0 + r, intra.1 + 1);
                } else {
                    inter = (inter.0 + r, inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            intra_mean > 3.0 * inter_mean,
            "inferred contrast too weak: intra {intra_mean} vs inter {inter_mean}"
        );
    }

    #[test]
    fn likelihood_improves_at_leaf_level() {
        let e = small_experiment(4);
        let out = infer_embeddings(e.train(), &InferOptions::default());
        let leaf = &out.report.levels[0];
        assert!(leaf.epochs > 0);
        assert!(leaf.final_ll.is_finite());
    }

    #[test]
    fn deterministic_end_to_end() {
        let e = small_experiment(5);
        let opts = InferOptions::default();
        let a = infer_embeddings(e.train(), &opts);
        let b = infer_embeddings(e.train(), &opts);
        assert_eq!(a.embeddings, b.embeddings);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn incremental_update_improves_on_new_data() {
        use viralcast_embed::likelihood::corpus_log_likelihood;
        use viralcast_embed::subcascade::IndexedCascade;
        let e = small_experiment(6);
        let (old, new) = e.train().split_at(e.train().len() / 2);
        let opts = InferOptions::default();
        let base = infer_embeddings(&old, &opts);
        let updated = update_embeddings(&base.embeddings, &new, &opts).unwrap();

        let indexed: Vec<IndexedCascade> = new
            .cascades()
            .iter()
            .filter(|c| c.len() >= 2)
            .map(IndexedCascade::from_cascade)
            .collect();
        let ll = |emb: &Embeddings| {
            corpus_log_likelihood(
                &indexed,
                emb.influence_matrix(),
                emb.selectivity_matrix(),
                opts.topics,
            )
        };
        assert!(
            ll(&updated.embeddings) > ll(&base.embeddings),
            "update did not improve the new-data likelihood ({} vs {})",
            ll(&updated.embeddings),
            ll(&base.embeddings)
        );
    }

    #[test]
    fn incremental_update_leaves_untouched_nodes_alone() {
        use viralcast_propagation::{Cascade, Infection};
        let e = small_experiment(7);
        // Without L1 decay, rows with no data gradient must be frozen.
        let mut opts = InferOptions::default();
        opts.hierarchical.pgd.l1_penalty = 0.0;
        let base = infer_embeddings(e.train(), &opts);
        // A tiny new corpus touching only nodes 0 and 1.
        let new = CascadeSet::new(
            120,
            vec![Cascade::new(vec![Infection::new(0u32, 0.0), Infection::new(1u32, 0.2)]).unwrap()],
        );
        let updated = update_embeddings(&base.embeddings, &new, &opts).unwrap();
        for u in 2..120u32 {
            let u = NodeId(u);
            assert_eq!(
                updated.embeddings.influence(u),
                base.embeddings.influence(u),
                "node {u} was modified without data"
            );
        }
    }

    #[test]
    fn incremental_update_rejects_topic_change() {
        let e = small_experiment(8);
        let opts = InferOptions::default();
        let base = infer_embeddings(e.train(), &opts);
        let other = InferOptions {
            topics: opts.topics + 1,
            ..opts
        };
        let err = update_embeddings(&base.embeddings, e.train(), &other).unwrap_err();
        assert_eq!(
            err,
            UpdateError::TopicMismatch {
                embedding_topics: opts.topics,
                requested_topics: opts.topics + 1,
            }
        );
        assert!(err.to_string().contains("topic count cannot change"));
    }

    #[test]
    fn incremental_update_rejects_universe_mismatch() {
        let e = small_experiment(9);
        let opts = InferOptions::default();
        let base = infer_embeddings(e.train(), &opts);
        let foreign = CascadeSet::new(121, Vec::new());
        let err = update_embeddings(&base.embeddings, &foreign, &opts).unwrap_err();
        assert_eq!(
            err,
            UpdateError::UniverseMismatch {
                embedding_nodes: 120,
                corpus_nodes: 121,
            }
        );
    }

    #[test]
    fn incremental_update_rejects_out_of_range_nodes() {
        // `CascadeSet::new` only debug-asserts node bounds, and corpora
        // that arrive through serde skip the constructor entirely — build
        // such an inconsistent corpus the same way a bad file would.
        let e = small_experiment(10);
        let opts = InferOptions::default();
        let base = infer_embeddings(e.train(), &opts);
        let corpus: CascadeSet = serde_json::from_str(
            r#"{
                "node_count": 120,
                "cascades": [
                    {"infections": [
                        {"node": 0, "time": 0.0},
                        {"node": 500, "time": 1.0}
                    ]}
                ]
            }"#,
        )
        .unwrap();
        let err = update_embeddings(&base.embeddings, &corpus, &opts).unwrap_err();
        assert_eq!(
            err,
            UpdateError::NodeOutOfRange {
                node: 500,
                node_count: 120,
            }
        );
        assert!(err.to_string().contains("outside the declared universe"));
    }
}
