//! Significant-influencer identification.
//!
//! The introduction promises "the applications of our approach in
//! identification of the significant influencers": once influence
//! vectors are inferred, the most influential nodes are simply those
//! with the largest influence mass — globally (vector norm) or on a
//! specific topic (single component). Because `A_{u,k}` is "the
//! probability that other news sites report the same event after the
//! news site u's coverage", these rankings have a direct operational
//! reading.

use serde::{Deserialize, Serialize};
use viralcast_embed::Embeddings;
use viralcast_graph::NodeId;

/// One ranked influencer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InfluencerRank {
    /// The node.
    pub node: NodeId,
    /// Its score (norm or topic component).
    pub score: f64,
}

/// The `k` nodes with the largest influence-vector Euclidean norm,
/// descending; ties broken by node id.
pub fn top_influencers(embeddings: &Embeddings, k: usize) -> Vec<InfluencerRank> {
    let mut scores: Vec<InfluencerRank> = (0..embeddings.node_count())
        .map(|u| {
            let node = NodeId::new(u);
            let score = embeddings
                .influence(node)
                .iter()
                .map(|x| x * x)
                .sum::<f64>()
                .sqrt();
            InfluencerRank { node, score }
        })
        .collect();
    scores.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// The `k` nodes with the largest influence on one topic, descending.
///
/// # Panics
/// Panics if `topic` is out of range.
pub fn topic_influencers(embeddings: &Embeddings, topic: usize, k: usize) -> Vec<InfluencerRank> {
    assert!(
        topic < embeddings.topic_count(),
        "topic {topic} out of range (K = {})",
        embeddings.topic_count()
    );
    let mut scores: Vec<InfluencerRank> = (0..embeddings.node_count())
        .map(|u| {
            let node = NodeId::new(u);
            InfluencerRank {
                node,
                score: embeddings.influence(node)[topic],
            }
        })
        .collect();
    scores.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings() -> Embeddings {
        // 4 nodes × 2 topics; norms: n0 = 5 (3,4), n1 = 1 (1,0),
        // n2 = 2 (0,2), n3 = 0.
        Embeddings::from_matrices(
            4,
            2,
            vec![3.0, 4.0, 1.0, 0.0, 0.0, 2.0, 0.0, 0.0],
            vec![0.0; 8],
        )
    }

    #[test]
    fn global_ranking_by_norm() {
        let top = top_influencers(&embeddings(), 3);
        let nodes: Vec<u32> = top.iter().map(|r| r.node.0).collect();
        assert_eq!(nodes, vec![0, 2, 1]);
        assert!((top[0].score - 5.0).abs() < 1e-12);
    }

    #[test]
    fn topic_ranking_uses_single_component() {
        // Topic 0: node 0 (3.0) then node 1 (1.0).
        let top = topic_influencers(&embeddings(), 0, 2);
        assert_eq!(top[0].node, NodeId(0));
        assert_eq!(top[1].node, NodeId(1));
        // Topic 1: node 0 (4.0) then node 2 (2.0).
        let top = topic_influencers(&embeddings(), 1, 2);
        assert_eq!(top[0].node, NodeId(0));
        assert_eq!(top[1].node, NodeId(2));
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        assert_eq!(top_influencers(&embeddings(), 100).len(), 4);
    }

    #[test]
    fn ties_break_by_node_id() {
        let e = Embeddings::from_matrices(3, 1, vec![1.0, 1.0, 1.0], vec![0.0; 3]);
        let top = top_influencers(&e, 3);
        let nodes: Vec<u32> = top.iter().map(|r| r.node.0).collect();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_topic_rejected() {
        topic_influencers(&embeddings(), 9, 1);
    }
}
