//! Convenience re-exports: `use viralcast::prelude::*;` pulls in the
//! types every pipeline touches.

pub use crate::experiment::{SbmExperiment, SbmExperimentConfig};
pub use crate::influencers::{top_influencers, topic_influencers, InfluencerRank};
pub use crate::pipeline::{
    infer_embeddings, update_embeddings, InferOptions, InferenceOutcome, UpdateError,
};

pub use viralcast_community::{Balance, Dendrogram, MergeHierarchy, Partition, Slpa, SlpaConfig};
pub use viralcast_embed::{
    infer, infer_sequential, infer_warm, Embeddings, HierarchicalConfig, InferenceReport, PgdConfig,
};
pub use viralcast_gdelt::{GdeltConfig, GdeltWorld, Mention, MentionTable, NewsSite, Region};
pub use viralcast_graph::{
    BackboneGraph, CooccurrenceGraph, DiGraph, GraphBuilder, NodeId, SbmConfig,
};
pub use viralcast_model::{
    CascadeModel, EmbeddingBackend, NetInfBackend, NetInfConfig, RowBlock, BACKENDS,
};
pub use viralcast_obs::{MetricsRegistry, Recorder, RunReport, Span, StageTimings};
pub use viralcast_predict::pipeline::{extract_dataset, Dataset};
pub use viralcast_predict::{
    cross_validate, extract_features, threshold_sweep, CascadeFeatures, HawkesFitConfig,
    HawkesPredictor, LinearSvm, PredictionTask, StandardScaler, SvmConfig, SweepPoint,
};
pub use viralcast_propagation::{
    planted_embeddings, Cascade, CascadeSet, EmbeddingRates, Exponential, HazardFunction,
    Infection, PlantedConfig, RateProvider, SimulationConfig, Simulator,
};
