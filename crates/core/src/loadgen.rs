//! Closed-loop HTTP load generation against a running daemon.
//!
//! `viralcast loadgen` drives a live `viralcast serve` instance with a
//! configurable mix of endpoint traffic and records the first
//! performance trajectory of the project: per-endpoint latency
//! percentiles, sustained throughput, and the shed rate under the
//! daemon's own load-shedding policy. The harness is *closed-loop* —
//! each worker issues its next request only after the previous response
//! lands — so measured latency is service latency, not queueing debris
//! from an open-loop arrival process the daemon never promised to absorb.
//!
//! The run has two phases: a **warmup** whose samples are discarded
//! (connection churn, cold caches, the trainer's first publish) and a
//! **measurement** window that feeds the report. Every request carries a
//! deterministic `X-Request-Id` (`lg-<worker>-<seq>`), so a slow sample
//! in `BENCH_http.json` can be joined against the daemon's access log
//! and trace events by ID.
//!
//! The harness reuses [`viralcast_serve::client`] — the same
//! std-only one-connection-per-request client the integration tests use
//! — and needs nothing outside the workspace. Each exchange goes through
//! [`client::request_with_retry_on`] over an *endpoint list*, so a run
//! can target a single daemon or a router-plus-shards cluster; retries
//! rotate away from a dead endpoint, and connection resets, mid-response
//! EOFs, and 429/503 responses are absorbed with capped, jittered
//! backoff. The retries spent are reported separately so a run against a
//! flapping daemon is visibly different from a clean one.
//!
//! Besides the closed-loop mix, `--scenario flash-crowd` replays a
//! [`ScenarioTimeline`]'s burst arrivals *open-loop* through
//! `/v1/ingest`: event arrival times from a hostile-world timeline (a
//! flash crowd an order of magnitude over baseline) are mapped onto the
//! measurement window and fired on schedule whether or not the previous
//! response has landed — the regime the paper's viral events actually
//! produce, and the one closed-loop load can never create.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};
use viralcast_gdelt::generator::{GdeltConfig, GdeltWorld};
use viralcast_gdelt::scenario::{FlashCrowd, ScenarioConfig, ScenarioTimeline};
use viralcast_obs::JsonValue;
use viralcast_serve::{client, json};

/// xorshift64* — a tiny deterministic PRNG for workload generation.
///
/// The bench harnesses hand-roll their randomness so they stay free of
/// external crates (and so a seed reproduces the exact request stream
/// byte for byte across machines).
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator seeded with `seed` (zero is remapped — xorshift has a
    /// fixed point at zero).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value uniform in `0..bound` (`bound = 0` yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// The endpoints the generator knows how to exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/predict` — rank next adopters of a partial cascade.
    Predict,
    /// `POST /v1/hazard` — pairwise rate queries.
    Hazard,
    /// `GET /v1/influencers` — global influencer ranking.
    Influencers,
    /// `POST /v1/ingest` — append cascades (exercises WAL + trainer).
    Ingest,
}

/// All endpoints, in report order.
pub const ENDPOINTS: [Endpoint; 4] = [
    Endpoint::Predict,
    Endpoint::Hazard,
    Endpoint::Influencers,
    Endpoint::Ingest,
];

impl Endpoint {
    /// The mix-string / report key for this endpoint.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Predict => "predict",
            Endpoint::Hazard => "hazard",
            Endpoint::Influencers => "influencers",
            Endpoint::Ingest => "ingest",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Predict => 0,
            Endpoint::Hazard => 1,
            Endpoint::Influencers => 2,
            Endpoint::Ingest => 3,
        }
    }
}

/// Parses a traffic-mix string like `predict=4,hazard=2,influencers=1,ingest=1`
/// into `(endpoint, weight)` pairs. Endpoints absent from the string get
/// weight 0; at least one weight must be positive.
pub fn parse_mix(raw: &str) -> Result<[u32; 4], String> {
    let mut weights = [0u32; 4];
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, weight) = part
            .split_once('=')
            .ok_or_else(|| format!("malformed mix component {part:?} (expected name=weight)"))?;
        let endpoint = ENDPOINTS
            .iter()
            .find(|e| e.label() == name.trim())
            .ok_or_else(|| {
                format!("unknown endpoint {name:?} (expected predict|hazard|influencers|ingest)")
            })?;
        let weight: u32 = weight
            .trim()
            .parse()
            .map_err(|_| format!("malformed weight {weight:?} for {name}"))?;
        weights[endpoint.index()] = weight;
    }
    if weights.iter().all(|&w| w == 0) {
        return Err("traffic mix has no positive weights".into());
    }
    Ok(weights)
}

/// The arrival regimes `--scenario` can replay instead of the
/// closed-loop mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadScenario {
    /// A hostile-world flash crowd: ingest arrivals from a
    /// [`ScenarioTimeline`] whose middle hours burst an order of
    /// magnitude over baseline, mapped onto the measurement window and
    /// fired open-loop.
    FlashCrowd,
}

impl LoadScenario {
    /// Parses a `--scenario` value.
    pub fn parse(raw: &str) -> Result<LoadScenario, String> {
        match raw.trim() {
            "flash-crowd" => Ok(LoadScenario::FlashCrowd),
            other => Err(format!("unknown scenario {other:?} (expected flash-crowd)")),
        }
    }

    /// The scenario's report key.
    pub fn label(self) -> &'static str {
        match self {
            LoadScenario::FlashCrowd => "flash-crowd",
        }
    }
}

/// One loadgen run's knobs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// The daemon(s) to drive — one address, or a list the retry layer
    /// rotates across.
    pub endpoints: client::Endpoints,
    /// Concurrent closed-loop workers.
    pub workers: usize,
    /// Measurement-window length.
    pub duration: Duration,
    /// Warmup length (samples discarded; ignored by scenario runs,
    /// which measure their whole schedule).
    pub warmup: Duration,
    /// Per-endpoint weights, indexed by [`Endpoint::index`].
    pub mix: [u32; 4],
    /// PRNG seed; the request stream is a pure function of it.
    pub seed: u64,
    /// `None` runs the closed-loop mix; `Some` replays a scenario's
    /// arrival process open-loop instead.
    pub scenario: Option<LoadScenario>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            endpoints: client::Endpoints::single(SocketAddr::from(([127, 0, 0, 1], 8080))),
            workers: 4,
            duration: Duration::from_secs(10),
            warmup: Duration::from_secs(2),
            mix: [4, 2, 1, 1],
            seed: 1,
            scenario: None,
        }
    }
}

/// Measured latency quantiles for one endpoint.
#[derive(Clone, Debug)]
pub struct EndpointStats {
    /// The endpoint's mix label.
    pub label: &'static str,
    /// Requests completed during the measurement window.
    pub requests: u64,
    /// Median latency in milliseconds (None when no samples).
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: Option<f64>,
    /// Worst observed latency in milliseconds.
    pub max_ms: Option<f64>,
}

/// What a scenario replay scheduled, beyond the request tallies.
#[derive(Clone, Debug)]
pub struct ScenarioStats {
    /// The scenario's label (`flash-crowd`).
    pub name: &'static str,
    /// Ingest arrivals the timeline scheduled into the window.
    pub arrivals: u64,
    /// Burst window start, seconds into the schedule.
    pub burst_start_s: f64,
    /// Burst window end, seconds into the schedule.
    pub burst_end_s: f64,
    /// Scheduled arrival rate outside the burst window.
    pub baseline_rps: f64,
    /// Scheduled arrival rate inside the burst window.
    pub burst_rps: f64,
}

impl ScenarioStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("name", JsonValue::from(self.name)),
            ("arrivals", JsonValue::from(self.arrivals)),
            ("burst_start_s", JsonValue::from(self.burst_start_s)),
            ("burst_end_s", JsonValue::from(self.burst_end_s)),
            ("baseline_rps", JsonValue::from(self.baseline_rps)),
            ("burst_rps", JsonValue::from(self.burst_rps)),
        ])
    }
}

/// What one run measured.
#[derive(Clone, Debug)]
pub struct LoadgenSummary {
    /// Actual measurement-window length.
    pub measured_seconds: f64,
    /// Requests completed in the window (all endpoints).
    pub total_requests: u64,
    /// `total_requests / measured_seconds`.
    pub throughput_rps: f64,
    /// 2xx responses.
    pub http_2xx: u64,
    /// 4xx responses other than 429.
    pub http_4xx: u64,
    /// Load-shed (429) responses.
    pub http_429: u64,
    /// 5xx responses.
    pub http_5xx: u64,
    /// Requests that failed below HTTP (connect/read/write errors)
    /// even after the retry budget was spent.
    pub io_errors: u64,
    /// Extra attempts the retry layer issued on top of first tries.
    pub retries: u64,
    /// `http_429 / total_requests` (0 when no requests).
    pub shed_rate: f64,
    /// Per-endpoint latency quantiles, in [`ENDPOINTS`] order.
    pub endpoints: Vec<EndpointStats>,
    /// Scenario schedule detail; `None` for closed-loop runs.
    pub scenario: Option<ScenarioStats>,
    /// What the run was pointed at, probed from `/healthz` — so
    /// perf-trajectory entries stay comparable across topologies.
    pub topology: Topology,
}

/// The serving topology behind the driven address, as `/healthz`
/// reports it: a single daemon names its backend; a router reports its
/// shard and follower counts.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Backend id (`"embed"`, `"netinf"`); `None` when the target is a
    /// router (the manifest, not /healthz, names the cluster backend).
    pub backend: Option<String>,
    /// Shards behind the target (1 for a single daemon).
    pub cluster_shards: u64,
    /// Followers behind the target (0 without replication).
    pub followers: u64,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            backend: None,
            cluster_shards: 1,
            followers: 0,
        }
    }
}

/// Probes `GET /healthz` on the first answering endpoint and reads the
/// topology fields. Unanswerable probes fall back to the single-box
/// default — the bench still records *something* comparable.
pub fn probe_topology(endpoints: &client::Endpoints) -> Topology {
    for addr in endpoints.addrs() {
        let Ok(resp) = client::request(addr, "GET", "/healthz", None) else {
            continue;
        };
        if resp.status != 200 {
            continue;
        }
        let Ok(body) = json::parse(&resp.body) else {
            continue;
        };
        return Topology {
            backend: match json::get(&body, "backend") {
                Some(JsonValue::Str(b)) => Some(b.clone()),
                _ => None,
            },
            cluster_shards: json::get(&body, "shards_total")
                .and_then(json::as_u64)
                .unwrap_or(1),
            followers: json::get(&body, "followers_total")
                .and_then(json::as_u64)
                .unwrap_or(0),
        };
    }
    Topology::default()
}

impl LoadgenSummary {
    /// The summary as run-report attributes (the `BENCH_http.json`
    /// payload beyond the standard report envelope).
    pub fn attrs(&self) -> Vec<(String, JsonValue)> {
        let endpoints = JsonValue::Obj(
            self.endpoints
                .iter()
                .map(|e| {
                    (
                        e.label.to_string(),
                        JsonValue::obj(vec![
                            ("requests", JsonValue::from(e.requests)),
                            ("p50_ms", e.p50_ms.map_or(JsonValue::Null, JsonValue::from)),
                            ("p99_ms", e.p99_ms.map_or(JsonValue::Null, JsonValue::from)),
                            ("max_ms", e.max_ms.map_or(JsonValue::Null, JsonValue::from)),
                        ]),
                    )
                })
                .collect(),
        );
        let mut attrs = vec![
            ("measured_seconds".into(), self.measured_seconds.into()),
            ("total_requests".into(), self.total_requests.into()),
            ("throughput_rps".into(), self.throughput_rps.into()),
            ("http_2xx".into(), self.http_2xx.into()),
            ("http_4xx".into(), self.http_4xx.into()),
            ("http_429".into(), self.http_429.into()),
            ("http_5xx".into(), self.http_5xx.into()),
            ("io_errors".into(), self.io_errors.into()),
            ("retries".into(), self.retries.into()),
            ("shed_rate".into(), self.shed_rate.into()),
            (
                "backend".into(),
                self.topology
                    .backend
                    .as_deref()
                    .map_or(JsonValue::Null, JsonValue::from),
            ),
            ("cluster_shards".into(), self.topology.cluster_shards.into()),
            ("followers".into(), self.topology.followers.into()),
            ("endpoints".into(), endpoints),
        ];
        if let Some(scenario) = &self.scenario {
            attrs.push(("scenario".into(), scenario.to_json()));
        }
        attrs
    }
}

/// Run phases, shared through an `AtomicU8`.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_STOP: u8 = 2;

/// Per-worker tallies, merged after the run.
#[derive(Default)]
struct WorkerResult {
    latencies_us: [Vec<u64>; 4],
    http_2xx: u64,
    http_4xx: u64,
    http_429: u64,
    http_5xx: u64,
    io_errors: u64,
    retries: u64,
}

/// Probes `GET /healthz` and returns the served model's node count —
/// the generator samples query nodes from `0..nodes`.
pub fn probe_node_count(addr: &SocketAddr) -> Result<usize, String> {
    let resp = client::request(addr, "GET", "/healthz", None)
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if resp.status != 200 {
        return Err(format!("/healthz returned {}", resp.status));
    }
    let body = json::parse(&resp.body).map_err(|e| format!("malformed /healthz body: {e}"))?;
    let nodes = json::get(&body, "nodes")
        .and_then(json::as_u64)
        .ok_or("/healthz body lacks a numeric \"nodes\" field")?;
    if nodes == 0 {
        return Err("daemon serves an empty model (0 nodes)".into());
    }
    Ok(nodes as usize)
}

/// [`probe_node_count`] over an endpoint list: the first endpoint that
/// answers wins, so a run against a degraded cluster still starts.
pub fn probe_node_count_any(endpoints: &client::Endpoints) -> Result<usize, String> {
    let mut last = String::new();
    for addr in endpoints.addrs() {
        match probe_node_count(addr) {
            Ok(nodes) => return Ok(nodes),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Runs the configured workload — closed-loop mix or an open-loop
/// scenario replay — and returns the measured summary.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenSummary, String> {
    if config.workers == 0 {
        return Err("--workers must be positive".into());
    }
    if let Some(scenario) = config.scenario {
        return run_scenario(config, scenario);
    }
    if config.mix.iter().all(|&w| w == 0) {
        return Err("traffic mix has no positive weights".into());
    }
    let nodes = probe_node_count_any(&config.endpoints)?;
    let phase = AtomicU8::new(PHASE_WARMUP);

    let mut results: Vec<WorkerResult> = Vec::new();
    let mut measured_seconds = 0.0f64;
    std::thread::scope(|scope| {
        let phase = &phase;
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let endpoints = &config.endpoints;
                let mix = config.mix;
                // Distinct odd-spaced seeds per worker keep streams
                // decorrelated while the whole run stays reproducible.
                let seed = config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
                scope.spawn(move || worker_loop(w, endpoints, nodes, mix, seed, phase))
            })
            .collect();

        std::thread::sleep(config.warmup);
        phase.store(PHASE_MEASURE, Ordering::SeqCst);
        let measure_start = Instant::now();
        std::thread::sleep(config.duration);
        phase.store(PHASE_STOP, Ordering::SeqCst);
        measured_seconds = measure_start.elapsed().as_secs_f64();

        for handle in handles {
            results.push(handle.join().unwrap_or_default());
        }
    });

    let mut summary = summarise(&results, measured_seconds);
    summary.topology = probe_topology(&config.endpoints);
    Ok(summary)
}

/// One scheduled scenario arrival: when to fire (relative to the run
/// start) and the ingest body to send.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledIngest {
    /// Offset into the schedule.
    pub fire_at: Duration,
    /// The `/v1/ingest` request body.
    pub body: String,
}

/// The flash-crowd timeline the scenario replays: a 24-hour hostile
/// world with one global burst an order of magnitude over baseline in
/// hours 10–14.
const SCENARIO_HORIZON_HOURS: f64 = 24.0;
const SCENARIO_BASE_EVENTS_PER_HOUR: f64 = 40.0;
const SCENARIO_BURST_START_HOUR: f64 = 10.0;
const SCENARIO_BURST_HOURS: f64 = 4.0;
const SCENARIO_BURST_MAGNITUDE: f64 = 10.0;

/// Generates the flash-crowd ingest schedule: a [`ScenarioTimeline`]
/// over a small synthetic world, its event arrival hours mapped linearly
/// onto `window`, each event's cascade re-homed onto the served model's
/// `0..nodes` universe. Deterministic given `seed`.
pub fn flash_crowd_schedule(seed: u64, nodes: usize, window: Duration) -> Vec<ScheduledIngest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let world = GdeltWorld::generate(GdeltConfig::small(), &mut rng);
    let timeline = ScenarioTimeline::generate(
        &world,
        &ScenarioConfig {
            horizon_hours: SCENARIO_HORIZON_HOURS,
            base_events_per_hour: SCENARIO_BASE_EVENTS_PER_HOUR,
            flash_crowds: vec![FlashCrowd {
                start_hour: SCENARIO_BURST_START_HOUR,
                duration_hours: SCENARIO_BURST_HOURS,
                magnitude: SCENARIO_BURST_MAGNITUDE,
                region: None,
            }],
            ..ScenarioConfig::default()
        },
        &mut rng,
    );
    let scale = window.as_secs_f64() / SCENARIO_HORIZON_HOURS;
    let mut schedule: Vec<ScheduledIngest> = timeline
        .events()
        .iter()
        .filter_map(|event| {
            let body = ingest_body_for(event.cascade.infections(), nodes)?;
            Some(ScheduledIngest {
                fire_at: Duration::from_secs_f64(event.start_hour * scale),
                body,
            })
        })
        .collect();
    schedule.sort_by_key(|s| s.fire_at);
    schedule
}

/// Re-homes a timeline cascade onto the served model: node ids wrap
/// modulo `nodes`, duplicates after the wrap are dropped (keeping the
/// earliest adoption), and a cascade left empty yields `None`.
fn ingest_body_for(
    infections: &[viralcast_propagation::Infection],
    nodes: usize,
) -> Option<String> {
    let n = nodes.max(1) as u64;
    let mut seen = std::collections::BTreeSet::new();
    let mut parts = Vec::new();
    for inf in infections {
        let node = inf.node.index() as u64 % n;
        if seen.insert(node) {
            parts.push(format!(r#"{{"node":{node},"time":{}}}"#, inf.time));
        }
    }
    if parts.is_empty() {
        return None;
    }
    Some(format!(r#"{{"cascades":[[{}]]}}"#, parts.join(",")))
}

/// Replays a scenario schedule open-loop: arrivals are partitioned
/// round-robin across the workers and each fires at its scheduled
/// offset whether or not the previous response has landed (a worker
/// that falls behind sends back-to-back — exactly how a real flash
/// crowd outruns a server). All traffic is `/v1/ingest`; the whole
/// schedule is measured (no warmup discard).
fn run_scenario(config: &LoadgenConfig, scenario: LoadScenario) -> Result<LoadgenSummary, String> {
    let nodes = probe_node_count_any(&config.endpoints)?;
    let schedule = match scenario {
        LoadScenario::FlashCrowd => flash_crowd_schedule(config.seed, nodes, config.duration),
    };
    if schedule.is_empty() {
        return Err("scenario produced an empty arrival schedule".into());
    }

    let mut results: Vec<WorkerResult> = Vec::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let endpoints = &config.endpoints;
                let mine: Vec<&ScheduledIngest> =
                    schedule.iter().skip(w).step_by(config.workers).collect();
                let seed = config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
                scope.spawn(move || scenario_worker(w, endpoints, &mine, start, seed))
            })
            .collect();
        for handle in handles {
            results.push(handle.join().unwrap_or_default());
        }
    });
    let measured_seconds = start.elapsed().as_secs_f64();

    let scale = config.duration.as_secs_f64() / SCENARIO_HORIZON_HOURS;
    let burst_start_s = SCENARIO_BURST_START_HOUR * scale;
    let burst_end_s = (SCENARIO_BURST_START_HOUR + SCENARIO_BURST_HOURS) * scale;
    let in_burst = schedule
        .iter()
        .filter(|s| {
            let t = s.fire_at.as_secs_f64();
            t >= burst_start_s && t < burst_end_s
        })
        .count() as u64;
    let arrivals = schedule.len() as u64;
    let burst_len = (burst_end_s - burst_start_s).max(f64::MIN_POSITIVE);
    let outside_len = (config.duration.as_secs_f64() - burst_len).max(f64::MIN_POSITIVE);
    let mut summary = summarise(&results, measured_seconds);
    summary.topology = probe_topology(&config.endpoints);
    summary.scenario = Some(ScenarioStats {
        name: scenario.label(),
        arrivals,
        burst_start_s,
        burst_end_s,
        baseline_rps: (arrivals - in_burst) as f64 / outside_len,
        burst_rps: in_burst as f64 / burst_len,
    });
    Ok(summary)
}

/// One open-loop scenario worker over its slice of the schedule.
fn scenario_worker(
    worker: usize,
    endpoints: &client::Endpoints,
    schedule: &[&ScheduledIngest],
    start: Instant,
    seed: u64,
) -> WorkerResult {
    let mut result = WorkerResult::default();
    let policy = client::RetryPolicy {
        jitter_seed: seed,
        ..client::RetryPolicy::default()
    };
    for (seq, item) in schedule.iter().enumerate() {
        if let Some(wait) = item.fire_at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let trace_id = format!("fc-{worker}-{seq:x}");
        let started = Instant::now();
        let outcome = client::request_with_retry_on(
            endpoints,
            "POST",
            "/v1/ingest",
            Some(&item.body),
            &[("X-Request-Id", &trace_id)],
            &policy,
        );
        match outcome {
            Ok(retried) => {
                result.retries += u64::from(retried.retries());
                result.latencies_us[Endpoint::Ingest.index()]
                    .push(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
                match retried.response.status {
                    200..=299 => result.http_2xx += 1,
                    429 => result.http_429 += 1,
                    400..=499 => result.http_4xx += 1,
                    500..=599 => result.http_5xx += 1,
                    _ => result.http_4xx += 1,
                }
            }
            Err(_) => {
                result.retries += u64::from(policy.max_attempts.saturating_sub(1));
                result.io_errors += 1;
            }
        }
    }
    result
}

fn worker_loop(
    worker: usize,
    endpoints: &client::Endpoints,
    nodes: usize,
    mix: [u32; 4],
    seed: u64,
    phase: &AtomicU8,
) -> WorkerResult {
    let mut rng = XorShift64::new(seed);
    let total_weight: u64 = mix.iter().map(|&w| w as u64).sum();
    let mut result = WorkerResult::default();
    let mut seq = 0u64;
    let policy = client::RetryPolicy {
        jitter_seed: seed,
        ..client::RetryPolicy::default()
    };
    loop {
        match phase.load(Ordering::SeqCst) {
            PHASE_STOP => break,
            p => p,
        };
        let endpoint = pick_endpoint(&mut rng, &mix, total_weight);
        let (method, target, body) = build_request(endpoint, &mut rng, nodes);
        let trace_id = format!("lg-{worker}-{seq:x}");
        seq += 1;
        let started = Instant::now();
        let outcome = client::request_with_retry_on(
            endpoints,
            method,
            &target,
            body.as_deref(),
            &[("X-Request-Id", &trace_id)],
            &policy,
        );
        // Samples count only when the whole exchange fit inside the
        // measurement window.
        if phase.load(Ordering::SeqCst) != PHASE_MEASURE {
            continue;
        }
        match outcome {
            Ok(retried) => {
                result.retries += u64::from(retried.retries());
                result.latencies_us[endpoint.index()]
                    .push(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
                match retried.response.status {
                    200..=299 => result.http_2xx += 1,
                    429 => result.http_429 += 1,
                    400..=499 => result.http_4xx += 1,
                    500..=599 => result.http_5xx += 1,
                    _ => result.http_4xx += 1,
                }
            }
            Err(_) => {
                result.retries += u64::from(policy.max_attempts.saturating_sub(1));
                result.io_errors += 1;
            }
        }
    }
    result
}

fn pick_endpoint(rng: &mut XorShift64, mix: &[u32; 4], total_weight: u64) -> Endpoint {
    let mut roll = rng.below(total_weight);
    for endpoint in ENDPOINTS {
        let w = mix[endpoint.index()] as u64;
        if roll < w {
            return endpoint;
        }
        roll -= w;
    }
    Endpoint::Predict // unreachable: total_weight covers the full mix
}

/// The next request for `endpoint`: `(method, target, body)`.
fn build_request(
    endpoint: Endpoint,
    rng: &mut XorShift64,
    nodes: usize,
) -> (&'static str, String, Option<String>) {
    let n = nodes as u64;
    match endpoint {
        Endpoint::Predict => {
            let node = rng.below(n);
            (
                "POST",
                "/v1/predict".into(),
                Some(format!(
                    r#"{{"cascade":[{{"node":{node},"time":0.0}}],"top":5}}"#
                )),
            )
        }
        Endpoint::Hazard => {
            let u = rng.below(n);
            let v = rng.below(n);
            (
                "POST",
                "/v1/hazard".into(),
                Some(format!(r#"{{"pairs":[[{u},{v}]],"dt":1.0}}"#)),
            )
        }
        Endpoint::Influencers => ("GET", "/v1/influencers?top=5".into(), None),
        Endpoint::Ingest => {
            // Two distinct nodes so the cascade passes validation; the
            // modulo wrap keeps both in range for any model ≥ 2 nodes.
            let a = rng.below(n);
            let b = (a + 1) % n.max(1);
            let body = if b == a {
                format!(r#"{{"cascades":[[{{"node":{a},"time":0.0}}]]}}"#)
            } else {
                format!(r#"{{"cascades":[[{{"node":{a},"time":0.0}},{{"node":{b},"time":1.0}}]]}}"#)
            };
            ("POST", "/v1/ingest".into(), Some(body))
        }
    }
}

fn summarise(results: &[WorkerResult], measured_seconds: f64) -> LoadgenSummary {
    let mut endpoints = Vec::with_capacity(ENDPOINTS.len());
    let mut total_requests = 0u64;
    for endpoint in ENDPOINTS {
        let mut samples: Vec<u64> = results
            .iter()
            .flat_map(|r| r.latencies_us[endpoint.index()].iter().copied())
            .collect();
        samples.sort_unstable();
        total_requests += samples.len() as u64;
        endpoints.push(EndpointStats {
            label: endpoint.label(),
            requests: samples.len() as u64,
            p50_ms: percentile_ms(&samples, 0.50),
            p99_ms: percentile_ms(&samples, 0.99),
            max_ms: samples.last().map(|&us| us as f64 / 1000.0),
        });
    }
    let sum = |f: fn(&WorkerResult) -> u64| results.iter().map(f).sum::<u64>();
    let http_429 = sum(|r| r.http_429);
    LoadgenSummary {
        measured_seconds,
        total_requests,
        throughput_rps: if measured_seconds > 0.0 {
            total_requests as f64 / measured_seconds
        } else {
            0.0
        },
        http_2xx: sum(|r| r.http_2xx),
        http_4xx: sum(|r| r.http_4xx),
        http_429,
        http_5xx: sum(|r| r.http_5xx),
        io_errors: sum(|r| r.io_errors),
        retries: sum(|r| r.retries),
        shed_rate: if total_requests > 0 {
            http_429 as f64 / total_requests as f64
        } else {
            0.0
        },
        endpoints,
        scenario: None,
        topology: Topology::default(),
    }
}

/// Nearest-rank percentile over sorted latency samples, in milliseconds.
/// Shared with the chaos harness.
pub(crate) fn percentile_ms(sorted_us: &[u64], q: f64) -> Option<f64> {
    if sorted_us.is_empty() {
        return None;
    }
    let rank = (q * (sorted_us.len() as f64 - 1.0)).round() as usize;
    Some(sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        let run: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(run, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert!(run.iter().any(|&x| x != 0));
        // The zero seed is remapped instead of sticking at zero.
        assert_ne!(XorShift64::new(0).next_u64(), 0);
    }

    #[test]
    fn mix_strings_parse_by_name() {
        let mix = parse_mix("predict=4,hazard=2,influencers=1,ingest=1").unwrap();
        assert_eq!(mix, [4, 2, 1, 1]);
        let partial = parse_mix("hazard=9").unwrap();
        assert_eq!(partial, [0, 9, 0, 0]);
        assert!(parse_mix("warp=1").is_err());
        assert!(parse_mix("predict=x").is_err());
        assert!(parse_mix("predict=0").is_err());
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mix = [0, 5, 0, 0];
        let total: u64 = mix.iter().map(|&w| w as u64).sum();
        let mut rng = XorShift64::new(3);
        for _ in 0..64 {
            assert_eq!(pick_endpoint(&mut rng, &mix, total), Endpoint::Hazard);
        }
    }

    #[test]
    fn request_bodies_stay_in_node_range() {
        let mut rng = XorShift64::new(11);
        for _ in 0..32 {
            for endpoint in ENDPOINTS {
                let (_, _, body) = build_request(endpoint, &mut rng, 3);
                if let Some(body) = body {
                    // All node literals must be 0..3.
                    for bad in ["\"node\":3", "\"node\":4", "[3,", ",3]"] {
                        assert!(!body.contains(bad), "{body}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_node_models_get_single_infection_ingests() {
        let mut rng = XorShift64::new(5);
        let (_, _, body) = build_request(Endpoint::Ingest, &mut rng, 1);
        let body = body.unwrap();
        assert!(body.contains(r#"{"node":0,"time":0.0}"#), "{body}");
        assert!(!body.contains("\"time\":1.0"), "{body}");
    }

    #[test]
    fn percentiles_are_nearest_rank_in_ms() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert_eq!(percentile_ms(&sorted, 0.50), Some(51.0));
        assert_eq!(percentile_ms(&sorted, 0.99), Some(99.0));
        assert_eq!(percentile_ms(&sorted, 1.0), Some(100.0));
        assert_eq!(percentile_ms(&[], 0.5), None);
    }

    #[test]
    fn scenario_names_parse() {
        assert_eq!(
            LoadScenario::parse("flash-crowd").unwrap(),
            LoadScenario::FlashCrowd
        );
        assert_eq!(LoadScenario::FlashCrowd.label(), "flash-crowd");
        assert!(LoadScenario::parse("tsunami").is_err());
    }

    #[test]
    fn flash_crowd_schedule_is_deterministic_and_bursty() {
        let window = Duration::from_secs(12);
        let a = flash_crowd_schedule(7, 50, window);
        let b = flash_crowd_schedule(7, 50, window);
        assert_eq!(a, b, "same seed must yield the identical schedule");
        assert!(!a.is_empty());
        // Every arrival fits the window and every body is a valid
        // single-cascade ingest over the served universe.
        let scale = window.as_secs_f64() / SCENARIO_HORIZON_HOURS;
        let burst = (
            SCENARIO_BURST_START_HOUR * scale,
            (SCENARIO_BURST_START_HOUR + SCENARIO_BURST_HOURS) * scale,
        );
        let mut in_burst = 0usize;
        for item in &a {
            let t = item.fire_at.as_secs_f64();
            assert!(t < window.as_secs_f64() + 1e-9, "arrival at {t}s");
            if t >= burst.0 && t < burst.1 {
                in_burst += 1;
            }
            assert!(item.body.starts_with(r#"{"cascades":[["#), "{}", item.body);
            assert!(!item.body.contains("\"node\":50"), "{}", item.body);
        }
        // The burst window is 1/6 of the schedule but must hold well
        // over 1/6 of the arrivals (magnitude 10 over baseline).
        let outside = a.len() - in_burst;
        assert!(
            in_burst * 2 > outside,
            "burst holds {in_burst} of {} arrivals — no flash crowd",
            a.len()
        );
        // A different seed actually changes the stream.
        assert_ne!(flash_crowd_schedule(8, 50, window), a);
    }

    #[test]
    fn ingest_bodies_dedup_wrapped_nodes() {
        use viralcast_propagation::Infection;
        // Nodes 0 and 5 collide modulo 5: the earlier adoption wins.
        let infections = vec![
            Infection::new(0u32, 0.0),
            Infection::new(5u32, 1.5),
            Infection::new(2u32, 2.0),
        ];
        let body = ingest_body_for(&infections, 5).unwrap();
        assert_eq!(
            body,
            r#"{"cascades":[[{"node":0,"time":0},{"node":2,"time":2}]]}"#
        );
        assert!(ingest_body_for(&[], 5).is_none());
    }

    #[test]
    fn summary_attrs_cover_the_bench_schema() {
        let results = vec![WorkerResult {
            latencies_us: [vec![1000, 2000], vec![3000], vec![], vec![]],
            http_2xx: 2,
            http_4xx: 0,
            http_429: 1,
            http_5xx: 0,
            io_errors: 0,
            retries: 2,
        }];
        let summary = summarise(&results, 2.0);
        assert_eq!(summary.total_requests, 3);
        assert_eq!(summary.retries, 2);
        assert!((summary.throughput_rps - 1.5).abs() < 1e-9);
        assert!((summary.shed_rate - 1.0 / 3.0).abs() < 1e-9);
        let json = JsonValue::Obj(summary.attrs()).render();
        for needle in [
            "\"throughput_rps\":",
            "\"http_429\":1",
            "\"retries\":2",
            "\"shed_rate\":",
            "\"endpoints\":{\"predict\":{\"requests\":2",
            "\"influencers\":{\"requests\":0,\"p50_ms\":null",
            "\"backend\":null",
            "\"cluster_shards\":1",
            "\"followers\":0",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
        assert!(
            !json.contains("\"scenario\""),
            "closed-loop run grew a scenario"
        );

        // A probed topology (router over 2 shards + 2 followers,
        // single-box backend) lands in the payload verbatim.
        let mut clustered = summary.clone();
        clustered.topology = Topology {
            backend: Some("netinf".into()),
            cluster_shards: 2,
            followers: 2,
        };
        let json = JsonValue::Obj(clustered.attrs()).render();
        for needle in [
            "\"backend\":\"netinf\"",
            "\"cluster_shards\":2",
            "\"followers\":2",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }

        let mut with_scenario = summary;
        with_scenario.scenario = Some(ScenarioStats {
            name: "flash-crowd",
            arrivals: 120,
            burst_start_s: 5.0,
            burst_end_s: 7.0,
            baseline_rps: 4.0,
            burst_rps: 40.0,
        });
        let json = JsonValue::Obj(with_scenario.attrs()).render();
        for needle in [
            "\"scenario\":{\"name\":\"flash-crowd\"",
            "\"arrivals\":120",
            "\"burst_rps\":40",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }
}
