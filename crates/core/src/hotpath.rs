//! Microbenchmark of the serving hot path: the hazard candidate scan.
//!
//! Every `/v1/predict` call scans all `n` candidate nodes and sums
//! `⟨A_u, B_v⟩` rates over the infected set — the same inner product the
//! simulator races on and the single hottest loop in the daemon.
//! `viralcast bench-hotpath` times that scan in isolation against a
//! synthetic model so `BENCH_hotpath.json` tracks the kernel's cost
//! across PRs without HTTP, threading, or allocator noise on top.
//!
//! The harness is deterministic: the model and the scan order are pure
//! functions of `--seed`, and the folded checksum of every scan is
//! reported (and printed) so the compiler cannot dead-code-eliminate
//! the work being timed.

use crate::loadgen::XorShift64;
use std::time::Instant;
use viralcast_embed::Embeddings;
use viralcast_graph::NodeId;
use viralcast_obs::JsonValue;

/// One bench run's knobs.
#[derive(Clone, Debug)]
pub struct HotpathConfig {
    /// Synthetic model size (candidate-scan length).
    pub nodes: usize,
    /// Synthetic model topic count (inner-product length).
    pub topics: usize,
    /// Full candidate scans to time.
    pub iterations: usize,
    /// PRNG seed for the model and the scan sources.
    pub seed: u64,
}

impl Default for HotpathConfig {
    fn default() -> HotpathConfig {
        HotpathConfig {
            nodes: 2_000,
            topics: 8,
            iterations: 400,
            seed: 1,
        }
    }
}

/// What the bench measured.
#[derive(Clone, Debug)]
pub struct HotpathSummary {
    /// Scan length (model nodes).
    pub nodes: usize,
    /// Inner-product length (model topics).
    pub topics: usize,
    /// Scans performed.
    pub iterations: usize,
    /// `iterations × nodes` rate evaluations.
    pub total_rate_ops: u64,
    /// Mean cost of one rate evaluation, in nanoseconds.
    pub ns_per_rate_op: f64,
    /// Median full-scan latency, in microseconds.
    pub scan_p50_us: f64,
    /// 99th-percentile full-scan latency, in microseconds.
    pub scan_p99_us: f64,
    /// Folded sum of every scan result (anti-dead-code-elimination;
    /// also a cheap cross-machine determinism check for a given seed).
    pub checksum: f64,
}

impl HotpathSummary {
    /// The summary as run-report attributes (the `BENCH_hotpath.json`
    /// payload beyond the standard report envelope).
    pub fn attrs(&self) -> Vec<(String, JsonValue)> {
        vec![
            ("nodes".into(), self.nodes.into()),
            ("topics".into(), self.topics.into()),
            ("iterations".into(), self.iterations.into()),
            ("total_rate_ops".into(), self.total_rate_ops.into()),
            ("ns_per_rate_op".into(), self.ns_per_rate_op.into()),
            ("scan_p50_us".into(), self.scan_p50_us.into()),
            ("scan_p99_us".into(), self.scan_p99_us.into()),
            ("checksum".into(), self.checksum.into()),
        ]
    }
}

/// Builds the synthetic model: influence/selectivity entries uniform in
/// `[0, 1)`, fully dense so every inner product does real work.
fn synthetic_model(nodes: usize, topics: usize, seed: u64) -> Embeddings {
    let mut rng = XorShift64::new(seed);
    let mut entries =
        (0..2 * nodes * topics).map(|_| (rng.next_u64() % 1_000_000) as f64 / 1_000_000.0);
    let influence: Vec<f64> = entries.by_ref().take(nodes * topics).collect();
    let selectivity: Vec<f64> = entries.collect();
    Embeddings::from_matrices(nodes, topics, influence, selectivity)
}

/// Runs the scan benchmark.
pub fn run(config: &HotpathConfig) -> Result<HotpathSummary, String> {
    if config.nodes == 0 || config.topics == 0 || config.iterations == 0 {
        return Err("--nodes, --topics and --iterations must all be positive".into());
    }
    let embeddings = synthetic_model(config.nodes, config.topics, config.seed);
    let mut rng = XorShift64::new(config.seed ^ 0x5851_f42d_4c95_7f2d);

    // One untimed scan warms caches (and the page the matrices live on).
    let mut checksum = scan(&embeddings, NodeId::new(0));

    let mut scan_ns: Vec<u64> = Vec::with_capacity(config.iterations);
    let started = Instant::now();
    for _ in 0..config.iterations {
        let source = NodeId::new(rng.below(config.nodes as u64) as usize);
        let t0 = Instant::now();
        checksum += scan(&embeddings, source);
        scan_ns.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    let total = started.elapsed();
    scan_ns.sort_unstable();

    let total_rate_ops = (config.iterations * config.nodes) as u64;
    let rank = |q: f64| -> f64 {
        let i = (q * (scan_ns.len() as f64 - 1.0)).round() as usize;
        scan_ns[i.min(scan_ns.len() - 1)] as f64 / 1_000.0
    };
    Ok(HotpathSummary {
        nodes: config.nodes,
        topics: config.topics,
        iterations: config.iterations,
        total_rate_ops,
        ns_per_rate_op: total.as_nanos() as f64 / total_rate_ops as f64,
        scan_p50_us: rank(0.50),
        scan_p99_us: rank(0.99),
        checksum,
    })
}

/// One full candidate scan: the sum of `rate(source, v)` over all `v`.
#[inline(never)]
fn scan(embeddings: &Embeddings, source: NodeId) -> f64 {
    (0..embeddings.node_count())
        .map(|v| embeddings.rate(source, NodeId::new(v)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_is_deterministic_in_everything_but_time() {
        let config = HotpathConfig {
            nodes: 16,
            topics: 2,
            iterations: 8,
            seed: 42,
        };
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.total_rate_ops, 16 * 8);
        assert!(a.checksum > 0.0);
        assert!(a.ns_per_rate_op > 0.0);
        assert!(a.scan_p99_us >= a.scan_p50_us);
        assert_eq!(b.nodes, 16);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for broken in [
            HotpathConfig {
                nodes: 0,
                ..HotpathConfig::default()
            },
            HotpathConfig {
                topics: 0,
                ..HotpathConfig::default()
            },
            HotpathConfig {
                iterations: 0,
                ..HotpathConfig::default()
            },
        ] {
            assert!(run(&broken).is_err());
        }
    }

    #[test]
    fn attrs_cover_the_bench_schema() {
        let summary = run(&HotpathConfig {
            nodes: 8,
            topics: 1,
            iterations: 4,
            seed: 3,
        })
        .unwrap();
        let json = JsonValue::Obj(summary.attrs()).render();
        for needle in [
            "\"nodes\":8",
            "\"total_rate_ops\":32",
            "\"ns_per_rate_op\":",
            "\"scan_p50_us\":",
            "\"scan_p99_us\":",
            "\"checksum\":",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }
}
