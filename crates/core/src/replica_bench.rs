//! The read-scaling comparison behind `viralcast bench-replica`.
//!
//! Snapshot-replica followers exist to scale reads: the router fans
//! `/v1/predict` and `/v1/influencers` across every replica of a shard,
//! so adding followers should add read throughput without touching the
//! write path. This harness measures exactly that claim. It boots the
//! same sharded topology twice — once leader-only, once with
//! `followers` replicas per shard — in-process (real serve stacks,
//! real sockets, real replication polls; no child processes), drives
//! each with a read-only closed loop through a scatter-gather router
//! for the same wall-clock window, and reports per-leg throughput and
//! latency plus the throughput ratio (`read_speedup`). The report lands
//! in `BENCH_replica.json` with the same envelope as the other bench
//! harnesses.
//!
//! The model is synthetic (seeded embeddings, like `bench-hotpath`), so
//! the run needs no fixture files and is deterministic in shape — only
//! the timings vary with the machine.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use viralcast_cluster::{start_router, ClusterManifest, RouterConfig};
use viralcast_embed::Embeddings;
use viralcast_model::{CascadeModel, EmbeddingBackend};
use viralcast_obs::JsonValue;
use viralcast_replica::{start_follower, FollowerConfig, FollowerHandle};
use viralcast_serve::client::{self, RetryPolicy};
use viralcast_serve::{RowBlock, ServeConfig, ServerHandle, TrainerConfig};

/// One bench-replica run's knobs.
#[derive(Clone, Debug)]
pub struct ReplicaBenchConfig {
    /// Synthetic model rows.
    pub nodes: usize,
    /// Synthetic model topics.
    pub topics: usize,
    /// Shard leaders behind the router.
    pub shards: usize,
    /// Followers per shard in the replicated leg (the baseline leg
    /// always runs 0).
    pub followers: usize,
    /// Concurrent closed-loop read workers.
    pub workers: usize,
    /// Measured wall-clock window per leg.
    pub duration: Duration,
    /// Seed for the synthetic embeddings.
    pub seed: u64,
}

impl Default for ReplicaBenchConfig {
    fn default() -> ReplicaBenchConfig {
        ReplicaBenchConfig {
            nodes: 200,
            topics: 4,
            shards: 2,
            followers: 1,
            workers: 4,
            duration: Duration::from_secs(5),
            seed: 1,
        }
    }
}

/// What one topology leg measured.
#[derive(Clone, Debug)]
pub struct LegReport {
    /// Followers per shard in this leg.
    pub followers: usize,
    /// HTTP 200 reads completed inside the measured window.
    pub requests: u64,
    /// Reads that failed (non-200 or below HTTP).
    pub errors: u64,
    /// `requests / measured_seconds`.
    pub throughput_rps: f64,
    /// Median read latency (None without samples).
    pub p50_ms: Option<f64>,
    /// 99th-percentile read latency.
    pub p99_ms: Option<f64>,
}

/// The full comparison: both legs plus the headline ratio.
#[derive(Clone, Debug)]
pub struct ReplicaBenchSummary {
    /// Synthetic model rows.
    pub nodes: usize,
    /// Synthetic model topics.
    pub topics: usize,
    /// Shard leaders per leg.
    pub shards: usize,
    /// The measured legs, baseline (0 followers) first.
    pub legs: Vec<LegReport>,
    /// Replicated-leg throughput over baseline throughput (None when
    /// the baseline measured nothing).
    pub read_speedup: Option<f64>,
}

impl ReplicaBenchSummary {
    /// The summary as run-report attributes (the `BENCH_replica.json`
    /// payload beyond the standard report envelope).
    pub fn attrs(&self) -> Vec<(String, JsonValue)> {
        let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::from);
        let legs: Vec<JsonValue> = self
            .legs
            .iter()
            .map(|leg| {
                JsonValue::obj(vec![
                    ("followers", leg.followers.into()),
                    ("requests", leg.requests.into()),
                    ("errors", leg.errors.into()),
                    ("throughput_rps", leg.throughput_rps.into()),
                    ("p50_ms", opt(leg.p50_ms)),
                    ("p99_ms", opt(leg.p99_ms)),
                ])
            })
            .collect();
        vec![
            ("nodes".into(), self.nodes.into()),
            ("topics".into(), self.topics.into()),
            ("shards".into(), self.shards.into()),
            ("legs".into(), JsonValue::Arr(legs)),
            ("read_speedup".into(), opt(self.read_speedup)),
        ]
    }
}

/// Runs both legs and returns the comparison.
pub fn run(config: &ReplicaBenchConfig) -> Result<ReplicaBenchSummary, String> {
    if config.nodes < 2 || config.topics == 0 {
        return Err("--nodes must be ≥ 2 and --topics positive".into());
    }
    if config.shards == 0 || config.shards > 16 {
        return Err("--shards must be between 1 and 16".into());
    }
    if config.followers == 0 || config.followers > 4 {
        return Err(
            "--followers must be between 1 and 4 (the 0-follower baseline is implicit)".into(),
        );
    }
    if config.workers == 0 {
        return Err("--workers must be positive".into());
    }
    if config.duration.is_zero() {
        return Err("--duration must be positive".into());
    }
    let model = synthetic_model(config);
    let mut legs = Vec::with_capacity(2);
    for followers in [0, config.followers] {
        legs.push(run_leg(config, Arc::clone(&model), followers)?);
    }
    let read_speedup = match legs[0].throughput_rps {
        base if base > 0.0 => Some(legs[1].throughput_rps / base),
        _ => None,
    };
    Ok(ReplicaBenchSummary {
        nodes: config.nodes,
        topics: config.topics,
        shards: config.shards,
        legs,
        read_speedup,
    })
}

/// Seeded synthetic embeddings, positive everywhere so every node is a
/// live hazard candidate.
fn synthetic_model(config: &ReplicaBenchConfig) -> Arc<dyn CascadeModel> {
    let mut rng = crate::loadgen::XorShift64::new(config.seed);
    let mut draw = |scale: f64| 0.05 + (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * scale;
    let count = config.nodes * config.topics;
    let influence: Vec<f64> = (0..count).map(|_| draw(2.0)).collect();
    let susceptibility: Vec<f64> = (0..count).map(|_| draw(1.0)).collect();
    Arc::new(EmbeddingBackend::new(Embeddings::from_matrices(
        config.nodes,
        config.topics,
        influence,
        susceptibility,
    )))
}

/// An identity retrain — the bench never ingests, so the trainer (also
/// parked on an effectively-infinite batch floor) never runs.
fn dormant_trainer() -> TrainerConfig {
    TrainerConfig {
        interval: Duration::from_secs(3600),
        min_batch: usize::MAX,
    }
}

/// Boots one topology (leaders, followers, router), drives the read
/// loop for the configured window, and tears everything back down.
fn run_leg(
    config: &ReplicaBenchConfig,
    model: Arc<dyn CascadeModel>,
    followers: usize,
) -> Result<LegReport, String> {
    let block = |shard: usize| RowBlock::round_robin(config.nodes, shard, config.shards);
    let mut leaders: Vec<ServerHandle> = Vec::new();
    for shard in 0..config.shards {
        let handle = viralcast_serve::start(
            Arc::clone(&model),
            Box::new(|current, _| Ok(Arc::clone(current))),
            ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                trainer: dormant_trainer(),
                shard: Some(block(shard)?),
                ..ServeConfig::default()
            },
        )
        .map_err(|e| format!("cannot start shard {shard} leader: {e}"))?;
        leaders.push(handle);
    }
    let leader_addrs: Vec<SocketAddr> = leaders.iter().map(|l| l.local_addr()).collect();

    let mut replica_handles: Vec<FollowerHandle> = Vec::new();
    let mut groups: Vec<Vec<SocketAddr>> = vec![Vec::new(); config.shards];
    for shard in 0..config.shards {
        for _ in 0..followers {
            let handle = start_follower(FollowerConfig {
                poll_interval: Duration::from_millis(100),
                serve: ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    workers: 2,
                    shard: Some(block(shard)?),
                    ..ServeConfig::default()
                },
                ..FollowerConfig::new(leader_addrs[shard])
            })
            .map_err(|e| format!("cannot start a follower of shard {shard}: {e}"))?;
            groups[shard].push(handle.local_addr());
            replica_handles.push(handle);
        }
    }

    let manifest = ClusterManifest::round_robin(&leader_addrs)?
        .with_backend(EmbeddingBackend::ID)?
        .with_followers(groups)?;
    let router = start_router(
        manifest,
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            workers: config.workers.max(2),
            fanout_workers: (config.shards * (1 + followers)).max(4),
            shard_timeout: Duration::from_secs(2),
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..RouterConfig::default()
        },
    )
    .map_err(|e| format!("cannot start the router: {e}"))?;
    let router_addr = router.local_addr();

    // The router's view of the model populates on its first successful
    // probe; don't start the clock until it answers.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match crate::loadgen::probe_node_count(&router_addr) {
            Ok(_) => break,
            Err(e) if Instant::now() > deadline => {
                return Err(format!("router never reported the model: {e}"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let mut per_worker: Vec<(Vec<u64>, u64)> = Vec::new();
    std::thread::scope(|scope| {
        let stop = &stop;
        let handles: Vec<_> = (0..config.workers)
            .map(|w| scope.spawn(move || read_loop(&router_addr, config.nodes, w as u64, stop)))
            .collect();
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::SeqCst);
        for handle in handles {
            per_worker.push(handle.join().unwrap_or_default());
        }
    });
    let measured = started.elapsed().as_secs_f64();

    router.shutdown();
    for handle in replica_handles {
        handle.shutdown();
    }
    for handle in leaders {
        handle.shutdown();
    }

    let mut lat_us: Vec<u64> = per_worker
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    lat_us.sort_unstable();
    let errors = per_worker.iter().map(|(_, e)| e).sum();
    let requests = lat_us.len() as u64;
    Ok(LegReport {
        followers,
        requests,
        errors,
        throughput_rps: if measured > 0.0 {
            requests as f64 / measured
        } else {
            0.0
        },
        p50_ms: crate::loadgen::percentile_ms(&lat_us, 0.50),
        p99_ms: crate::loadgen::percentile_ms(&lat_us, 0.99),
    })
}

/// One closed-loop read worker: predicts mostly, ranks influencers
/// every fourth exchange, counts anything but a 200 as an error.
fn read_loop(addr: &SocketAddr, nodes: usize, worker: u64, stop: &AtomicBool) -> (Vec<u64>, u64) {
    let mut lat_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    let mut seq = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let started = Instant::now();
        let outcome = if seq % 4 == 3 {
            client::request(addr, "GET", "/v1/influencers?top=5", None)
        } else {
            let node = (seq.wrapping_mul(7).wrapping_add(worker)) % nodes.max(1) as u64;
            let body = format!(r#"{{"cascade":[{{"node":{node},"time":0.0}}],"top":5}}"#);
            client::request(addr, "POST", "/v1/predict", Some(&body))
        };
        match outcome {
            Ok(resp) if resp.status == 200 => {
                lat_us.push(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
            Ok(_) | Err(_) => errors += 1,
        }
        seq += 1;
    }
    (lat_us, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_attrs_cover_the_bench_replica_schema() {
        let summary = ReplicaBenchSummary {
            nodes: 200,
            topics: 4,
            shards: 2,
            legs: vec![
                LegReport {
                    followers: 0,
                    requests: 1000,
                    errors: 0,
                    throughput_rps: 200.0,
                    p50_ms: Some(1.5),
                    p99_ms: Some(9.0),
                },
                LegReport {
                    followers: 1,
                    requests: 1600,
                    errors: 0,
                    throughput_rps: 320.0,
                    p50_ms: Some(1.2),
                    p99_ms: Some(7.0),
                },
            ],
            read_speedup: Some(1.6),
        };
        let json = JsonValue::Obj(summary.attrs()).render();
        for needle in [
            "\"nodes\":200",
            "\"shards\":2",
            "\"legs\":[{\"followers\":0",
            "\"requests\":1000",
            "\"throughput_rps\":200",
            "\"p99_ms\":9",
            "\"followers\":1",
            "\"read_speedup\":1.6",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }

    #[test]
    fn both_legs_measure_real_reads_through_the_router() {
        let summary = run(&ReplicaBenchConfig {
            nodes: 12,
            topics: 2,
            shards: 2,
            followers: 1,
            workers: 2,
            duration: Duration::from_millis(150),
            seed: 7,
        })
        .unwrap();
        assert_eq!(summary.legs.len(), 2);
        assert_eq!(summary.legs[0].followers, 0);
        assert_eq!(summary.legs[1].followers, 1);
        for leg in &summary.legs {
            assert!(leg.requests > 0, "leg {} measured nothing", leg.followers);
            assert_eq!(leg.errors, 0, "leg {} saw read errors", leg.followers);
        }
        assert!(summary.read_speedup.is_some());
    }
}
