//! The kill-loop resilience harness behind `viralcast chaos`.
//!
//! The harness answers one question the unit tests cannot: does the
//! daemon's durability story hold up when the process is killed — not
//! stopped — while real load is in flight? It spawns `viralcast serve`
//! as a child process over a durable `--data-dir`, drives it with a
//! closed-loop ingest-heavy workload whose every cascade carries its
//! sequence number *inside the payload*, and then repeatedly SIGKILLs
//! and restarts the daemon mid-traffic. After the last cycle it kills
//! the child one final time and replays the data directory in-process:
//! every ingest the daemon ever acknowledged (HTTP 200) must come back
//! out of the log. One missing acked record fails the run.
//!
//! Beyond the loss check, the harness measures the *shape* of each
//! disruption: how long the daemon takes to answer `/healthz` again
//! after a kill (recovery p50/p99), how much worse latency gets while
//! the process is down and restarting (`p99_degradation` =
//! disrupted p99 / steady p99), how much load was shed (429/503), and
//! whether any request failed with a 5xx *after* recovery — the signal
//! that a restart corrupted state rather than losing time. The report
//! lands in `BENCH_chaos.json` with the same envelope as the other
//! bench harnesses.
//!
//! With `followers ≥ 1` (cluster mode only) every shard leader also
//! gets that many `serve --follow` replica children, the manifest
//! upgrades to v2 with the follower topology, and the assertion
//! *strengthens*: while a leader is a corpse the router must keep
//! answering reads with `"partial": false` — the follower masks the
//! outage entirely — so any degraded (partial) read fails the run
//! instead of being required by it.
//!
//! The workload client is [`viralcast_serve::client::request_with_retry`],
//! so workers ride out each restart with capped jittered backoff instead
//! of dying with the daemon; exhausted retry budgets are reported as
//! `io_errors` but only acked-record loss and recovery timeouts fail
//! the run.
//!
//! With `cluster_shards ≥ 2` the harness targets a different failure
//! domain: it boots N `serve --shard i/N` children behind a
//! `viralcast router` child, drives the *router*, and SIGKILLs one
//! randomly chosen shard per cycle instead of the whole daemon. While
//! the shard is down the router must keep answering `/v1/predict` with
//! HTTP 200 and `"partial": true` — a 5xx (or a full outage dressed as
//! a complete answer) is the failure the mode exists to catch, counted
//! in `non_partial_5xx`. Durability is verified the same way, except
//! the final replay unions every shard's data directory (ingests fail
//! over between shards while one is down).

use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use viralcast_cluster::ClusterManifest;
use viralcast_obs::{self as obs, JsonValue};
use viralcast_propagation::Cascade;
use viralcast_serve::client;
use viralcast_store::{EventStore, WalOptions};

/// One chaos run's knobs.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Embeddings file the child daemon serves (embed backend only).
    pub embeddings: PathBuf,
    /// Backend id the child daemons boot with (`"embed"` or `"netinf"`).
    pub backend: String,
    /// Cascade corpus the netinf backend fits at boot (netinf only).
    pub corpus: Option<PathBuf>,
    /// Durable data directory for the child; must be empty or absent so
    /// the final replay verifies exactly this run's traffic.
    pub data_dir: PathBuf,
    /// Concurrent closed-loop workers.
    pub workers: usize,
    /// Kill/restart cycles (the child also dies once more at the end,
    /// before the replay verification).
    pub cycles: u32,
    /// Steady-state load before each kill (and after the last recovery).
    pub steady: Duration,
    /// How long a restarted daemon gets to answer `/healthz` again.
    pub recovery_timeout: Duration,
    /// Seed for the workers' retry jitter (and the cluster mode's
    /// victim selection).
    pub seed: u64,
    /// `0` (or `1`) runs the single-box kill loop; `≥ 2` boots that
    /// many shards behind a router and kills one random shard per
    /// cycle instead.
    pub cluster_shards: usize,
    /// Cluster mode only: snapshot-replica followers per shard leader.
    /// With `≥ 1`, reads must stay **non-partial** while a leader is
    /// down (the follower answers for it); any degraded read fails the
    /// run.
    pub followers: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            embeddings: PathBuf::new(),
            backend: "embed".to_string(),
            corpus: None,
            data_dir: PathBuf::new(),
            workers: 4,
            cycles: 3,
            steady: Duration::from_secs(2),
            recovery_timeout: Duration::from_secs(30),
            seed: 1,
            cluster_shards: 0,
            followers: 0,
        }
    }
}

/// What one chaos run measured and verified.
#[derive(Clone, Debug)]
pub struct ChaosSummary {
    /// Kill/restart cycles completed.
    pub kill_cycles: u32,
    /// Ingests the daemon acknowledged with HTTP 200.
    pub acked: u64,
    /// Acked sequence numbers recovered from the final replay.
    pub recovered: u64,
    /// Acked sequence numbers **missing** from the final replay. Must
    /// be empty; anything else is durability loss.
    pub missing: Vec<u64>,
    /// Per-cycle kill-to-healthy times, milliseconds.
    pub recovery_ms: Vec<f64>,
    /// Median recovery time.
    pub recovery_p50_ms: Option<f64>,
    /// 99th-percentile recovery time.
    pub recovery_p99_ms: Option<f64>,
    /// Request p50 while no kill was in progress.
    pub steady_p50_ms: Option<f64>,
    /// Request p99 while no kill was in progress.
    pub steady_p99_ms: Option<f64>,
    /// Request p50 across kill/restart windows.
    pub disrupted_p50_ms: Option<f64>,
    /// Request p99 across kill/restart windows.
    pub disrupted_p99_ms: Option<f64>,
    /// `disrupted_p99_ms / steady_p99_ms` (None without both).
    pub p99_degradation: Option<f64>,
    /// Final 429/503 responses after the retry budget.
    pub shed: u64,
    /// `shed / (acked + shed)` (0 when no requests).
    pub shed_rate: f64,
    /// Exchanges that failed below HTTP even after retries.
    pub io_errors: u64,
    /// Extra attempts the retry layer issued.
    pub retries: u64,
    /// 5xx responses observed while the daemon was supposedly healthy.
    pub post_recovery_5xx: u64,
    /// Cluster mode: router probe responses carrying `"partial": true`
    /// while a shard was down (0 for single-box runs).
    pub partial_responses: u64,
    /// Cluster mode: router probes that answered 5xx (or failed below
    /// HTTP) while a shard was down — the router's one forbidden
    /// behaviour. Always 0 for single-box runs.
    pub non_partial_5xx: u64,
    /// Follower mode: reads that came back `"partial": true` while a
    /// leader was down even though its follower should have masked the
    /// outage. Must be 0; always 0 without followers.
    pub degraded_reads: u64,
}

impl ChaosSummary {
    /// Zero acked-event loss, every restart inside its deadline,
    /// (cluster mode) never a 5xx while degraded, and (follower mode)
    /// never a degraded read at all.
    pub fn passed(&self) -> bool {
        self.missing.is_empty()
            && self.post_recovery_5xx == 0
            && self.non_partial_5xx == 0
            && self.degraded_reads == 0
    }

    /// The summary as run-report attributes (the `BENCH_chaos.json`
    /// payload beyond the standard report envelope).
    pub fn attrs(&self) -> Vec<(String, JsonValue)> {
        let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::from);
        vec![
            ("kill_cycles".into(), u64::from(self.kill_cycles).into()),
            ("acked".into(), self.acked.into()),
            ("recovered".into(), self.recovered.into()),
            ("missing".into(), self.missing.len().into()),
            (
                "recovery_ms".into(),
                JsonValue::obj(vec![
                    ("p50", opt(self.recovery_p50_ms)),
                    ("p99", opt(self.recovery_p99_ms)),
                    (
                        "samples",
                        JsonValue::Arr(self.recovery_ms.iter().map(|&ms| ms.into()).collect()),
                    ),
                ]),
            ),
            ("steady_p50_ms".into(), opt(self.steady_p50_ms)),
            ("steady_p99_ms".into(), opt(self.steady_p99_ms)),
            ("disrupted_p50_ms".into(), opt(self.disrupted_p50_ms)),
            ("disrupted_p99_ms".into(), opt(self.disrupted_p99_ms)),
            ("p99_degradation".into(), opt(self.p99_degradation)),
            ("shed".into(), self.shed.into()),
            ("shed_rate".into(), self.shed_rate.into()),
            ("io_errors".into(), self.io_errors.into()),
            ("retries".into(), self.retries.into()),
            ("post_recovery_5xx".into(), self.post_recovery_5xx.into()),
            ("partial_responses".into(), self.partial_responses.into()),
            ("non_partial_5xx".into(), self.non_partial_5xx.into()),
            ("degraded_reads".into(), self.degraded_reads.into()),
        ]
    }
}

/// The ingest body for sequence number `seq`: a two-infection cascade
/// whose second infection fires at `t = seq + 1`, so the sequence
/// number survives the trip through HTTP, the WAL, and replay. `nodes`
/// is the served model's node count (must be ≥ 2 for a valid cascade).
pub fn encode_seq_body(seq: u64, nodes: usize) -> String {
    let n = (nodes as u64).max(2);
    let a = seq % n;
    let mut b = (seq + 1) % n;
    if b == a {
        b = (a + 1) % n;
    }
    format!(
        r#"{{"cascades":[[{{"node":{a},"time":0.0}},{{"node":{b},"time":{}.0}}]]}}"#,
        seq + 1
    )
}

/// Recovers the sequence number [`encode_seq_body`] planted in a
/// replayed cascade; `None` for cascades this harness did not write.
pub fn decode_seq(cascade: &Cascade) -> Option<u64> {
    let infections = cascade.infections();
    if infections.len() != 2 {
        return None;
    }
    // Cascades sort by time, so the marker is always the later one.
    let t = infections[1].time;
    if !t.is_finite() || t < 1.0 {
        return None;
    }
    let seq = (t as u64).checked_sub(1)?;
    // Round-trip check rejects non-integer times from other workloads.
    if (seq + 1) as f64 == t {
        Some(seq)
    } else {
        None
    }
}

/// What the post-mortem replay of the data directory found.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// Distinct harness sequence numbers present in the log.
    pub recovered: u64,
    /// Acked sequence numbers absent from the log (sorted).
    pub missing: Vec<u64>,
}

/// Replays `data_dir` in-process (the daemon is dead by now) and checks
/// every acked sequence number against what the log actually holds.
pub fn verify_recovered(data_dir: &Path, acked: &BTreeSet<u64>) -> io::Result<VerifyOutcome> {
    verify_recovered_across(std::slice::from_ref(&data_dir.to_path_buf()), acked)
}

/// [`verify_recovered`] over several data directories at once — the
/// cluster mode's final audit, where an acked ingest may sit in *any*
/// shard's log (ingests fail over while their owner is down).
pub fn verify_recovered_across(
    data_dirs: &[PathBuf],
    acked: &BTreeSet<u64>,
) -> io::Result<VerifyOutcome> {
    let mut recovered: BTreeSet<u64> = BTreeSet::new();
    for dir in data_dirs {
        let (store, recovery) = EventStore::open(dir, WalOptions::default())?;
        // Read-only pass: skip the close-time sync.
        store.abandon();
        recovered.extend(recovery.pending.iter().filter_map(decode_seq));
    }
    let missing: Vec<u64> = acked.difference(&recovered).copied().collect();
    Ok(VerifyOutcome {
        recovered: recovered.len() as u64,
        missing,
    })
}

/// Extracts the bound address from the daemon's
/// `viralcast-serve listening on http://HOST:PORT (...)` startup line.
pub fn parse_listen_line(line: &str) -> Option<SocketAddr> {
    let rest = line.split("http://").nth(1)?;
    let addr = rest.split(|c: char| c.is_whitespace() || c == '(').next()?;
    addr.parse().ok()
}

/// Worker phases, shared through an `AtomicU8`.
const PHASE_RUN: u8 = 0;
const PHASE_STOP: u8 = 1;

/// Per-worker tallies, merged after the run.
#[derive(Default)]
struct ChaosWorker {
    acked: Vec<u64>,
    steady_us: Vec<u64>,
    disrupted_us: Vec<u64>,
    shed: u64,
    io_errors: u64,
    retries: u64,
    post_recovery_5xx: u64,
}

/// Everything the workers share with the kill loop.
struct Shared {
    phase: AtomicU8,
    /// Set across each kill → healthy-again window.
    disrupted: AtomicBool,
    /// Where the (current) daemon listens; swapped after each restart.
    addr: Mutex<SocketAddr>,
    /// Global ingest sequence allocator.
    next_seq: AtomicU64,
}

/// Runs the kill loop and returns the measured, verified summary.
///
/// The run itself only errors on harness failures (cannot spawn the
/// daemon, recovery timeout, unreadable data dir); durability loss is
/// reported through [`ChaosSummary::missing`] so the caller can print
/// the evidence before failing.
pub fn run(config: &ChaosConfig) -> Result<ChaosSummary, String> {
    if config.workers == 0 {
        return Err("--workers must be positive".into());
    }
    if config.cycles == 0 {
        return Err("--cycles must be positive".into());
    }
    if config.cluster_shards >= 2 {
        return run_cluster(config);
    }
    ensure_empty_data_dir(&config.data_dir)?;

    let (mut child, first_addr) = spawn_daemon(config)?;
    let boot_deadline = Instant::now() + config.recovery_timeout;
    if let Err(e) = await_health(&first_addr, boot_deadline) {
        kill_quietly(&mut child);
        return Err(format!("daemon never became healthy: {e}"));
    }
    let nodes = crate::loadgen::probe_node_count(&first_addr)?;
    let shared = Shared {
        phase: AtomicU8::new(PHASE_RUN),
        disrupted: AtomicBool::new(false),
        addr: Mutex::new(first_addr),
        next_seq: AtomicU64::new(0),
    };

    let mut results: Vec<ChaosWorker> = Vec::new();
    let mut recovery_ms: Vec<f64> = Vec::new();
    let mut loop_error: Option<String> = None;
    std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let seed = config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
                scope.spawn(move || worker_loop(shared, nodes, seed))
            })
            .collect();

        for cycle in 1..=config.cycles {
            std::thread::sleep(config.steady);
            shared.disrupted.store(true, Ordering::SeqCst);
            let killed_at = Instant::now();
            kill_quietly(&mut child);
            match spawn_daemon(config) {
                Ok((next_child, next_addr)) => {
                    child = next_child;
                    let deadline = killed_at + config.recovery_timeout;
                    if let Err(e) = await_health(&next_addr, deadline) {
                        loop_error = Some(format!("cycle {cycle}: {e}"));
                        break;
                    }
                    let elapsed = killed_at.elapsed().as_secs_f64() * 1000.0;
                    recovery_ms.push(elapsed);
                    *shared.addr.lock().expect("addr lock poisoned") = next_addr;
                    shared.disrupted.store(false, Ordering::SeqCst);
                    obs::info(
                        "chaos",
                        &format!("cycle {cycle}: recovered in {elapsed:.0} ms"),
                        &[("addr", next_addr.to_string().into())],
                    );
                }
                Err(e) => {
                    loop_error = Some(format!("cycle {cycle}: respawn failed: {e}"));
                    break;
                }
            }
        }
        if loop_error.is_none() {
            // A final steady window so post-recovery behaviour is observed.
            std::thread::sleep(config.steady);
        }
        shared.phase.store(PHASE_STOP, Ordering::SeqCst);
        for handle in handles {
            results.push(handle.join().unwrap_or_default());
        }
    });
    // The ultimate crash: SIGKILL the survivor, then audit its disk.
    kill_quietly(&mut child);
    if let Some(e) = loop_error {
        return Err(e);
    }

    let acked: BTreeSet<u64> = results
        .iter()
        .flat_map(|r| r.acked.iter().copied())
        .collect();
    let verify = verify_recovered(&config.data_dir, &acked)
        .map_err(|e| format!("cannot replay {}: {e}", config.data_dir.display()))?;
    Ok(finish_summary(
        &results,
        recovery_ms,
        &acked,
        verify,
        0,
        0,
        0,
    ))
}

/// Refuses a non-empty data directory (creating it if absent), so the
/// final replay sees exactly this run's traffic.
fn ensure_empty_data_dir(data_dir: &Path) -> Result<(), String> {
    match std::fs::read_dir(data_dir) {
        Ok(mut entries) => {
            if entries.next().is_some() {
                return Err(format!(
                    "data dir {} is not empty; the final replay must see only \
                     this run's traffic (pass a fresh directory)",
                    data_dir.display()
                ));
            }
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => std::fs::create_dir_all(data_dir)
            .map_err(|e| format!("cannot create {}: {e}", data_dir.display())),
        Err(e) => Err(format!("cannot read {}: {e}", data_dir.display())),
    }
}

/// How many partial-response probes each down-window collects before
/// moving on to the respawn.
const PARTIALS_PER_CYCLE: u64 = 3;

/// The cluster kill loop: N shard children behind a router child, one
/// random shard SIGKILLed per cycle. While the shard is down the router
/// is probed directly: every `/v1/predict` answer must stay HTTP 200,
/// and the cycle must produce at least one `"partial": true` body
/// before its recovery deadline — a router that 5xxes (or stalls) while
/// one shard is dead fails the run. The final durability audit unions
/// every shard's data directory, because ingests fail over to surviving
/// shards while their owner is down.
fn run_cluster(config: &ChaosConfig) -> Result<ChaosSummary, String> {
    let shards = config.cluster_shards;
    ensure_empty_data_dir(&config.data_dir)?;

    // Reserve one loopback port per daemon (leaders first, then every
    // follower), then free them for the children to bind: the manifest
    // must name fixed addresses.
    let reserved: Vec<SocketAddr> = {
        let listeners = (0..shards * (1 + config.followers))
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<Vec<_>>>()
            .map_err(|e| format!("cannot reserve shard ports: {e}"))?;
        listeners
            .iter()
            .map(|l| l.local_addr().expect("bound listener has an address"))
            .collect()
    };
    let addrs: Vec<SocketAddr> = reserved[..shards].to_vec();
    let follower_addrs: Vec<Vec<SocketAddr>> = (0..shards)
        .map(|i| {
            reserved[shards + i * config.followers..shards + (i + 1) * config.followers].to_vec()
        })
        .collect();
    let manifest = ClusterManifest::round_robin(&addrs)?
        .with_backend(&config.backend)?
        .with_followers(follower_addrs.clone())?;
    let manifest_path = config.data_dir.join("cluster-manifest.json");
    manifest.save(&manifest_path)?;

    let shard_dirs: Vec<PathBuf> = (0..shards)
        .map(|i| config.data_dir.join(format!("shard-{i}")))
        .collect();
    let mut children: Vec<Child> = Vec::with_capacity(shards);
    let mut boot_error: Option<String> = None;
    for i in 0..shards {
        let extra = vec![
            "--shard".to_string(),
            format!("{i}/{shards}"),
            "--cluster-manifest".to_string(),
            manifest_path.display().to_string(),
        ];
        match spawn_serve(config, &addrs[i].to_string(), &shard_dirs[i], &extra) {
            Ok((child, _)) => children.push(child),
            Err(e) => {
                boot_error = Some(format!("shard {i}: {e}"));
                break;
            }
        }
    }
    let router = if boot_error.is_none() {
        match spawn_router(&manifest_path) {
            Ok(pair) => Some(pair),
            Err(e) => {
                boot_error = Some(format!("router: {e}"));
                None
            }
        }
    } else {
        None
    };
    let mut follower_children: Vec<Child> = Vec::new();
    let kill_everything = |children: &mut Vec<Child>,
                           followers: &mut Vec<Child>,
                           router: &mut Option<(Child, SocketAddr)>| {
        for child in children.iter_mut().chain(followers.iter_mut()) {
            kill_quietly(child);
        }
        if let Some((child, _)) = router.as_mut() {
            kill_quietly(child);
        }
    };
    let mut router = router;
    if let Some(e) = boot_error {
        kill_everything(&mut children, &mut follower_children, &mut router);
        return Err(e);
    }
    let (_, router_addr) = *router.as_ref().expect("router spawned");

    // Wait for every shard, then boot the followers (their first fetch
    // needs a live leader), then for the router's view of the model to
    // populate (its /healthz reports nodes once its prober has reached
    // a shard).
    let boot_deadline = Instant::now() + config.recovery_timeout;
    for (i, addr) in addrs.iter().enumerate() {
        if let Err(e) = await_health(addr, boot_deadline) {
            kill_everything(&mut children, &mut follower_children, &mut router);
            return Err(format!("shard {i} never became healthy: {e}"));
        }
    }
    for i in 0..shards {
        for (j, addr) in follower_addrs[i].iter().enumerate() {
            match spawn_follower(&addrs[i], addr, i, shards, &manifest_path) {
                Ok((child, _)) => follower_children.push(child),
                Err(e) => {
                    kill_everything(&mut children, &mut follower_children, &mut router);
                    return Err(format!("follower {j} of shard {i}: {e}"));
                }
            }
            if let Err(e) = await_health(addr, boot_deadline) {
                kill_everything(&mut children, &mut follower_children, &mut router);
                return Err(format!(
                    "follower {j} of shard {i} never became healthy: {e}"
                ));
            }
        }
    }
    let nodes = match await_node_count(&router_addr, boot_deadline) {
        Ok(nodes) => nodes,
        Err(e) => {
            kill_everything(&mut children, &mut follower_children, &mut router);
            return Err(format!("router never reported the model: {e}"));
        }
    };

    let shared = Shared {
        phase: AtomicU8::new(PHASE_RUN),
        disrupted: AtomicBool::new(false),
        addr: Mutex::new(router_addr),
        next_seq: AtomicU64::new(0),
    };
    let mut victim_rng = crate::loadgen::XorShift64::new(config.seed);

    let mut results: Vec<ChaosWorker> = Vec::new();
    let mut recovery_ms: Vec<f64> = Vec::new();
    let mut partial_responses = 0u64;
    let mut non_partial_5xx = 0u64;
    let mut degraded_reads = 0u64;
    let mut loop_error: Option<String> = None;
    std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let seed = config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
                scope.spawn(move || worker_loop(shared, nodes, seed))
            })
            .collect();

        let probe_body = r#"{"cascade":[{"node":0,"time":0.0}],"top":5}"#;
        for cycle in 1..=config.cycles {
            std::thread::sleep(config.steady);
            let victim = victim_rng.below(shards as u64) as usize;
            shared.disrupted.store(true, Ordering::SeqCst);
            let killed_at = Instant::now();
            kill_quietly(&mut children[victim]);
            let deadline = killed_at + config.recovery_timeout;

            // Interrogate the router while the shard is a corpse.
            // Without followers it must degrade (200 + "partial": true),
            // never 5xx; with followers the shard's replica must mask
            // the outage entirely, so the same probe must stay
            // "partial": false and any degraded read is a failure.
            let mut partials_seen = 0u64;
            let mut full_seen = 0u64;
            let target = PARTIALS_PER_CYCLE;
            while partials_seen.max(full_seen) < target && Instant::now() < deadline {
                match client::request(&router_addr, "POST", "/v1/predict", Some(probe_body)) {
                    Ok(resp) if resp.status >= 500 => non_partial_5xx += 1,
                    Ok(resp) if resp.status == 200 => {
                        if resp.body.contains("\"partial\":true") {
                            partials_seen += 1;
                            if config.followers > 0 {
                                degraded_reads += 1;
                            }
                        } else {
                            full_seen += 1;
                        }
                    }
                    Ok(_) | Err(_) => {}
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            partial_responses += partials_seen;
            if config.followers > 0 && full_seen < target {
                loop_error = Some(format!(
                    "cycle {cycle}: router never answered a full (non-partial) read \
                     while leader {victim} was down despite its follower(s)"
                ));
                break;
            }
            if config.followers == 0 && partials_seen == 0 {
                loop_error = Some(format!(
                    "cycle {cycle}: router never answered partial while shard {victim} was down"
                ));
                break;
            }

            match spawn_serve(
                config,
                &addrs[victim].to_string(),
                &shard_dirs[victim],
                &[
                    "--shard".to_string(),
                    format!("{victim}/{shards}"),
                    "--cluster-manifest".to_string(),
                    manifest_path.display().to_string(),
                ],
            ) {
                Ok((next_child, _)) => {
                    children[victim] = next_child;
                    if let Err(e) = await_health(&addrs[victim], deadline) {
                        loop_error = Some(format!("cycle {cycle}: {e}"));
                        break;
                    }
                    let elapsed = killed_at.elapsed().as_secs_f64() * 1000.0;
                    recovery_ms.push(elapsed);
                    shared.disrupted.store(false, Ordering::SeqCst);
                    let while_down = if config.followers > 0 {
                        format!("{full_seen} full read(s) via follower(s) while down")
                    } else {
                        format!("{partials_seen} partial response(s) while down")
                    };
                    obs::info(
                        "chaos",
                        &format!(
                            "cycle {cycle}: shard {victim} recovered in {elapsed:.0} ms \
                             ({while_down})"
                        ),
                        &[("addr", addrs[victim].to_string().into())],
                    );
                }
                Err(e) => {
                    loop_error = Some(format!("cycle {cycle}: respawn of shard {victim}: {e}"));
                    break;
                }
            }
        }
        if loop_error.is_none() {
            // A final steady window so post-recovery behaviour is observed.
            std::thread::sleep(config.steady);
        }
        shared.phase.store(PHASE_STOP, Ordering::SeqCst);
        for handle in handles {
            results.push(handle.join().unwrap_or_default());
        }
    });
    // The ultimate crash: SIGKILL everything, then audit every disk.
    // Followers have no disk of their own — only leader WALs count.
    kill_everything(&mut children, &mut follower_children, &mut router);
    if let Some(e) = loop_error {
        return Err(e);
    }

    let acked: BTreeSet<u64> = results
        .iter()
        .flat_map(|r| r.acked.iter().copied())
        .collect();
    let verify = verify_recovered_across(&shard_dirs, &acked)
        .map_err(|e| format!("cannot replay the shard data dirs: {e}"))?;
    Ok(finish_summary(
        &results,
        recovery_ms,
        &acked,
        verify,
        partial_responses,
        non_partial_5xx,
        degraded_reads,
    ))
}

/// Polls `/healthz` until it reports a non-empty model (a router's view
/// populates only after its first successful shard probe).
fn await_node_count(addr: &SocketAddr, deadline: Instant) -> Result<usize, String> {
    loop {
        match crate::loadgen::probe_node_count(addr) {
            Ok(nodes) => return Ok(nodes),
            Err(e) if Instant::now() > deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Folds the per-worker tallies, recovery samples, and replay verdict
/// into the run summary. Shared by the single-box and cluster paths.
fn finish_summary(
    results: &[ChaosWorker],
    recovery_ms: Vec<f64>,
    acked: &BTreeSet<u64>,
    verify: VerifyOutcome,
    partial_responses: u64,
    non_partial_5xx: u64,
    degraded_reads: u64,
) -> ChaosSummary {
    let mut steady_us: Vec<u64> = results
        .iter()
        .flat_map(|r| r.steady_us.iter().copied())
        .collect();
    let mut disrupted_us: Vec<u64> = results
        .iter()
        .flat_map(|r| r.disrupted_us.iter().copied())
        .collect();
    steady_us.sort_unstable();
    disrupted_us.sort_unstable();
    let mut recovery_sorted_us: Vec<u64> =
        recovery_ms.iter().map(|&ms| (ms * 1000.0) as u64).collect();
    recovery_sorted_us.sort_unstable();

    let sum = |f: fn(&ChaosWorker) -> u64| results.iter().map(f).sum::<u64>();
    let shed = sum(|r| r.shed);
    let acked_count = acked.len() as u64;
    let steady_p99 = crate::loadgen::percentile_ms(&steady_us, 0.99);
    let disrupted_p99 = crate::loadgen::percentile_ms(&disrupted_us, 0.99);
    ChaosSummary {
        kill_cycles: recovery_ms.len() as u32,
        acked: acked_count,
        recovered: verify.recovered,
        missing: verify.missing,
        recovery_p50_ms: crate::loadgen::percentile_ms(&recovery_sorted_us, 0.50),
        recovery_p99_ms: crate::loadgen::percentile_ms(&recovery_sorted_us, 0.99),
        recovery_ms,
        steady_p50_ms: crate::loadgen::percentile_ms(&steady_us, 0.50),
        steady_p99_ms: steady_p99,
        disrupted_p50_ms: crate::loadgen::percentile_ms(&disrupted_us, 0.50),
        disrupted_p99_ms: disrupted_p99,
        p99_degradation: match (steady_p99, disrupted_p99) {
            (Some(s), Some(d)) if s > 0.0 => Some(d / s),
            _ => None,
        },
        shed,
        shed_rate: if acked_count + shed > 0 {
            shed as f64 / (acked_count + shed) as f64
        } else {
            0.0
        },
        io_errors: sum(|r| r.io_errors),
        retries: sum(|r| r.retries),
        post_recovery_5xx: sum(|r| r.post_recovery_5xx),
        partial_responses,
        non_partial_5xx,
        degraded_reads,
    }
}

/// One closed-loop worker: allocate a sequence number, ingest it (every
/// fourth exchange is a predict read instead, so the read path's
/// degradation is measured too), tally the outcome into the steady or
/// disrupted bucket.
fn worker_loop(shared: &Shared, nodes: usize, seed: u64) -> ChaosWorker {
    let mut result = ChaosWorker::default();
    // Restarts take longer than a shed burst: give chaos workers a
    // deeper retry budget than the loadgen default.
    let policy = client::RetryPolicy {
        max_attempts: 8,
        max_backoff: Duration::from_millis(500),
        jitter_seed: seed,
        ..client::RetryPolicy::default()
    };
    while shared.phase.load(Ordering::SeqCst) == PHASE_RUN {
        let seq = shared.next_seq.fetch_add(1, Ordering::SeqCst);
        let is_read = seq % 4 == 3;
        let (target, body);
        if is_read {
            target = "/v1/predict";
            body = format!(
                r#"{{"cascade":[{{"node":{},"time":0.0}}],"top":5}}"#,
                seq % nodes.max(1) as u64
            );
        } else {
            target = "/v1/ingest";
            body = encode_seq_body(seq, nodes);
        }
        let trace_id = format!("chaos-{seq:x}");
        let addr = *shared.addr.lock().expect("addr lock poisoned");
        let disrupted = shared.disrupted.load(Ordering::SeqCst);
        let started = Instant::now();
        let outcome = client::request_with_retry(
            &addr,
            "POST",
            target,
            Some(&body),
            &[("X-Request-Id", &trace_id)],
            &policy,
        );
        match outcome {
            Ok(retried) => {
                result.retries += u64::from(retried.retries());
                let bucket = if disrupted || retried.retries() > 0 {
                    &mut result.disrupted_us
                } else {
                    &mut result.steady_us
                };
                bucket.push(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
                match retried.response.status {
                    200..=299 if !is_read => result.acked.push(seq),
                    200..=299 => {}
                    429 | 503 => result.shed += 1,
                    500..=599 if !disrupted => result.post_recovery_5xx += 1,
                    _ => {}
                }
            }
            Err(_) => {
                result.retries += u64::from(policy.max_attempts.saturating_sub(1));
                result.io_errors += 1;
            }
        }
    }
    result
}

/// Spawns `viralcast serve` (this same binary) over the chaos data dir
/// and scrapes the bound address from its startup banner. The trainer
/// is effectively disabled so every acked ingest stays in the WAL for
/// the final replay instead of being folded into a checkpoint.
fn spawn_daemon(config: &ChaosConfig) -> Result<(Child, SocketAddr), String> {
    spawn_serve(config, "127.0.0.1:0", &config.data_dir, &[])
}

/// Spawns one `viralcast serve` child — the single-box daemon, or one
/// shard of the cluster when `extra` carries `--shard`/`--cluster-manifest`.
fn spawn_serve(
    config: &ChaosConfig,
    addr: &str,
    data_dir: &Path,
    extra: &[String],
) -> Result<(Child, SocketAddr), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("serve").arg("--backend").arg(&config.backend);
    match (&config.backend, &config.corpus) {
        (b, Some(corpus)) if b == "netinf" => {
            cmd.arg("--corpus").arg(corpus);
        }
        _ => {
            cmd.arg("--embeddings").arg(&config.embeddings);
        }
    }
    cmd.arg("--data-dir")
        .arg(data_dir)
        .arg("--addr")
        .arg(addr)
        .arg("--fsync")
        .arg("always")
        .arg("--retrain-interval")
        .arg("86400")
        .arg("--min-retrain-batch")
        .arg("1000000000")
        .arg("--ingest-capacity")
        .arg("1000000")
        .arg("--log-level")
        .arg("error");
    for arg in extra {
        cmd.arg(arg);
    }
    spawn_and_scrape(cmd, "serve")
}

/// Spawns one `viralcast serve --follow` replica child of the leader at
/// `leader`, bound to `addr` and shard-scoped like its leader. The
/// tight `--poll-interval` keeps replica lag far below the kill cadence.
fn spawn_follower(
    leader: &SocketAddr,
    addr: &SocketAddr,
    shard: usize,
    shards: usize,
    manifest_path: &Path,
) -> Result<(Child, SocketAddr), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg("--follow")
        .arg(leader.to_string())
        .arg("--addr")
        .arg(addr.to_string())
        .arg("--shard")
        .arg(format!("{shard}/{shards}"))
        .arg("--cluster-manifest")
        .arg(manifest_path)
        .arg("--poll-interval")
        .arg("0.05")
        .arg("--log-level")
        .arg("error");
    spawn_and_scrape(cmd, "follower")
}

/// Spawns the `viralcast router` child fronting the cluster.
fn spawn_router(manifest_path: &Path) -> Result<(Child, SocketAddr), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("router")
        .arg("--cluster-manifest")
        .arg(manifest_path)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--log-level")
        .arg("error");
    spawn_and_scrape(cmd, "router")
}

/// Spawns a child and scrapes the bound address from its
/// `… listening on http://HOST:PORT …` startup banner.
fn spawn_and_scrape(mut cmd: Command, kind: &str) -> Result<(Child, SocketAddr), String> {
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn {kind} child: {e}"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading {kind} child stdout: {e}"))?;
        if n == 0 {
            kill_quietly(&mut child);
            return Err(format!("{kind} child exited before announcing its address"));
        }
        if let Some(addr) = parse_listen_line(&line) {
            // Keep draining in the background so the child never blocks
            // on a full stdout pipe.
            std::thread::spawn(move || {
                let mut sink = String::new();
                while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                    sink.clear();
                }
            });
            return Ok((child, addr));
        }
    }
}

/// Polls `/healthz` until it answers 200 or the deadline passes.
fn await_health(addr: &SocketAddr, deadline: Instant) -> Result<(), String> {
    loop {
        match client::request(addr, "GET", "/healthz", None) {
            Ok(resp) if resp.status == 200 => return Ok(()),
            _ if Instant::now() > deadline => {
                return Err(format!("daemon at {addr} not healthy before the deadline"));
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// SIGKILL + reap, ignoring already-dead children.
fn kill_quietly(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_propagation::Infection;

    #[test]
    fn seq_survives_the_cascade_round_trip() {
        for seq in [0u64, 1, 7, 4095, 1 << 40] {
            let body = encode_seq_body(seq, 50);
            // The body must be a two-infection cascade with distinct nodes.
            assert!(body.contains("\"cascades\":[["), "{body}");
            let cascade = Cascade::new(vec![
                Infection::new((seq % 50) as u32, 0.0),
                Infection::new(((seq + 1) % 50) as u32, (seq + 1) as f64),
            ])
            .unwrap();
            assert_eq!(decode_seq(&cascade), Some(seq));
        }
    }

    #[test]
    fn encode_keeps_the_two_nodes_distinct() {
        // seq % n == (seq + 1) % n never happens for n ≥ 2, but the
        // guard must also hold for degenerate node counts.
        for nodes in [0usize, 1, 2, 3] {
            for seq in 0..16u64 {
                let body = encode_seq_body(seq, nodes);
                let nodes_in_body: Vec<&str> = body.matches("\"node\":").collect();
                assert_eq!(nodes_in_body.len(), 2, "{body}");
            }
        }
    }

    #[test]
    fn decode_rejects_foreign_cascades() {
        let single = Cascade::new(vec![Infection::new(0u32, 0.0)]).unwrap();
        assert_eq!(decode_seq(&single), None);
        let fractional =
            Cascade::new(vec![Infection::new(0u32, 0.0), Infection::new(1u32, 2.5)]).unwrap();
        assert_eq!(decode_seq(&fractional), None);
        let triple = Cascade::new(vec![
            Infection::new(0u32, 0.0),
            Infection::new(1u32, 1.0),
            Infection::new(2u32, 2.0),
        ])
        .unwrap();
        assert_eq!(decode_seq(&triple), None);
    }

    #[test]
    fn listen_lines_parse_to_addresses() {
        let line = "viralcast-serve listening on http://127.0.0.1:41523 (200 nodes × 4 topics)";
        assert_eq!(
            parse_listen_line(line),
            Some("127.0.0.1:41523".parse().unwrap())
        );
        assert_eq!(parse_listen_line("press ctrl-c to stop"), None);
        assert_eq!(parse_listen_line("listening on http://not-an-addr"), None);
    }

    #[test]
    fn summary_attrs_cover_the_bench_chaos_schema() {
        let summary = ChaosSummary {
            kill_cycles: 3,
            acked: 100,
            recovered: 100,
            missing: vec![],
            recovery_ms: vec![120.0, 140.0, 90.0],
            recovery_p50_ms: Some(120.0),
            recovery_p99_ms: Some(140.0),
            steady_p50_ms: Some(1.0),
            steady_p99_ms: Some(4.0),
            disrupted_p50_ms: Some(10.0),
            disrupted_p99_ms: Some(40.0),
            p99_degradation: Some(10.0),
            shed: 5,
            shed_rate: 5.0 / 105.0,
            io_errors: 2,
            retries: 9,
            post_recovery_5xx: 0,
            partial_responses: 6,
            non_partial_5xx: 0,
            degraded_reads: 0,
        };
        assert!(summary.passed());
        let json = JsonValue::Obj(summary.attrs()).render();
        for needle in [
            "\"kill_cycles\":3",
            "\"acked\":100",
            "\"recovered\":100",
            "\"missing\":0",
            "\"recovery_ms\":{\"p50\":120",
            "\"p99_degradation\":10",
            "\"shed_rate\":",
            "\"post_recovery_5xx\":0",
            "\"partial_responses\":6",
            "\"non_partial_5xx\":0",
            "\"degraded_reads\":0",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }

        let lossy = ChaosSummary {
            missing: vec![42],
            ..summary.clone()
        };
        assert!(!lossy.passed());

        let outage = ChaosSummary {
            non_partial_5xx: 1,
            ..summary.clone()
        };
        assert!(!outage.passed());

        // With followers a degraded (partial) read is itself a failure.
        let degraded = ChaosSummary {
            degraded_reads: 2,
            ..summary
        };
        assert!(!degraded.passed());
    }
}
