//! `viralcast` — command-line interface to the full pipeline.
//!
//! ```text
//! viralcast simulate-sbm   --nodes 2000 --cascades 3000 --out corpus.jsonl
//! viralcast simulate-gdelt --sites 2000 --events 2600 --out mentions.csv
//! viralcast infer          --corpus corpus.jsonl --topics 8 --out embeddings.json
//! viralcast predict        --corpus test.jsonl --embeddings embeddings.json --window 1.0
//! viralcast influencers    --embeddings embeddings.json --top 10
//! ```
//!
//! Every subcommand is deterministic given `--seed`. `--threads N`
//! bounds the rayon pool (default: all available).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use viralcast::prelude::*;
use viralcast::propagation::store;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(args);

    if let Some(threads) = flags.get_usize("threads") {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .ok();
    }

    let result = match command.as_str() {
        "simulate-sbm" => simulate_sbm(&flags),
        "simulate-gdelt" => simulate_gdelt(&flags),
        "infer" => infer_cmd(&flags),
        "predict" => predict_cmd(&flags),
        "influencers" => influencers_cmd(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
viralcast — predicting viral news events in online media

USAGE:
  viralcast simulate-sbm   --out FILE [--nodes N] [--cascades C] [--seed S] [--local]
  viralcast simulate-gdelt --out FILE [--sites N] [--events E] [--seed S]
  viralcast infer          --corpus FILE --out FILE [--topics K] [--seed S] [--threads T]
  viralcast predict        --corpus FILE --embeddings FILE [--window W] [--early F] [--top P]
  viralcast influencers    --embeddings FILE [--top K]";

fn simulate_sbm(flags: &Flags) -> Result<(), String> {
    let out = flags.require_path("out")?;
    let nodes = flags.usize("nodes", 2_000);
    let cascades = flags.usize("cascades", 3_000);
    let seed = flags.u64("seed", 1);
    let mut config = SbmExperimentConfig {
        sbm: SbmConfig {
            nodes,
            community_size: 40,
            intra_prob: 0.2,
            inter_prob: 0.001,
        },
        cascades,
        ..SbmExperimentConfig::default()
    };
    if flags.has("local") {
        config.planted = PlantedConfig {
            on_topic: 1.2,
            off_topic: 0.02,
            jitter: 0.3,
        };
    }
    let experiment = SbmExperiment::build(&config, seed);
    // Persist the full corpus (train ∥ test in order).
    let mut all = experiment.train().clone();
    for c in experiment.test().cascades() {
        all.push(c.clone());
    }
    store::save(&all, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} cascades over {nodes} nodes to {}",
        all.len(),
        out.display()
    );
    Ok(())
}

fn simulate_gdelt(flags: &Flags) -> Result<(), String> {
    let out = flags.require_path("out")?;
    let sites = flags.usize("sites", 2_000);
    let events = flags.usize("events", 2_600);
    let seed = flags.u64("seed", 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let world = GdeltWorld::generate(
        GdeltConfig {
            sites,
            ..GdeltConfig::default()
        },
        &mut rng,
    );
    let table = world.simulate_events(events, &mut rng);
    table.save_csv(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} mentions of {events} events across {sites} sites to {}",
        table.mentions().len(),
        out.display()
    );
    Ok(())
}

fn infer_cmd(flags: &Flags) -> Result<(), String> {
    let corpus_path = flags.require_path("corpus")?;
    let out = flags.require_path("out")?;
    let topics = flags.usize("topics", 8);
    let corpus = load_corpus(&corpus_path)?;
    println!(
        "inferring {topics}-topic embeddings from {} cascades over {} nodes…",
        corpus.len(),
        corpus.node_count()
    );
    let start = std::time::Instant::now();
    let outcome = infer_embeddings(
        &corpus,
        &InferOptions {
            topics,
            ..InferOptions::default()
        },
    );
    println!(
        "…done in {:.1}s ({} communities, final LL {:.1})",
        start.elapsed().as_secs_f64(),
        outcome.partition.community_count(),
        outcome.report.final_ll()
    );
    outcome
        .embeddings
        .save_json(&out)
        .map_err(|e| e.to_string())?;
    println!("embeddings saved to {}", out.display());
    Ok(())
}

fn predict_cmd(flags: &Flags) -> Result<(), String> {
    let corpus_path = flags.require_path("corpus")?;
    let emb_path = flags.require_path("embeddings")?;
    let window = flags.f64("window", 1.0);
    let early = flags.f64("early", 2.0 / 7.0);
    let top = flags.f64("top", 0.2);
    let corpus = load_corpus(&corpus_path)?;
    let embeddings = Embeddings::load_json(&emb_path).map_err(|e| e.to_string())?;
    if embeddings.node_count() < corpus.node_count() {
        return Err(format!(
            "embeddings cover {} nodes but the corpus references {}",
            embeddings.node_count(),
            corpus.node_count()
        ));
    }
    let task = PredictionTask {
        window,
        early_fraction: early,
        ..PredictionTask::default()
    };
    let dataset = extract_dataset(&embeddings, &corpus, &task);
    let max = dataset.sizes.iter().copied().max().unwrap_or(0);
    let mut thresholds: Vec<usize> = (0..max).step_by((max / 10).max(1)).collect();
    thresholds.push(dataset.top_fraction_threshold(top));
    thresholds.sort_unstable();
    thresholds.dedup();
    println!("{:>8} {:>8} {:>7} {:>7} {:>7}", "size >", "#viral", "F1", "prec", "recall");
    for p in threshold_sweep(&dataset, &thresholds, &task) {
        println!(
            "{:>8} {:>8} {:>7.3} {:>7.3} {:>7.3}",
            p.threshold, p.positives, p.f1, p.precision, p.recall
        );
    }
    Ok(())
}

fn influencers_cmd(flags: &Flags) -> Result<(), String> {
    let emb_path = flags.require_path("embeddings")?;
    let top = flags.usize("top", 10);
    let embeddings = Embeddings::load_json(&emb_path).map_err(|e| e.to_string())?;
    println!("{:>6} {:>8} {:>10}", "rank", "node", "‖A‖");
    for (i, r) in top_influencers(&embeddings, top).iter().enumerate() {
        println!("{:>6} {:>8} {:>10.4}", i + 1, r.node.0, r.score);
    }
    Ok(())
}

fn load_corpus(path: &Path) -> Result<CascadeSet, String> {
    store::load(path).map_err(|e| format!("cannot load corpus {}: {e}", path.display()))
}

/// Minimal `--flag value` parser (kept local so the binary has no extra
/// dependencies).
struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    fn parse<I: Iterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                values.insert(key.to_string(), value);
            }
        }
        Flags { values }
    }

    fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn get_usize(&self, key: &str) -> Option<usize> {
        self.values.get(key).and_then(|v| v.parse().ok())
    }

    fn usize(&self, key: &str, default: usize) -> usize {
        self.get_usize(key).unwrap_or(default)
    }

    fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn require_path(&self, key: &str) -> Result<PathBuf, String> {
        self.values
            .get(key)
            .map(PathBuf::from)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }
}
