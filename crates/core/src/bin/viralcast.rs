//! `viralcast` — command-line interface to the full pipeline.
//!
//! ```text
//! viralcast simulate-sbm   --nodes 2000 --cascades 3000 --out corpus.jsonl
//! viralcast simulate-gdelt --sites 2000 --events 2600 --out mentions.csv
//! viralcast infer          --corpus corpus.jsonl --topics 8 --out embeddings.json
//! viralcast predict        --corpus test.jsonl --embeddings embeddings.json --window 1.0
//! viralcast influencers    --embeddings embeddings.json --top 10
//! viralcast serve          --embeddings embeddings.json --addr 127.0.0.1:8080
//! ```
//!
//! Every subcommand is deterministic given `--seed`. `--threads N`
//! bounds the rayon pool (default: all available). Observability flags
//! shared by all subcommands:
//!
//! * `--log-level L` — `off|error|warn|info|debug|trace` stderr logging
//!   (default `info`);
//! * `--trace FILE` — append the structured event stream as JSONL;
//! * `--metrics-out FILE` — write the machine-readable run report
//!   (span-timing tree + metrics snapshot, schema
//!   `viralcast-run-report/v1`).
//!
//! Unknown flags, missing values and malformed values are usage errors
//! (exit code 2); runtime failures exit with code 1.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use viralcast::obs::{self, JsonValue};
use viralcast::prelude::*;
use viralcast::propagation::store;

/// A CLI failure: usage errors exit 2 and print the usage text, runtime
/// errors exit 1.
enum CliError {
    Usage(String),
    Runtime(String),
}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn runtime_err(message: impl std::fmt::Display) -> CliError {
    CliError::Runtime(message.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), CliError> {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return Err(usage_err("missing command"));
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let spec =
        command_flags(&command).ok_or_else(|| usage_err(format!("unknown command {command:?}")))?;
    let flags = Flags::parse(args, spec)?;

    if let Some(threads) = flags.opt_usize("threads")? {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .ok();
    }

    // Observability wiring: stderr logging at the requested level, an
    // optional JSONL event trace, and an optional run report.
    let level = match flags.get("log-level") {
        Some(s) => obs::Level::parse(s).map_err(|e| usage_err(format!("--log-level: {e}")))?,
        None => Some(obs::Level::Info),
    };
    obs::logger().set_level(level);
    if level.is_some() {
        obs::logger().add_sink(Box::new(obs::StderrSink));
    }
    if let Some(path) = flags.opt_path("trace") {
        let sink = obs::JsonlSink::create(&path)
            .map_err(|e| runtime_err(format!("cannot open trace file {}: {e}", path.display())))?;
        obs::logger().add_sink(Box::new(sink));
    }
    let metrics_out = flags.opt_path("metrics-out");

    let recorder = Recorder::new("viralcast");
    let attrs = {
        let _recording = recorder.install();
        match command.as_str() {
            "simulate-sbm" => simulate_sbm(&flags)?,
            "simulate-gdelt" => simulate_gdelt(&flags)?,
            "infer" => infer_cmd(&flags, &recorder)?,
            "predict" => predict_cmd(&flags)?,
            "influencers" => influencers_cmd(&flags)?,
            "serve" => serve_cmd(&flags)?,
            "cluster-plan" => cluster_plan_cmd(&flags)?,
            "router" => router_cmd(&flags)?,
            "loadgen" => loadgen_cmd(&flags)?,
            "bench-hotpath" => bench_hotpath_cmd(&flags)?,
            "bench-backends" => bench_backends_cmd(&flags)?,
            "bench-replica" => bench_replica_cmd(&flags)?,
            "chaos" => chaos_cmd(&flags)?,
            _ => unreachable!("validated by command_flags"),
        }
    };
    obs::logger().flush();

    if let Some(path) = metrics_out {
        let mut report = RunReport::new(recorder.finish(), obs::metrics().snapshot())
            .attr("command", command.as_str());
        for (key, value) in attrs {
            report = report.attr(key, value);
        }
        report
            .save(&path)
            .map_err(|e| runtime_err(format!("cannot write run report {}: {e}", path.display())))?;
    }
    Ok(())
}

const USAGE: &str = "\
viralcast — predicting viral news events in online media

USAGE:
  viralcast simulate-sbm   --out FILE [--nodes N] [--cascades C] [--seed S] [--local]
  viralcast simulate-gdelt --out FILE [--sites N] [--events E] [--seed S]
  viralcast infer          --corpus FILE --out FILE [--topics K] [--seed S] [--threads T]
  viralcast predict        --corpus FILE --embeddings FILE [--window W] [--early F] [--top P]
  viralcast influencers    --embeddings FILE [--top K]
  viralcast serve          --embeddings FILE | --backend netinf --corpus FILE
                           [--backend embed|netinf] [--addr HOST:PORT] [--workers N]
                           [--retrain-interval SECS] [--min-retrain-batch N]
                           [--ingest-capacity N] [--data-dir DIR]
                           [--fsync always|interval[:MS]|rotate]
                           [--segment-bytes N] [--access-log FILE]
                           [--shard I/N --cluster-manifest FILE]
  viralcast serve          --follow HOST:PORT [--addr HOST:PORT] [--workers N]
                           [--poll-interval SECS] [--access-log FILE]
                           [--shard I/N --cluster-manifest FILE]
  viralcast cluster-plan   --out FILE --shards HOST:PORT,HOST:PORT,…
                           [--followers HOST:PORT,…;HOST:PORT,…]
                           [--corpus FILE] [--topics K] [--backend embed|netinf]
  viralcast router         --cluster-manifest FILE [--addr HOST:PORT]
                           [--workers N] [--fanout-workers N]
                           [--probe-interval SECS] [--shard-timeout SECS]
  viralcast loadgen        --addr HOST:PORT[,HOST:PORT…] [--workers N]
                           [--duration SECS] [--warmup SECS] [--mix SPEC]
                           [--scenario flash-crowd] [--seed S] [--out FILE]
  viralcast bench-hotpath  [--nodes N] [--topics K] [--iterations I]
                           [--seed S] [--out FILE]
  viralcast bench-backends [--nodes N] [--cascades C] [--topics K] [--top K]
                           [--scan-iterations I] [--seed S] [--out FILE]
  viralcast bench-replica  [--nodes N] [--topics K] [--shards N] [--followers M]
                           [--workers N] [--duration SECS] [--seed S] [--out FILE]
  viralcast chaos          --embeddings FILE --data-dir DIR [--workers N]
                           [--backend embed|netinf] [--corpus FILE]
                           [--cycles C] [--steady SECS] [--cluster N]
                           [--followers M]
                           [--recovery-timeout SECS] [--seed S] [--out FILE]

SERVE:
  Runs the online prediction daemon: GET /healthz, GET /metrics,
  POST /v1/hazard, POST /v1/predict, GET /v1/influencers, POST /v1/ingest.
  Ingested cascades are retrained in the background every
  --retrain-interval seconds (default 5) once --min-retrain-batch
  cascades (default 1) are buffered, atomically publishing a new model
  snapshot. Stop with ctrl-c (SIGINT) or SIGTERM.

  With --data-dir DIR the daemon is durable: every acked ingest is
  write-ahead-logged before the response, each published snapshot is
  checkpointed atomically, and a restart replays the log so no acked
  cascade is lost. --fsync picks the durability/latency trade-off
  (default always); --segment-bytes sets the log rotation size
  (default 8388608).

  Every response carries an X-Request-Id (the request's own if it sent
  one, otherwise generated). --access-log FILE appends one JSON line per
  request (schema viralcast-access-log/v1): method, path, status,
  snapshot_version, latency_us and trace_id.

  --backend picks the inference backend behind the endpoints (default
  embed, the paper's embeddings; --embeddings FILE required). --backend
  netinf fits the NETINF greedy edge-inference baseline at boot from
  --corpus FILE instead. The backend id is recorded in checkpoints and
  reported by /healthz and /metrics; restarting a durable daemon with a
  different --backend than its checkpoint fails fast.

  --follow LEADER boots a read-only snapshot replica instead: the model
  (and its backend) streams from the leader's
  GET /v1/replica/snapshot endpoint, newer versions are polled every
  --poll-interval seconds (default 0.25, capped backoff while the
  leader is unreachable) and hot-swapped in, POST /v1/ingest answers
  409 with a Location redirect to the leader, and /healthz and /metrics
  report replica_lag_versions and replica_lag_ms. Model-source and
  durability flags (--embeddings, --corpus, --backend, --data-dir,
  --fsync, --segment-bytes, --retrain-interval, --min-retrain-batch)
  are rejected with --follow. With --shard/--cluster-manifest the
  follower scopes its candidate scan exactly like its leader.

CLUSTER:
  cluster-plan writes a shard manifest (schema
  viralcast-cluster-manifest/v1) assigning every embedding row to one of
  the --shards addresses: round-robin by default, community-aligned when
  --corpus is given (each shard then owns whole SLPA communities, so
  scatter answers cluster by community). Each shard is an ordinary serve
  daemon started with --shard I/N --cluster-manifest FILE: it loads the
  full model but scans only its own candidate rows. The manifest records
  one backend id for the whole cluster (--backend on cluster-plan,
  default embed); a shard or router started against a manifest whose
  backend disagrees with its own refuses to boot, so mixed-backend
  clusters cannot form.

  --followers records snapshot-replica followers per shard in the
  manifest (schema upgrades to viralcast-cluster-manifest/v2):
  ';'-separated per-shard groups of comma-separated HOST:PORT, one
  group per shard, empty groups allowed. Each follower is a serve
  daemon started with --follow LEADER (plus the same --shard flags as
  its leader); the router fans reads across leader and followers and
  keeps a shard's reads non-partial when only its leader dies, while
  ingest always routes to leaders.

  router terminates client HTTP in front of the shards named by the
  manifest: POST /v1/ingest forwards to the shard owning the cascade's
  seed node (rendezvous hashing, with failover to the survivors),
  POST /v1/predict and GET /v1/influencers scatter to every shard under
  a per-shard deadline (--shard-timeout, default 2) and merge the top-k
  answers. A background probe every --probe-interval seconds (default
  0.5) tracks shard health; when a shard is down the router degrades
  instead of failing — answers carry \"partial\": true plus
  shards_responding, never a 5xx.

LOADGEN:
  Drives a running daemon with a closed-loop weighted traffic mix
  (--mix, default predict=4,hazard=2,influencers=1,ingest=1) from
  --workers concurrent connections (default 4). After --warmup seconds
  (default 2, discarded) it measures for --duration seconds (default 10)
  and prints per-endpoint p50/p99 latency, throughput and the shed rate;
  --out FILE (default BENCH_http.json) gets the machine-readable report.
  Requests carry deterministic lg-<worker>-<seq> trace IDs, joinable
  against the daemon's access log. --addr accepts a comma-separated
  endpoint list (e.g. a router plus its shards); each request retries
  across the list.

  --scenario flash-crowd replaces the closed loop with an open-loop
  replay of a synthetic GDELT flash-crowd timeline: 24 simulated hours
  of cascade arrivals, bursting an order of magnitude over baseline
  mid-window, are compressed into --duration seconds and POSTed to
  /v1/ingest at their scheduled instants (fc-<worker>-<seq> trace IDs).
  The report gains a scenario block with baseline vs burst arrival
  rates.

BENCH-HOTPATH:
  Times the hazard candidate scan (the serving hot path) against a
  synthetic --nodes × --topics model (default 2000×8) for --iterations
  scans (default 400); --out FILE (default BENCH_hotpath.json) gets the
  report, including a determinism checksum.

BENCH-BACKENDS:
  Fits every registered backend (embed, netinf) on the same synthetic
  SBM corpus (--nodes × --cascades, default 200×300, split 2/3 train)
  and scores each on the same held-out split: fit_seconds, hit_at_top
  (next-adopter accuracy at --top, default 10) and ns_per_rate_op
  (candidate-scan cost over --scan-iterations full scans, default 50).
  --out FILE (default BENCH_backends.json) gets one scorecard per
  backend. Deterministic given --seed.

BENCH-REPLICA:
  Measures follower read scaling: the same --shards cluster (synthetic
  --nodes × --topics embeddings, default 200×4 over 2 shards) is booted
  in-process twice — leader-only, then with --followers replicas per
  shard (default 1) — and each leg is driven through a scatter-gather
  router by --workers read-only workers (default 4) for --duration
  seconds (default 5). --out FILE (default BENCH_replica.json) gets
  per-leg throughput/latency and the read_speedup ratio.

CHAOS:
  Spawns a durable serve child over --data-dir (must be empty), drives
  it with --workers ingest-heavy closed-loop workers whose cascades
  carry their sequence numbers, and SIGKILLs + restarts it --cycles
  times (default 3) after --steady seconds of load each (default 2).
  After a final kill it replays the data dir in-process: every acked
  ingest must be recovered, any 5xx after recovery fails the run, and
  each restart must answer /healthz within --recovery-timeout seconds
  (default 30). --out FILE (default BENCH_chaos.json) gets kill cycles,
  recovery p50/p99, acked-vs-recovered counts, shed rate, and the
  steady-vs-disrupted p99 degradation ratio.

  --cluster N (N ≥ 2) aims the kill loop at a sharded cluster instead:
  N shard daemons under a round-robin manifest behind a router child,
  load driven through the router, one seeded-random shard SIGKILLed per
  cycle. While the shard is down the router must answer /v1/predict
  with HTTP 200 and \"partial\": true — any 5xx fails the run — and the
  final durability replay unions every shard's data dir. The report
  gains partial_responses and non_partial_5xx.

  --followers M (with --cluster) also boots M serve --follow replicas
  per shard leader under a v2 manifest and *strengthens* the assertion:
  while a leader is down its followers must keep reads fully answered —
  every probe must stay \"partial\": false, and any degraded read fails
  the run (reported as degraded_reads).

OBSERVABILITY (all commands):
  --log-level L     stderr logging: off|error|warn|info|debug|trace (default info)
  --trace FILE      write the structured event stream as JSONL
  --metrics-out FILE  write the JSON run report (span timings + metrics)
  --threads T       bound the rayon worker pool";

/// One accepted flag: name and whether it takes a value.
type FlagSpec = (&'static str, bool);

/// Flags every subcommand accepts.
const COMMON_FLAGS: [FlagSpec; 4] = [
    ("threads", true),
    ("log-level", true),
    ("metrics-out", true),
    ("trace", true),
];

/// The per-command flag vocabulary; `None` for unknown commands.
fn command_flags(command: &str) -> Option<Vec<FlagSpec>> {
    let own: &[FlagSpec] = match command {
        "simulate-sbm" => &[
            ("out", true),
            ("nodes", true),
            ("cascades", true),
            ("seed", true),
            ("local", false),
        ],
        "simulate-gdelt" => &[
            ("out", true),
            ("sites", true),
            ("events", true),
            ("seed", true),
        ],
        "infer" => &[
            ("corpus", true),
            ("out", true),
            ("topics", true),
            ("seed", true),
        ],
        "predict" => &[
            ("corpus", true),
            ("embeddings", true),
            ("window", true),
            ("early", true),
            ("top", true),
        ],
        "influencers" => &[("embeddings", true), ("top", true)],
        "serve" => &[
            ("embeddings", true),
            ("backend", true),
            ("corpus", true),
            ("addr", true),
            ("workers", true),
            ("retrain-interval", true),
            ("min-retrain-batch", true),
            ("ingest-capacity", true),
            ("data-dir", true),
            ("fsync", true),
            ("segment-bytes", true),
            ("access-log", true),
            ("shard", true),
            ("cluster-manifest", true),
            ("follow", true),
            ("poll-interval", true),
        ],
        "cluster-plan" => &[
            ("out", true),
            ("shards", true),
            ("followers", true),
            ("corpus", true),
            ("topics", true),
            ("backend", true),
        ],
        "router" => &[
            ("cluster-manifest", true),
            ("addr", true),
            ("workers", true),
            ("fanout-workers", true),
            ("probe-interval", true),
            ("shard-timeout", true),
        ],
        "loadgen" => &[
            ("addr", true),
            ("workers", true),
            ("duration", true),
            ("warmup", true),
            ("mix", true),
            ("scenario", true),
            ("seed", true),
            ("out", true),
        ],
        "bench-hotpath" => &[
            ("nodes", true),
            ("topics", true),
            ("iterations", true),
            ("seed", true),
            ("out", true),
        ],
        "bench-backends" => &[
            ("nodes", true),
            ("cascades", true),
            ("topics", true),
            ("top", true),
            ("scan-iterations", true),
            ("seed", true),
            ("out", true),
        ],
        "bench-replica" => &[
            ("nodes", true),
            ("topics", true),
            ("shards", true),
            ("followers", true),
            ("workers", true),
            ("duration", true),
            ("seed", true),
            ("out", true),
        ],
        "chaos" => &[
            ("embeddings", true),
            ("backend", true),
            ("corpus", true),
            ("data-dir", true),
            ("workers", true),
            ("cluster", true),
            ("followers", true),
            ("cycles", true),
            ("steady", true),
            ("recovery-timeout", true),
            ("seed", true),
            ("out", true),
        ],
        _ => return None,
    };
    Some(own.iter().chain(COMMON_FLAGS.iter()).copied().collect())
}

/// Run-report attributes a subcommand wants in the output JSON.
type Attrs = Vec<(String, JsonValue)>;

fn simulate_sbm(flags: &Flags) -> Result<Attrs, CliError> {
    let out = flags.require_path("out")?;
    let nodes = flags.usize("nodes", 2_000)?;
    let cascades = flags.usize("cascades", 3_000)?;
    let seed = flags.u64("seed", 1)?;
    let mut config = SbmExperimentConfig {
        sbm: SbmConfig {
            nodes,
            community_size: 40,
            intra_prob: 0.2,
            inter_prob: 0.001,
        },
        cascades,
        ..SbmExperimentConfig::default()
    };
    if flags.has("local") {
        config.planted = PlantedConfig {
            on_topic: 1.2,
            off_topic: 0.02,
            jitter: 0.3,
        };
    }
    let experiment = {
        let _span = Span::enter("simulate");
        SbmExperiment::build(&config, seed)
    };
    // Persist the full corpus (train ∥ test in order).
    let mut all = experiment.train().clone();
    for c in experiment.test().cascades() {
        all.push(c.clone());
    }
    {
        let _span = Span::enter("save_corpus");
        store::save(&all, &out).map_err(runtime_err)?;
    }
    println!(
        "wrote {} cascades over {nodes} nodes to {}",
        all.len(),
        out.display()
    );
    Ok(vec![
        ("nodes".into(), nodes.into()),
        ("cascades".into(), all.len().into()),
        ("seed".into(), seed.into()),
    ])
}

fn simulate_gdelt(flags: &Flags) -> Result<Attrs, CliError> {
    let out = flags.require_path("out")?;
    let sites = flags.usize("sites", 2_000)?;
    let events = flags.usize("events", 2_600)?;
    let seed = flags.u64("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let table = {
        let _span = Span::enter("simulate");
        let world = GdeltWorld::generate(
            GdeltConfig {
                sites,
                ..GdeltConfig::default()
            },
            &mut rng,
        );
        world.simulate_events(events, &mut rng)
    };
    {
        let _span = Span::enter("save_corpus");
        table.save_csv(&out).map_err(runtime_err)?;
    }
    println!(
        "wrote {} mentions of {events} events across {sites} sites to {}",
        table.mentions().len(),
        out.display()
    );
    Ok(vec![
        ("sites".into(), sites.into()),
        ("events".into(), events.into()),
        ("mentions".into(), table.mentions().len().into()),
    ])
}

fn infer_cmd(flags: &Flags, recorder: &Recorder) -> Result<Attrs, CliError> {
    let corpus_path = flags.require_path("corpus")?;
    let out = flags.require_path("out")?;
    let topics = flags.usize("topics", 8)?;
    let corpus = load_corpus(&corpus_path)?;
    println!(
        "inferring {topics}-topic embeddings from {} cascades over {} nodes…",
        corpus.len(),
        corpus.node_count()
    );
    let start = std::time::Instant::now();
    let outcome = infer_embeddings(
        &corpus,
        &InferOptions {
            topics,
            ..InferOptions::default()
        },
    );
    // The pipeline timed itself under its own recorder; graft its tree
    // so the run report nests cooccurrence/slpa/hierarchical here.
    recorder.attach_child(outcome.timings.clone());
    println!(
        "…done in {:.1}s ({} communities, final LL {:.1})",
        start.elapsed().as_secs_f64(),
        outcome.partition.community_count(),
        outcome.report.final_ll()
    );
    {
        let _span = Span::enter("save_embeddings");
        outcome.embeddings.save_json(&out).map_err(runtime_err)?;
    }
    println!("embeddings saved to {}", out.display());

    // Per-level detail including the per-epoch objective trajectory.
    let levels: Vec<JsonValue> = outcome
        .report
        .levels
        .iter()
        .map(|level| {
            JsonValue::obj(vec![
                ("level", level.level.into()),
                ("groups", level.groups.into()),
                ("subcascades", level.subcascades.into()),
                ("epochs", level.epochs.into()),
                ("final_ll", level.final_ll.into()),
                ("ll_trajectory", level_trajectory(level).into()),
            ])
        })
        .collect();
    Ok(vec![
        ("nodes".into(), corpus.node_count().into()),
        ("cascades".into(), corpus.len().into()),
        ("topics".into(), topics.into()),
        (
            "communities".into(),
            outcome.partition.community_count().into(),
        ),
        ("final_ll".into(), outcome.report.final_ll().into()),
        ("levels".into(), JsonValue::Arr(levels)),
    ])
}

/// The level's objective per epoch, summed over its groups. Groups
/// converge at different epochs; a finished group contributes its final
/// objective to later epochs so the sum stays comparable across the
/// whole trajectory.
fn level_trajectory(level: &viralcast::embed::LevelSummary) -> Vec<f64> {
    let len = level
        .group_reports
        .iter()
        .map(|g| g.ll_history.len())
        .max()
        .unwrap_or(0);
    (0..len)
        .map(|epoch| {
            level
                .group_reports
                .iter()
                .filter_map(|g| g.ll_history.get(epoch).or(g.ll_history.last()))
                .sum()
        })
        .collect()
}

fn predict_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    let corpus_path = flags.require_path("corpus")?;
    let emb_path = flags.require_path("embeddings")?;
    let window = flags.f64("window", 1.0)?;
    let early = flags.f64("early", 2.0 / 7.0)?;
    let top = flags.f64("top", 0.2)?;
    let corpus = load_corpus(&corpus_path)?;
    let embeddings = Embeddings::load_json(&emb_path).map_err(runtime_err)?;
    if embeddings.node_count() < corpus.node_count() {
        return Err(runtime_err(format!(
            "embeddings cover {} nodes but the corpus references {}",
            embeddings.node_count(),
            corpus.node_count()
        )));
    }
    let task = PredictionTask {
        window,
        early_fraction: early,
        ..PredictionTask::default()
    };
    let sweep = {
        let _span = Span::enter("predict");
        let dataset = extract_dataset(&embeddings, &corpus, &task);
        let max = dataset.sizes.iter().copied().max().unwrap_or(0);
        let mut thresholds: Vec<usize> = (0..max).step_by((max / 10).max(1)).collect();
        thresholds.push(dataset.top_fraction_threshold(top));
        thresholds.sort_unstable();
        thresholds.dedup();
        threshold_sweep(&dataset, &thresholds, &task)
    };
    println!(
        "{:>8} {:>8} {:>7} {:>7} {:>7}",
        "size >", "#viral", "F1", "prec", "recall"
    );
    let mut best_f1 = 0.0f64;
    for p in &sweep {
        println!(
            "{:>8} {:>8} {:>7.3} {:>7.3} {:>7.3}",
            p.threshold, p.positives, p.f1, p.precision, p.recall
        );
        best_f1 = best_f1.max(p.f1);
    }
    Ok(vec![
        ("cascades".into(), corpus.len().into()),
        ("window".into(), window.into()),
        ("best_f1".into(), best_f1.into()),
    ])
}

fn influencers_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    let emb_path = flags.require_path("embeddings")?;
    let top = flags.usize("top", 10)?;
    let embeddings = Embeddings::load_json(&emb_path).map_err(runtime_err)?;
    println!("{:>6} {:>8} {:>10}", "rank", "node", "‖A‖");
    let ranked = top_influencers(&embeddings, top);
    for (i, r) in ranked.iter().enumerate() {
        println!("{:>6} {:>8} {:>10.4}", i + 1, r.node.0, r.score);
    }
    Ok(vec![
        ("nodes".into(), embeddings.node_count().into()),
        ("top".into(), ranked.len().into()),
    ])
}

/// Parses `--shard I/N` (`None` when absent).
fn parse_shard_flag(flags: &Flags) -> Result<Option<(usize, usize)>, CliError> {
    match flags.get("shard") {
        None => Ok(None),
        Some(raw) => {
            let parsed = raw
                .split_once('/')
                .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
            match parsed {
                Some((i, n)) if n >= 1 && i < n => Ok(Some((i, n))),
                _ => Err(usage_err(format!(
                    "malformed --shard {raw:?} (expected I/N with I < N)"
                ))),
            }
        }
    }
}

fn serve_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::model::{CascadeModel, EmbeddingBackend, NetInfBackend, NetInfConfig, BACKENDS};
    use viralcast::serve;

    if flags.has("follow") {
        return serve_follow_cmd(flags);
    }
    if flags.has("poll-interval") {
        return Err(usage_err(
            "--poll-interval tunes the replication poll; pass --follow LEADER to enable it",
        ));
    }
    let backend = flags.get("backend").map_or(EmbeddingBackend::ID, |b| b);
    if !BACKENDS.contains(&backend) {
        return Err(usage_err(format!(
            "unknown --backend {backend:?} (known backends: {})",
            BACKENDS.join(", ")
        )));
    }
    let shard_index = parse_shard_flag(flags)?;
    let manifest_path = flags.opt_path("cluster-manifest");
    if shard_index.is_some() != manifest_path.is_some() {
        return Err(usage_err(
            "--shard and --cluster-manifest must be given together",
        ));
    }
    let cluster = match (manifest_path, shard_index) {
        (Some(path), Some((i, n))) => {
            let manifest = viralcast::cluster::ClusterManifest::load(&path).map_err(runtime_err)?;
            if manifest.backend != backend {
                return Err(runtime_err(format!(
                    "the cluster manifest plans a {:?} cluster but this shard \
                     was started with --backend {backend:?}",
                    manifest.backend
                )));
            }
            if manifest.shard_count() != n {
                return Err(runtime_err(format!(
                    "--shard {i}/{n} disagrees with the manifest's {} shard(s)",
                    manifest.shard_count()
                )));
            }
            Some((manifest, i, n))
        }
        _ => None,
    };
    let addr = match (flags.get("addr"), &cluster) {
        (Some(a), _) => a.to_string(),
        (None, Some((manifest, i, _))) => manifest.addr_of(*i).to_string(),
        (None, None) => "127.0.0.1:8080".to_string(),
    };
    let workers = flags.usize("workers", 4)?;
    let retrain_interval = flags.f64("retrain-interval", 5.0)?;
    let min_batch = flags.usize("min-retrain-batch", 1)?;
    let ingest_capacity = flags.usize("ingest-capacity", 4096)?;
    if !retrain_interval.is_finite() || retrain_interval <= 0.0 {
        return Err(usage_err(format!(
            "--retrain-interval must be a positive number of seconds \
             (got {retrain_interval})"
        )));
    }
    let data_dir = flags.opt_path("data-dir");
    let access_log = flags.opt_path("access-log");
    let wal_defaults = viralcast::store::WalOptions::default();
    let fsync = match flags.get("fsync") {
        Some(raw) => viralcast::store::FsyncPolicy::parse(raw)
            .map_err(|e| usage_err(format!("--fsync: {e}")))?,
        None => wal_defaults.fsync,
    };
    let segment_bytes = flags.u64("segment-bytes", wal_defaults.segment_bytes)?;
    if segment_bytes == 0 {
        return Err(usage_err("--segment-bytes must be positive"));
    }
    if data_dir.is_none() && (flags.has("fsync") || flags.has("segment-bytes")) {
        return Err(usage_err(
            "--fsync/--segment-bytes tune the durable log; pass --data-dir DIR to enable it",
        ));
    }

    // Boot model: embed loads a trained embedding file; netinf fits its
    // sparse greedy graph from a cascade corpus right here at boot.
    let model: std::sync::Arc<dyn CascadeModel> = match backend {
        EmbeddingBackend::ID => {
            if flags.has("corpus") {
                return Err(usage_err(
                    "--corpus is only meaningful with --backend netinf \
                     (the embed backend loads --embeddings)",
                ));
            }
            let emb_path = flags.require_path("embeddings")?;
            let embeddings = Embeddings::load_json(&emb_path).map_err(runtime_err)?;
            std::sync::Arc::new(EmbeddingBackend::new(embeddings))
        }
        NetInfBackend::ID => {
            if flags.has("embeddings") {
                return Err(usage_err(
                    "--embeddings is only meaningful with --backend embed \
                     (the netinf backend fits from --corpus)",
                ));
            }
            let corpus_path = flags.opt_path("corpus").ok_or_else(|| {
                usage_err("--backend netinf needs --corpus FILE (cascades to fit at boot)")
            })?;
            let corpus = load_corpus(&corpus_path).map_err(runtime_err)?;
            let fitted = {
                let _span = Span::enter("netinf_fit");
                NetInfBackend::fit(&corpus, NetInfConfig::default())
            };
            std::sync::Arc::new(fitted)
        }
        _ => unreachable!("validated against BACKENDS above"),
    };
    let (nodes, topics) = (model.node_count(), model.topic_count());
    let shard_block = match &cluster {
        Some((manifest, i, _)) => Some(manifest.row_block(*i, nodes).map_err(runtime_err)?),
        None => None,
    };

    // The daemon's trainer folds fresh cascades back in through the
    // backend's own incremental update.
    let retrain: serve::RetrainFn = Box::new(|current, fresh| current.update(fresh));

    let config = serve::ServeConfig {
        addr,
        workers,
        trainer: serve::TrainerConfig {
            interval: std::time::Duration::from_secs_f64(retrain_interval),
            min_batch,
        },
        ingest_capacity,
        data_dir: data_dir.clone(),
        wal: viralcast::store::WalOptions {
            segment_bytes,
            fsync,
        },
        access_log: access_log.clone(),
        shard: shard_block.clone(),
        ..serve::ServeConfig::default()
    };
    let handle = serve::start(model, retrain, config).map_err(runtime_err)?;
    let bound = handle.local_addr();
    println!(
        "viralcast-serve listening on http://{bound} \
         ({backend} backend, {nodes} nodes × {topics} topics)"
    );
    if let (Some((_, i, n)), Some(block)) = (&cluster, &shard_block) {
        println!(
            "cluster shard {i}/{n}: scanning {} of {nodes} candidate rows",
            block.owned_count()
        );
    }
    if let Some(path) = &access_log {
        println!(
            "access log (one JSON line per request) at {}",
            path.display()
        );
    }
    let recovery = handle.recovery();
    if let (Some(dir), Some(r)) = (&data_dir, &recovery) {
        println!(
            "durable in {}: replayed {} WAL record(s), {} pending for retraining, \
             resuming snapshot v{}{}",
            dir.display(),
            r.replayed,
            r.pending,
            r.snapshot_version,
            if r.truncated_bytes > 0 {
                format!(" ({} torn byte(s) truncated)", r.truncated_bytes)
            } else {
                String::new()
            },
        );
    }
    println!("press ctrl-c to stop");

    let shutdown = serve::install_ctrlc();
    while !shutdown.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutting down…");
    let final_version = handle.snapshots().version();
    handle.shutdown();
    println!("stopped at snapshot v{final_version}");
    let mut attrs: Attrs = vec![
        ("addr".into(), bound.to_string().into()),
        ("backend".into(), backend.into()),
        ("nodes".into(), nodes.into()),
        ("topics".into(), topics.into()),
        ("final_snapshot_version".into(), final_version.into()),
    ];
    if let (Some((_, i, n)), Some(block)) = (&cluster, &shard_block) {
        attrs.push(("shard".into(), format!("{i}/{n}").into()));
        attrs.push(("shard_rows".into(), block.owned_count().into()));
    }
    if let Some(r) = recovery {
        attrs.push(("replayed_records".into(), r.replayed.into()));
        attrs.push(("recovered_pending".into(), r.pending.into()));
    }
    Ok(attrs)
}

/// `serve --follow LEADER`: a read-only follower that boots from the
/// leader's snapshot stream and hot-swaps newer versions as they
/// publish, instead of loading a model of its own.
fn serve_follow_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::replica;
    use viralcast::serve;

    let leader_raw = flags.get("follow").expect("caller checked --follow");
    let leader: std::net::SocketAddr = leader_raw.parse().map_err(|_| {
        usage_err(format!(
            "malformed --follow address {leader_raw:?} (expected HOST:PORT)"
        ))
    })?;
    for (name, why) in [
        ("embeddings", "the model streams from the leader"),
        ("corpus", "the model streams from the leader"),
        ("backend", "the backend id comes from the leader's snapshot"),
        (
            "data-dir",
            "durability lives on the leader; followers are in-memory",
        ),
        (
            "fsync",
            "durability lives on the leader; followers are in-memory",
        ),
        (
            "segment-bytes",
            "durability lives on the leader; followers are in-memory",
        ),
        (
            "retrain-interval",
            "followers adopt leader snapshots instead of training",
        ),
        (
            "min-retrain-batch",
            "followers adopt leader snapshots instead of training",
        ),
    ] {
        if flags.has(name) {
            return Err(usage_err(format!(
                "--{name} is meaningless with --follow ({why})"
            )));
        }
    }
    let defaults = replica::FollowerConfig::new(leader);
    let poll_interval = flags.f64("poll-interval", defaults.poll_interval.as_secs_f64())?;
    if !poll_interval.is_finite() || poll_interval <= 0.0 {
        return Err(usage_err(
            "--poll-interval must be a positive number of seconds",
        ));
    }

    // The shard row block needs the model's node count before the serve
    // stack exists, so fetch the leader's snapshot shape up front
    // (retrying — the leader may still be booting).
    let boot = {
        let deadline = std::time::Instant::now() + defaults.boot_timeout;
        let mut wait = std::time::Duration::from_millis(50);
        loop {
            match replica::poll_snapshot(&leader, None, defaults.fetch_timeout) {
                Ok(replica::Poll::Snapshot(snap)) => break snap,
                Ok(replica::Poll::NotModified { version }) => {
                    return Err(runtime_err(format!(
                        "leader {leader} answered 304 (v{version}) to an \
                         unconditional snapshot fetch"
                    )));
                }
                Err(e) => {
                    if std::time::Instant::now() + wait > deadline {
                        return Err(runtime_err(format!(
                            "no boot snapshot from leader {leader} within {:.0}s: {e}",
                            defaults.boot_timeout.as_secs_f64()
                        )));
                    }
                    std::thread::sleep(wait);
                    wait = (wait * 2).min(std::time::Duration::from_secs(2));
                }
            }
        }
    };
    let (nodes, topics) = (boot.model.node_count(), boot.model.topic_count());

    let shard_index = parse_shard_flag(flags)?;
    let manifest_path = flags.opt_path("cluster-manifest");
    if shard_index.is_some() != manifest_path.is_some() {
        return Err(usage_err(
            "--shard and --cluster-manifest must be given together",
        ));
    }
    let cluster = match (manifest_path, shard_index) {
        (Some(path), Some((i, n))) => {
            let manifest = viralcast::cluster::ClusterManifest::load(&path).map_err(runtime_err)?;
            if manifest.backend != boot.backend {
                return Err(runtime_err(format!(
                    "the cluster manifest plans a {:?} cluster but the leader \
                     streams {:?} snapshots",
                    manifest.backend, boot.backend
                )));
            }
            if manifest.shard_count() != n {
                return Err(runtime_err(format!(
                    "--shard {i}/{n} disagrees with the manifest's {} shard(s)",
                    manifest.shard_count()
                )));
            }
            Some((manifest, i, n))
        }
        _ => None,
    };
    let shard_block = match &cluster {
        Some((manifest, i, _)) => Some(manifest.row_block(*i, nodes).map_err(runtime_err)?),
        None => None,
    };

    let config = replica::FollowerConfig {
        poll_interval: std::time::Duration::from_secs_f64(poll_interval),
        serve: serve::ServeConfig {
            addr: flags.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
            workers: flags.usize("workers", 4)?,
            ingest_capacity: flags.usize("ingest-capacity", 4096)?,
            access_log: flags.opt_path("access-log"),
            shard: shard_block.clone(),
            ..serve::ServeConfig::default()
        },
        ..defaults
    };
    let handle = replica::start_follower(config).map_err(runtime_err)?;
    let bound = handle.local_addr();
    println!(
        "viralcast-serve listening on http://{bound} \
         ({} backend, {nodes} nodes × {topics} topics)",
        boot.backend
    );
    println!(
        "following leader http://{leader}: booted from snapshot v{}, \
         polling every {poll_interval:.2}s (writes are refused with a leader redirect)",
        boot.version
    );
    if let (Some((_, i, n)), Some(block)) = (&cluster, &shard_block) {
        println!(
            "cluster shard {i}/{n} (follower): scanning {} of {nodes} candidate rows",
            block.owned_count()
        );
    }
    println!("press ctrl-c to stop");

    let shutdown = serve::install_ctrlc();
    while !shutdown.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutting down…");
    let status = handle.status();
    let applied = status.applied_version();
    let lag = status.lag_versions();
    handle.shutdown();
    println!("stopped at applied snapshot v{applied} ({lag} version(s) behind the leader)");
    let mut attrs: Attrs = vec![
        ("addr".into(), bound.to_string().into()),
        ("backend".into(), boot.backend.clone().into()),
        ("nodes".into(), nodes.into()),
        ("topics".into(), topics.into()),
        ("leader".into(), leader.to_string().into()),
        ("boot_snapshot_version".into(), boot.version.into()),
        ("applied_snapshot_version".into(), applied.into()),
        ("replica_lag_versions".into(), lag.into()),
    ];
    if let (Some((_, i, n)), Some(block)) = (&cluster, &shard_block) {
        attrs.push(("shard".into(), format!("{i}/{n}").into()));
        attrs.push(("shard_rows".into(), block.owned_count().into()));
    }
    Ok(attrs)
}

fn cluster_plan_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::cluster;

    let out = flags.require_path("out")?;
    let shards_raw = flags
        .get("shards")
        .ok_or_else(|| usage_err("missing required flag --shards"))?;
    let addrs = shards_raw
        .split(',')
        .map(|part| {
            part.trim().parse::<std::net::SocketAddr>().map_err(|_| {
                usage_err(format!(
                    "malformed shard address {part:?} in --shards (expected HOST:PORT)"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let backend = flags
        .get("backend")
        .map_or(viralcast::model::EmbeddingBackend::ID, |b| b);
    let manifest = match flags.opt_path("corpus") {
        Some(corpus_path) => {
            let topics = flags.usize("topics", 8)?;
            let corpus = load_corpus(&corpus_path)?;
            let options = InferOptions {
                topics,
                ..InferOptions::default()
            };
            let partition = {
                let _span = Span::enter("detect_communities");
                viralcast::pipeline::detect_communities(&corpus, &options)
            };
            println!(
                "aligning {} node(s) across {} communities onto {} shard(s)…",
                corpus.node_count(),
                partition.community_count(),
                addrs.len()
            );
            let membership = cluster::placement::community_aligned(&partition, addrs.len());
            cluster::ClusterManifest::with_membership(&addrs, membership).map_err(runtime_err)?
        }
        None => cluster::ClusterManifest::round_robin(&addrs).map_err(runtime_err)?,
    };
    let manifest = manifest
        .with_backend(backend)
        .map_err(|e| usage_err(format!("--backend: {e}")))?;
    // ';'-separated per-shard groups of comma-separated follower
    // addresses; a group may be empty (that shard runs leader-only).
    let manifest = match flags.get("followers") {
        Some(raw) => {
            let groups = raw
                .split(';')
                .map(|group| {
                    group
                        .split(',')
                        .map(str::trim)
                        .filter(|part| !part.is_empty())
                        .map(|part| {
                            part.parse::<std::net::SocketAddr>().map_err(|_| {
                                usage_err(format!(
                                    "malformed follower address {part:?} in --followers \
                                     (expected HOST:PORT)"
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            manifest
                .with_followers(groups)
                .map_err(|e| usage_err(format!("--followers: {e}")))?
        }
        None => manifest,
    };
    manifest.save(&out).map_err(runtime_err)?;

    let placement = match &manifest.placement {
        cluster::Placement::RoundRobin => "round-robin",
        cluster::Placement::Membership(_) => "community-aligned",
    };
    println!(
        "wrote {placement} manifest for {} {} shard(s) to {}",
        manifest.shard_count(),
        manifest.backend,
        out.display()
    );
    let mut followers_total = 0usize;
    for i in 0..manifest.shard_count() {
        let followers = manifest.followers_of(i);
        followers_total += followers.len();
        if followers.is_empty() {
            println!("  shard {i}: {}", manifest.addr_of(i));
        } else {
            let list: Vec<String> = followers.iter().map(|a| a.to_string()).collect();
            println!(
                "  shard {i}: {} (followers: {})",
                manifest.addr_of(i),
                list.join(", ")
            );
        }
    }
    Ok(vec![
        ("shards".into(), manifest.shard_count().into()),
        ("followers".into(), followers_total.into()),
        ("placement".into(), placement.into()),
        ("backend".into(), manifest.backend.clone().into()),
    ])
}

fn router_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::cluster;

    let manifest_path = flags.require_path("cluster-manifest")?;
    let manifest = cluster::ClusterManifest::load(&manifest_path).map_err(runtime_err)?;
    let defaults = cluster::RouterConfig::default();
    let probe_interval = flags.f64("probe-interval", defaults.probe_interval.as_secs_f64())?;
    let shard_timeout = flags.f64("shard-timeout", defaults.shard_timeout.as_secs_f64())?;
    if !probe_interval.is_finite() || probe_interval <= 0.0 {
        return Err(usage_err(
            "--probe-interval must be a positive number of seconds",
        ));
    }
    if !shard_timeout.is_finite() || shard_timeout <= 0.0 {
        return Err(usage_err(
            "--shard-timeout must be a positive number of seconds",
        ));
    }
    let config = cluster::RouterConfig {
        addr: flags.get("addr").unwrap_or(&defaults.addr).to_string(),
        workers: flags.usize("workers", defaults.workers)?,
        fanout_workers: flags.usize("fanout-workers", defaults.fanout_workers)?,
        probe_interval: std::time::Duration::from_secs_f64(probe_interval),
        shard_timeout: std::time::Duration::from_secs_f64(shard_timeout),
        ..defaults
    };
    if config.workers == 0 || config.fanout_workers == 0 {
        return Err(usage_err("--workers and --fanout-workers must be positive"));
    }

    let shards = manifest.shard_count();
    let handle = cluster::start_router(manifest, config).map_err(runtime_err)?;
    let bound = handle.local_addr();
    println!("viralcast-router listening on http://{bound} fronting {shards} shard(s)");
    println!("press ctrl-c to stop");

    let shutdown = viralcast::serve::install_ctrlc();
    while !shutdown.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutting down…");
    handle.shutdown();
    println!("stopped");
    Ok(vec![
        ("addr".into(), bound.to_string().into()),
        ("shards".into(), shards.into()),
    ])
}

fn loadgen_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::loadgen;

    let addr_raw = flags
        .get("addr")
        .ok_or_else(|| usage_err("missing required flag --addr"))?;
    let endpoints = viralcast::serve::client::Endpoints::parse(addr_raw)
        .map_err(|e| usage_err(format!("--addr: {e}")))?;
    let scenario = match flags.get("scenario") {
        Some(raw) => Some(
            loadgen::LoadScenario::parse(raw).map_err(|e| usage_err(format!("--scenario: {e}")))?,
        ),
        None => None,
    };
    let workers = flags.usize("workers", 4)?;
    let duration = flags.f64("duration", 10.0)?;
    let warmup = flags.f64("warmup", 2.0)?;
    if !duration.is_finite() || duration <= 0.0 {
        return Err(usage_err("--duration must be a positive number of seconds"));
    }
    if !warmup.is_finite() || warmup < 0.0 {
        return Err(usage_err(
            "--warmup must be a non-negative number of seconds",
        ));
    }
    let mix_raw = flags
        .get("mix")
        .unwrap_or("predict=4,hazard=2,influencers=1,ingest=1");
    let mix = loadgen::parse_mix(mix_raw).map_err(|e| usage_err(format!("--mix: {e}")))?;
    let seed = flags.u64("seed", 1)?;
    let out = flags
        .opt_path("out")
        .unwrap_or_else(|| PathBuf::from("BENCH_http.json"));

    let config = loadgen::LoadgenConfig {
        endpoints,
        workers,
        duration: std::time::Duration::from_secs_f64(duration),
        warmup: std::time::Duration::from_secs_f64(warmup),
        mix,
        seed,
        scenario,
    };
    match scenario {
        Some(s) => println!(
            "replaying the {} scenario against http://{addr_raw} with \
             {workers} worker(s) over {duration:.1}s…",
            s.label()
        ),
        None => println!(
            "driving http://{addr_raw} with {workers} worker(s), mix {mix_raw}: \
             {warmup:.1}s warmup then {duration:.1}s measured…"
        ),
    }
    let summary = {
        let _span = Span::enter("loadgen");
        loadgen::run(&config).map_err(runtime_err)?
    };

    println!(
        "{:>12} {:>9} {:>9} {:>9} {:>9}",
        "endpoint", "requests", "p50 ms", "p99 ms", "max ms"
    );
    let cell = |v: Option<f64>| v.map_or("-".to_string(), |ms| format!("{ms:.2}"));
    for e in &summary.endpoints {
        println!(
            "{:>12} {:>9} {:>9} {:>9} {:>9}",
            e.label,
            e.requests,
            cell(e.p50_ms),
            cell(e.p99_ms),
            cell(e.max_ms)
        );
    }
    println!(
        "{:.1} req/s over {:.1}s — {} ok, {} shed (shed rate {:.3}), \
         {} other 4xx, {} 5xx, {} io errors",
        summary.throughput_rps,
        summary.measured_seconds,
        summary.http_2xx,
        summary.http_429,
        summary.shed_rate,
        summary.http_4xx,
        summary.http_5xx,
        summary.io_errors
    );
    if let Some(s) = &summary.scenario {
        println!(
            "scenario {}: {} scheduled arrival(s), baseline {:.1}/s vs \
             burst {:.1}/s (burst {:.1}s–{:.1}s)",
            s.name, s.arrivals, s.baseline_rps, s.burst_rps, s.burst_start_s, s.burst_end_s
        );
    }

    let mut attrs: Attrs = vec![
        ("addr".into(), addr_raw.into()),
        ("workers".into(), workers.into()),
        ("duration_s".into(), duration.into()),
        ("warmup_s".into(), warmup.into()),
        ("mix".into(), mix_raw.into()),
        ("seed".into(), seed.into()),
    ];
    attrs.extend(summary.attrs());
    save_bench_report("loadgen", &attrs, &out)?;
    println!("bench report written to {}", out.display());
    Ok(attrs)
}

fn bench_hotpath_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::hotpath;

    let defaults = hotpath::HotpathConfig::default();
    let config = hotpath::HotpathConfig {
        nodes: flags.usize("nodes", defaults.nodes)?,
        topics: flags.usize("topics", defaults.topics)?,
        iterations: flags.usize("iterations", defaults.iterations)?,
        seed: flags.u64("seed", defaults.seed)?,
    };
    let out = flags
        .opt_path("out")
        .unwrap_or_else(|| PathBuf::from("BENCH_hotpath.json"));
    println!(
        "scanning {} candidates × {} topics, {} iterations…",
        config.nodes, config.topics, config.iterations
    );
    let summary = {
        let _span = Span::enter("bench_hotpath");
        hotpath::run(&config).map_err(usage_err)?
    };
    println!(
        "{:.1} ns per rate op — scan p50 {:.1} µs, p99 {:.1} µs (checksum {:.3})",
        summary.ns_per_rate_op, summary.scan_p50_us, summary.scan_p99_us, summary.checksum
    );
    let attrs: Attrs = summary.attrs();
    save_bench_report("bench-hotpath", &attrs, &out)?;
    println!("bench report written to {}", out.display());
    Ok(attrs)
}

fn bench_backends_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::backends;

    let defaults = backends::BackendsBenchConfig::default();
    let config = backends::BackendsBenchConfig {
        nodes: flags.usize("nodes", defaults.nodes)?,
        cascades: flags.usize("cascades", defaults.cascades)?,
        topics: flags.usize("topics", defaults.topics)?,
        top: flags.usize("top", defaults.top)?,
        scan_iterations: flags.usize("scan-iterations", defaults.scan_iterations)?,
        seed: flags.u64("seed", defaults.seed)?,
    };
    let out = flags
        .opt_path("out")
        .unwrap_or_else(|| PathBuf::from("BENCH_backends.json"));
    println!(
        "fitting every backend on {} nodes × {} cascades, \
         scoring next-adopter hit@{}…",
        config.nodes, config.cascades, config.top
    );
    let summary = {
        let _span = Span::enter("bench_backends");
        backends::run(&config).map_err(usage_err)?
    };
    for report in &summary.backends {
        println!(
            "{:>7}: fit {:.3}s, hit@{} {:.3} ({}/{}), {:.1} ns per rate op",
            report.backend,
            report.fit_seconds,
            summary.top,
            report.hit_at_top,
            report.hits,
            report.evaluated,
            report.ns_per_rate_op
        );
    }
    let attrs: Attrs = summary.attrs();
    save_bench_report("bench-backends", &attrs, &out)?;
    println!("bench report written to {}", out.display());
    Ok(attrs)
}

fn bench_replica_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::replica_bench;

    let defaults = replica_bench::ReplicaBenchConfig::default();
    let duration = flags.f64("duration", defaults.duration.as_secs_f64())?;
    if !duration.is_finite() || duration <= 0.0 {
        return Err(usage_err("--duration must be a positive number of seconds"));
    }
    let config = replica_bench::ReplicaBenchConfig {
        nodes: flags.usize("nodes", defaults.nodes)?,
        topics: flags.usize("topics", defaults.topics)?,
        shards: flags.usize("shards", defaults.shards)?,
        followers: flags.usize("followers", defaults.followers)?,
        workers: flags.usize("workers", defaults.workers)?,
        duration: std::time::Duration::from_secs_f64(duration),
        seed: flags.u64("seed", defaults.seed)?,
    };
    let out = flags
        .opt_path("out")
        .unwrap_or_else(|| PathBuf::from("BENCH_replica.json"));
    println!(
        "read scaling over {} shard(s): {} worker(s) for {duration:.1}s per leg, \
         0 vs {} follower(s) per shard…",
        config.shards, config.workers, config.followers
    );
    let summary = {
        let _span = Span::enter("bench_replica");
        replica_bench::run(&config).map_err(usage_err)?
    };
    let cell = |v: Option<f64>| v.map_or("-".to_string(), |ms| format!("{ms:.2}"));
    for leg in &summary.legs {
        println!(
            "{} follower(s)/shard: {:.1} req/s ({} reads, {} errors), \
             p50 {} ms, p99 {} ms",
            leg.followers,
            leg.throughput_rps,
            leg.requests,
            leg.errors,
            cell(leg.p50_ms),
            cell(leg.p99_ms)
        );
    }
    if let Some(speedup) = summary.read_speedup {
        println!("read throughput ×{speedup:.2} with followers");
    }
    let attrs: Attrs = summary.attrs();
    save_bench_report("bench-replica", &attrs, &out)?;
    println!("bench report written to {}", out.display());
    Ok(attrs)
}

fn chaos_cmd(flags: &Flags) -> Result<Attrs, CliError> {
    use viralcast::chaos;

    let defaults = chaos::ChaosConfig::default();
    let steady = flags.f64("steady", defaults.steady.as_secs_f64())?;
    let recovery_timeout =
        flags.f64("recovery-timeout", defaults.recovery_timeout.as_secs_f64())?;
    if !steady.is_finite() || steady <= 0.0 {
        return Err(usage_err("--steady must be a positive number of seconds"));
    }
    if !recovery_timeout.is_finite() || recovery_timeout <= 0.0 {
        return Err(usage_err(
            "--recovery-timeout must be a positive number of seconds",
        ));
    }
    let cycles = flags.u64("cycles", u64::from(defaults.cycles))?;
    if cycles == 0 {
        return Err(usage_err("--cycles must be positive"));
    }
    let cluster_shards = flags.usize("cluster", defaults.cluster_shards)?;
    if cluster_shards == 1 {
        return Err(usage_err(
            "--cluster needs at least 2 shards (omit it for single-box chaos)",
        ));
    }
    if cluster_shards > 16 {
        return Err(usage_err("--cluster supports at most 16 shards"));
    }
    let followers = flags.usize("followers", defaults.followers)?;
    if followers > 0 && cluster_shards < 2 {
        return Err(usage_err(
            "--followers needs --cluster N (followers replicate shard leaders)",
        ));
    }
    if followers > 4 {
        return Err(usage_err("--followers supports at most 4 per shard"));
    }
    let backend = flags
        .get("backend")
        .map_or(viralcast::model::EmbeddingBackend::ID, |b| b);
    if !viralcast::model::BACKENDS.contains(&backend) {
        return Err(usage_err(format!(
            "unknown --backend {backend:?} (known backends: {})",
            viralcast::model::BACKENDS.join(", ")
        )));
    }
    let corpus = flags.opt_path("corpus");
    let embeddings = if backend == viralcast::model::NetInfBackend::ID {
        if flags.has("embeddings") {
            return Err(usage_err(
                "--embeddings is only meaningful with --backend embed \
                 (the netinf backend fits from --corpus)",
            ));
        }
        if corpus.is_none() {
            return Err(usage_err(
                "--backend netinf needs --corpus FILE for the child daemons to fit at boot",
            ));
        }
        PathBuf::new()
    } else {
        if corpus.is_some() {
            return Err(usage_err(
                "--corpus is only meaningful with --backend netinf \
                 (the embed backend loads --embeddings)",
            ));
        }
        flags.require_path("embeddings")?
    };
    let config = chaos::ChaosConfig {
        embeddings,
        data_dir: flags.require_path("data-dir")?,
        workers: flags.usize("workers", defaults.workers)?,
        cycles: cycles.min(10_000) as u32,
        steady: std::time::Duration::from_secs_f64(steady),
        recovery_timeout: std::time::Duration::from_secs_f64(recovery_timeout),
        seed: flags.u64("seed", defaults.seed)?,
        cluster_shards,
        followers,
        backend: backend.to_string(),
        corpus,
    };
    let out = flags
        .opt_path("out")
        .unwrap_or_else(|| PathBuf::from("BENCH_chaos.json"));

    if config.cluster_shards >= 2 {
        println!(
            "chaos: {} worker(s) through a router over {} shard(s) \
             ({} follower(s) per shard), {} kill cycle(s), \
             {steady:.1}s steady load each…",
            config.workers, config.cluster_shards, config.followers, config.cycles
        );
    } else {
        println!(
            "chaos: {} worker(s), {} kill cycle(s), {steady:.1}s steady load each…",
            config.workers, config.cycles
        );
    }
    let summary = {
        let _span = Span::enter("chaos");
        viralcast::chaos::run(&config).map_err(runtime_err)?
    };

    let cell = |v: Option<f64>| v.map_or("-".to_string(), |ms| format!("{ms:.2}"));
    println!(
        "{} kill cycle(s): recovery p50 {} ms, p99 {} ms",
        summary.kill_cycles,
        cell(summary.recovery_p50_ms),
        cell(summary.recovery_p99_ms)
    );
    println!(
        "acked {} / recovered {} ({} missing), {} shed (rate {:.3}), \
         {} io errors, {} retries",
        summary.acked,
        summary.recovered,
        summary.missing.len(),
        summary.shed,
        summary.shed_rate,
        summary.io_errors,
        summary.retries
    );
    println!(
        "latency p99: steady {} ms vs disrupted {} ms (degradation {}), \
         {} 5xx after recovery",
        cell(summary.steady_p99_ms),
        cell(summary.disrupted_p99_ms),
        summary
            .p99_degradation
            .map_or("-".to_string(), |x| format!("{x:.1}×")),
        summary.post_recovery_5xx
    );
    if config.cluster_shards >= 2 {
        println!(
            "router while a shard was down: {} partial response(s), \
             {} non-partial 5xx, {} degraded read(s)",
            summary.partial_responses, summary.non_partial_5xx, summary.degraded_reads
        );
    }

    let attrs: Attrs = summary.attrs();
    save_bench_report("chaos", &attrs, &out)?;
    println!("bench report written to {}", out.display());

    if !summary.missing.is_empty() {
        let preview: Vec<String> = summary
            .missing
            .iter()
            .take(10)
            .map(u64::to_string)
            .collect();
        return Err(runtime_err(format!(
            "durability loss: {} acked ingest(s) missing after replay (seq {}{})",
            summary.missing.len(),
            preview.join(", "),
            if summary.missing.len() > 10 {
                ", …"
            } else {
                ""
            }
        )));
    }
    if summary.post_recovery_5xx > 0 {
        return Err(runtime_err(format!(
            "{} request(s) answered 5xx after the daemon reported healthy",
            summary.post_recovery_5xx
        )));
    }
    if summary.non_partial_5xx > 0 {
        return Err(runtime_err(format!(
            "{} router response(s) were 5xx instead of a partial answer \
             while a shard was down",
            summary.non_partial_5xx
        )));
    }
    if summary.degraded_reads > 0 {
        return Err(runtime_err(format!(
            "{} read(s) degraded to partial while a leader was down even \
             though its follower(s) should have masked the outage",
            summary.degraded_reads
        )));
    }
    Ok(attrs)
}

/// Writes a `BENCH_*.json` run report: the standard report envelope
/// (schema + metrics snapshot) around the bench's own attributes.
fn save_bench_report(command: &str, attrs: &Attrs, out: &Path) -> Result<(), CliError> {
    let mut report = RunReport::default().attr("command", command);
    report.metrics = viralcast::obs::metrics().snapshot();
    for (key, value) in attrs {
        report = report.attr(key.clone(), value.clone());
    }
    report
        .save(out)
        .map_err(|e| runtime_err(format!("cannot write bench report {}: {e}", out.display())))
}

fn load_corpus(path: &Path) -> Result<CascadeSet, String> {
    let _span = Span::enter("load_corpus");
    store::load(path).map_err(|e| format!("cannot load corpus {}: {e}", path.display()))
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Runtime(message)
    }
}

/// Strict `--flag value` parser: only flags in the command's vocabulary
/// are accepted, value flags must be followed by a value, and malformed
/// values are reported instead of silently falling back to defaults.
struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    fn parse<I: Iterator<Item = String>>(args: I, spec: Vec<FlagSpec>) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut iter = args.peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(usage_err(format!("unexpected argument {arg:?}")));
            };
            let Some(&(name, takes_value)) = spec.iter().find(|(name, _)| *name == key) else {
                return Err(usage_err(format!("unknown flag --{key}")));
            };
            let value = if takes_value {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => return Err(usage_err(format!("flag --{key} requires a value"))),
                }
            } else {
                "true".to_string()
            };
            if values.insert(name.to_string(), value).is_some() {
                return Err(usage_err(format!("flag --{key} given more than once")));
            }
        }
        Ok(Flags { values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| {
                usage_err(format!(
                    "malformed value {raw:?} for --{key} (expected {})",
                    std::any::type_name::<T>()
                ))
            }),
        }
    }

    fn opt_usize(&self, key: &str) -> Result<Option<usize>, CliError> {
        self.parsed(key)
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        Ok(self.parsed(key)?.unwrap_or(default))
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        Ok(self.parsed(key)?.unwrap_or(default))
    }

    fn f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        Ok(self.parsed(key)?.unwrap_or(default))
    }

    fn opt_path(&self, key: &str) -> Option<PathBuf> {
        self.get(key).map(PathBuf::from)
    }

    fn require_path(&self, key: &str) -> Result<PathBuf, CliError> {
        self.opt_path(key)
            .ok_or_else(|| usage_err(format!("missing required flag --{key}")))
    }
}
