//! The binary merge tree behind Algorithm 2.
//!
//! The communities found by SLPA form the leaves of a clustering tree;
//! Algorithm 2 runs Algorithm 1 on every community of a level in
//! parallel, then "joins every two communities" and repeats one level up
//! until few enough communities remain. This module precomputes that
//! schedule and — crucially for the lock-free parallel update — a node
//! layout in which every group at every level occupies a *contiguous
//! range* of node positions, so each worker can be handed a disjoint
//! `&mut` block of the embedding matrices with no locking at all.
//!
//! The layout works because pairing always joins *adjacent* groups: if
//! leaves are laid out left to right, every ancestor covers a contiguous
//! leaf interval, hence a contiguous node interval. Balancing then
//! reduces to choosing the left-to-right *leaf order*:
//!
//! * [`Balance::LeafCount`] — keep SLPA's order; the tree is balanced by
//!   the number of leaves in each branch (the paper's implementation).
//! * [`Balance::NodeCount`] — interleave large and small communities so
//!   adjacent pairs have roughly equal node counts (the improvement the
//!   paper leaves as future work, built here for the ablation bench).

use crate::partition::Partition;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use viralcast_graph::NodeId;

/// How to order leaves before adjacent pairing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Balance {
    /// Balance branches by leaf count (paper's simple design).
    LeafCount,
    /// Balance adjacent pairs by node count (paper's future work).
    NodeCount,
}

/// A precomputed merge schedule over the leaf communities of a
/// [`Partition`].
#[derive(Clone, Debug)]
pub struct MergeHierarchy {
    base: Partition,
    /// Permutation of community ids: left-to-right leaf order.
    leaf_order: Vec<usize>,
    /// Nodes grouped by leaf, in leaf order.
    node_order: Vec<NodeId>,
    /// Inverse of `node_order`: node index → position.
    node_pos: Vec<usize>,
    /// `leaf_starts[i]` = first node position of the i-th leaf in order;
    /// has `k + 1` entries.
    leaf_starts: Vec<usize>,
    /// Per level, the groups as ranges over *leaf-order indices*.
    levels: Vec<Vec<Range<usize>>>,
}

impl MergeHierarchy {
    /// Builds the schedule from leaf communities.
    pub fn build(base: Partition, balance: Balance) -> Self {
        let k = base.community_count();
        let sizes = base.sizes();

        let leaf_order: Vec<usize> = match balance {
            Balance::LeafCount => (0..k).collect(),
            Balance::NodeCount => {
                // Largest-with-smallest interleaving: sort by size
                // descending, then alternate ends so adjacent pairs sum
                // to roughly the same node count.
                let mut by_size: Vec<usize> = (0..k).collect();
                by_size.sort_by_key(|&c| std::cmp::Reverse(sizes[c]));
                let mut order = Vec::with_capacity(k);
                let (mut lo, mut hi) = (0usize, k);
                while lo < hi {
                    order.push(by_size[lo]);
                    lo += 1;
                    if lo < hi {
                        hi -= 1;
                        order.push(by_size[hi]);
                    }
                }
                order
            }
        };

        // Node layout: concatenate community members in leaf order.
        let communities = base.communities();
        let mut node_order = Vec::with_capacity(base.node_count());
        let mut leaf_starts = Vec::with_capacity(k + 1);
        leaf_starts.push(0);
        for &c in &leaf_order {
            node_order.extend_from_slice(&communities[c]);
            leaf_starts.push(node_order.len());
        }
        let mut node_pos = vec![0usize; base.node_count()];
        for (pos, &u) in node_order.iter().enumerate() {
            node_pos[u.index()] = pos;
        }

        // Level 0: singleton groups; each next level pairs adjacent
        // groups, promoting a trailing odd group unchanged.
        let mut levels: Vec<Vec<Range<usize>>> = Vec::new();
        let mut current: Vec<Range<usize>> = (0..k).map(|i| i..i + 1).collect();
        if !current.is_empty() {
            levels.push(current.clone());
            while current.len() > 1 {
                let mut next = Vec::with_capacity(current.len().div_ceil(2));
                let mut it = current.chunks(2);
                for pair in &mut it {
                    match pair {
                        [a, b] => next.push(a.start..b.end),
                        [a] => next.push(a.clone()),
                        _ => unreachable!(),
                    }
                }
                levels.push(next.clone());
                current = next;
            }
        }

        MergeHierarchy {
            base,
            leaf_order,
            node_order,
            node_pos,
            leaf_starts,
            levels,
        }
    }

    /// The leaf partition the hierarchy was built from.
    pub fn base(&self) -> &Partition {
        &self.base
    }

    /// Left-to-right leaf order: community ids of the base partition as
    /// laid out by the balancing strategy.
    pub fn leaf_order(&self) -> &[usize] {
        &self.leaf_order
    }

    /// Number of levels (level 0 = leaves, last level = one group). Zero
    /// only for an empty partition.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of groups at `level`.
    pub fn group_count(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// The node layout: nodes in block order. Position `p` in every
    /// embedding matrix corresponds to `node_layout()[p]`.
    pub fn node_layout(&self) -> &[NodeId] {
        &self.node_order
    }

    /// Position of node `u` in the layout.
    #[inline]
    pub fn position_of(&self, u: NodeId) -> usize {
        self.node_pos[u.index()]
    }

    /// Contiguous node-position ranges of the groups at `level`; ranges
    /// are disjoint, sorted and cover `0..node_count` exactly.
    pub fn node_ranges(&self, level: usize) -> Vec<Range<usize>> {
        self.levels[level]
            .iter()
            .map(|r| self.leaf_starts[r.start]..self.leaf_starts[r.end])
            .collect()
    }

    /// The partition induced by `level`'s groups (community of a node =
    /// its group index).
    pub fn partition_at(&self, level: usize) -> Partition {
        let mut raw = vec![0usize; self.base.node_count()];
        for (gi, range) in self.node_ranges(level).into_iter().enumerate() {
            for p in range {
                raw[self.node_order[p].index()] = gi;
            }
        }
        Partition::from_membership(&raw)
    }

    /// Levels to execute so that the run terminates once the group count
    /// drops to `q` or below (Algorithm 2's stopping rule). Always
    /// includes level 0 when the hierarchy is non-empty; always ends with
    /// the first level whose group count is ≤ `q`.
    pub fn levels_until(&self, q: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, groups) in self.levels.iter().enumerate() {
            out.push(i);
            if groups.len() <= q.max(1) {
                break;
            }
        }
        out
    }

    /// Largest group node-count at `level` divided by the mean — the load
    /// imbalance factor the balancing ablation measures.
    pub fn imbalance(&self, level: usize) -> f64 {
        let ranges = self.node_ranges(level);
        if ranges.is_empty() {
            return 1.0;
        }
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition(sizes: &[usize]) -> Partition {
        let mut raw = Vec::new();
        for (c, &s) in sizes.iter().enumerate() {
            raw.extend(std::iter::repeat_n(c, s));
        }
        Partition::from_membership(&raw)
    }

    #[test]
    fn four_leaves_make_three_levels() {
        let h = MergeHierarchy::build(partition(&[2, 2, 2, 2]), Balance::LeafCount);
        assert_eq!(h.level_count(), 3);
        assert_eq!(h.group_count(0), 4);
        assert_eq!(h.group_count(1), 2);
        assert_eq!(h.group_count(2), 1);
    }

    #[test]
    fn node_ranges_cover_everything() {
        let h = MergeHierarchy::build(partition(&[3, 1, 2]), Balance::LeafCount);
        for level in 0..h.level_count() {
            let ranges = h.node_ranges(level);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, 6, "level {level}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap at level {level}");
            }
        }
    }

    #[test]
    fn level_zero_matches_base_partition() {
        let base = partition(&[2, 3, 1]);
        let h = MergeHierarchy::build(base.clone(), Balance::LeafCount);
        let level0 = h.partition_at(0);
        // Same grouping (community ids may be permuted).
        assert!(level0.is_refined_by(&base) && base.is_refined_by(&level0));
    }

    #[test]
    fn top_level_is_one_group() {
        let h = MergeHierarchy::build(partition(&[2, 2, 2]), Balance::LeafCount);
        let top = h.partition_at(h.level_count() - 1);
        assert_eq!(top.community_count(), 1);
    }

    #[test]
    fn each_level_refines_the_next() {
        let h = MergeHierarchy::build(partition(&[1, 2, 3, 4, 5]), Balance::LeafCount);
        for l in 0..h.level_count() - 1 {
            let fine = h.partition_at(l);
            let coarse = h.partition_at(l + 1);
            assert!(
                coarse.is_refined_by(&fine),
                "level {} does not refine level {}",
                l,
                l + 1
            );
        }
    }

    #[test]
    fn odd_group_promotes() {
        let h = MergeHierarchy::build(partition(&[1, 1, 1]), Balance::LeafCount);
        // 3 -> 2 -> 1
        assert_eq!(h.group_count(0), 3);
        assert_eq!(h.group_count(1), 2);
        assert_eq!(h.group_count(2), 1);
    }

    #[test]
    fn positions_invert_layout() {
        let h = MergeHierarchy::build(partition(&[2, 3]), Balance::NodeCount);
        for (pos, &u) in h.node_layout().iter().enumerate() {
            assert_eq!(h.position_of(u), pos);
        }
    }

    #[test]
    fn node_count_balance_pairs_large_with_small() {
        // Sizes 10, 1, 9, 2: LeafCount pairs (10,1) and (9,2) by luck of
        // ordering; shuffle sizes so the orders differ: 1, 10, 2, 9.
        let h = MergeHierarchy::build(partition(&[1, 10, 2, 9]), Balance::NodeCount);
        let ranges = h.node_ranges(1);
        let pair_sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        // Balanced pairing: {10,1} and {9,2} -> sizes 11 and 11.
        assert_eq!(pair_sizes, vec![11, 11]);
    }

    #[test]
    fn node_count_balance_improves_imbalance() {
        let base = partition(&[40, 1, 1, 1, 1, 1, 1, 40]);
        let plain = MergeHierarchy::build(base.clone(), Balance::LeafCount);
        let balanced = MergeHierarchy::build(base, Balance::NodeCount);
        assert!(balanced.imbalance(1) <= plain.imbalance(1));
    }

    #[test]
    fn levels_until_stops_at_threshold() {
        let h = MergeHierarchy::build(partition(&[1; 8]), Balance::LeafCount);
        // Group counts per level: 8, 4, 2, 1.
        assert_eq!(h.levels_until(2), vec![0, 1, 2]);
        assert_eq!(h.levels_until(1), vec![0, 1, 2, 3]);
        assert_eq!(h.levels_until(100), vec![0]);
    }

    #[test]
    fn empty_partition_yields_empty_hierarchy() {
        let h = MergeHierarchy::build(Partition::from_membership(&[]), Balance::LeafCount);
        assert_eq!(h.level_count(), 0);
        assert!(h.node_layout().is_empty());
        assert!(h.levels_until(4).is_empty());
    }

    #[test]
    fn single_community_is_one_level() {
        let h = MergeHierarchy::build(Partition::whole(5), Balance::LeafCount);
        assert_eq!(h.level_count(), 1);
        assert_eq!(h.node_ranges(0), vec![0..5]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// For any base partition and either balance mode: every level's
        /// ranges tile the node positions, each level refines the next,
        /// and the top level has one group.
        #[test]
        fn hierarchy_laws(
            raw in prop::collection::vec(0usize..7, 1..60),
            balanced in prop::bool::ANY,
        ) {
            let base = Partition::from_membership(&raw);
            let mode = if balanced { Balance::NodeCount } else { Balance::LeafCount };
            let h = MergeHierarchy::build(base.clone(), mode);
            prop_assert!(h.level_count() >= 1);
            for level in 0..h.level_count() {
                let ranges = h.node_ranges(level);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                prop_assert_eq!(total, raw.len());
                for w in ranges.windows(2) {
                    prop_assert_eq!(w[0].end, w[1].start);
                }
            }
            for l in 0..h.level_count() - 1 {
                prop_assert!(h.partition_at(l + 1).is_refined_by(&h.partition_at(l)));
            }
            let top = h.partition_at(h.level_count() - 1);
            prop_assert_eq!(top.community_count(), 1);
            // Level 0 equals the base partition up to label permutation.
            let l0 = h.partition_at(0);
            prop_assert!(l0.is_refined_by(&base) && base.is_refined_by(&l0));
        }

        /// Group counts halve (rounding up) at each level.
        #[test]
        fn group_counts_halve(k in 1usize..40) {
            let raw: Vec<usize> = (0..k).collect();
            let h = MergeHierarchy::build(Partition::from_membership(&raw), Balance::LeafCount);
            for l in 0..h.level_count() - 1 {
                prop_assert_eq!(h.group_count(l + 1), h.group_count(l).div_ceil(2));
            }
        }
    }
}
