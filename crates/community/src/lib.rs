//! Community structure machinery for the viralcast workspace.
//!
//! Two distinct clustering problems appear in the paper and both live
//! here:
//!
//! 1. **Node communities for parallelisation** (Section IV-B): SLPA
//!    ([`slpa`]) partitions the frequent co-occurrence graph into the
//!    dense sub-modules that Algorithm 1 processes independently, and the
//!    balanced binary merge tree ([`hierarchy`]) drives Algorithm 2's
//!    level-by-level parallel schedule.
//! 2. **Cascade clustering for data exploration** (Section II, Figure 1):
//!    agglomerative clustering with the Ward criterion ([`ward`]) over
//!    pairwise Jaccard distances ([`jaccard`]) between the reporting-site
//!    sets of news events, rendered as a dendrogram ([`dendrogram`]).
//!
//! [`partition`] holds the shared [`Partition`] type and [`metrics`] the
//! quality measures (modularity, NMI) used to validate detection against
//! planted SBM ground truth.

#![warn(missing_docs)]

pub mod dendrogram;
pub mod hierarchy;
pub mod jaccard;
pub mod metrics;
pub mod partition;
pub mod slpa;
pub mod ward;

pub use dendrogram::Dendrogram;
pub use hierarchy::{Balance, MergeHierarchy};
pub use partition::Partition;
pub use slpa::{Slpa, SlpaConfig};
pub use ward::{ward_linkage, Merge};
