//! Partition quality measures: modularity and normalised mutual
//! information.
//!
//! The paper relies on SLPA finding the planted structure but never
//! quantifies it; these metrics back the claim in our tests and in the
//! community bench — NMI against SBM ground truth, weighted modularity
//! on co-occurrence graphs.

use crate::partition::Partition;
use viralcast_graph::{DiGraph, NodeId};

/// Newman's modularity `Q` of a partition on the undirected view of a
/// weighted graph:
/// `Q = Σ_c (w_in(c)/W − (deg(c)/2W)²)` with `W` the total undirected
/// edge weight.
pub fn modularity(graph: &DiGraph, partition: &Partition) -> f64 {
    assert_eq!(graph.node_count(), partition.node_count());
    let und = graph.to_undirected();
    // In the symmetric representation every undirected edge appears
    // twice, so the directed total is 2W.
    let two_w = und.total_weight();
    if two_w == 0.0 {
        return 0.0;
    }
    let k = partition.community_count();
    let mut w_in = vec![0.0; k]; // 2 × internal weight
    let mut deg = vec![0.0; k]; // weighted degree sum
    for u in und.nodes() {
        let cu = partition.community_of(u);
        for (v, w) in und.out_edges(u) {
            deg[cu] += w;
            if partition.community_of(v) == cu {
                w_in[cu] += w;
            }
        }
    }
    (0..k)
        .map(|c| w_in[c] / two_w - (deg[c] / two_w).powi(2))
        .sum()
}

/// Normalised mutual information between two partitions of the same node
/// set, in `[0, 1]`; 1 means identical up to label permutation. Uses the
/// arithmetic-mean normalisation `2 I(X;Y) / (H(X) + H(Y))`, and defines
/// NMI of two trivial (zero-entropy) partitions as 1.
pub fn nmi(a: &Partition, b: &Partition) -> f64 {
    assert_eq!(a.node_count(), b.node_count());
    let n = a.node_count();
    if n == 0 {
        return 1.0;
    }
    let (ka, kb) = (a.community_count(), b.community_count());
    let mut joint = vec![0usize; ka * kb];
    for i in 0..n {
        let u = NodeId::new(i);
        joint[a.community_of(u) * kb + b.community_of(u)] += 1;
    }
    let pa = a.sizes();
    let pb = b.sizes();
    let nf = n as f64;
    let mut mi = 0.0;
    for i in 0..ka {
        for j in 0..kb {
            let nij = joint[i * kb + j];
            if nij == 0 {
                continue;
            }
            let pij = nij as f64 / nf;
            mi += pij * (pij / ((pa[i] as f64 / nf) * (pb[j] as f64 / nf))).ln();
        }
    }
    let entropy = |sizes: &[usize]| -> f64 {
        sizes
            .iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (entropy(&pa), entropy(&pb));
    if ha + hb == 0.0 {
        1.0 // both trivial partitions — identical structure
    } else {
        (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_graph::GraphBuilder;

    fn two_cliques() -> DiGraph {
        let mut b = GraphBuilder::new(6);
        for base in [0u32, 3] {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    b.add_undirected_edge(NodeId(base + i), NodeId(base + j), 1.0);
                }
            }
        }
        b.add_undirected_edge(NodeId(2), NodeId(3), 1.0);
        b.build()
    }

    #[test]
    fn modularity_rewards_true_communities() {
        let g = two_cliques();
        let good = Partition::from_membership(&[0, 0, 0, 1, 1, 1]);
        let bad = Partition::from_membership(&[0, 1, 0, 1, 0, 1]);
        let whole = Partition::whole(6);
        assert!(modularity(&g, &good) > modularity(&g, &bad));
        assert!(modularity(&g, &good) > modularity(&g, &whole));
    }

    #[test]
    fn modularity_of_whole_partition_is_zero() {
        let g = two_cliques();
        let q = modularity(&g, &Partition::whole(6));
        assert!(q.abs() < 1e-12, "got {q}");
    }

    #[test]
    fn modularity_empty_graph_is_zero() {
        let g = DiGraph::empty(4);
        assert_eq!(modularity(&g, &Partition::singletons(4)), 0.0);
    }

    #[test]
    fn nmi_identical_partitions_is_one() {
        let p = Partition::from_membership(&[0, 0, 1, 1, 2]);
        assert!((nmi(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_invariant_to_label_permutation() {
        let a = Partition::from_membership(&[0, 0, 1, 1]);
        let b = Partition::from_membership(&[1, 1, 0, 0]);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_partitions_is_low() {
        // Orthogonal partitioning of a 4-element set.
        let a = Partition::from_membership(&[0, 0, 1, 1]);
        let b = Partition::from_membership(&[0, 1, 0, 1]);
        assert!(nmi(&a, &b) < 0.01);
    }

    #[test]
    fn nmi_trivial_vs_trivial() {
        let a = Partition::whole(5);
        let b = Partition::whole(5);
        assert_eq!(nmi(&a, &b), 1.0);
    }

    #[test]
    fn nmi_partial_agreement_in_between() {
        let a = Partition::from_membership(&[0, 0, 0, 1, 1, 1]);
        let b = Partition::from_membership(&[0, 0, 1, 1, 1, 1]);
        let v = nmi(&a, &b);
        assert!(v > 0.2 && v < 1.0, "got {v}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use viralcast_graph::GraphBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// NMI is symmetric and bounded.
        #[test]
        fn nmi_symmetric_bounded(
            ra in prop::collection::vec(0usize..5, 1..40),
        ) {
            // Derive b from a by regrouping to keep lengths equal.
            let rb: Vec<usize> = ra.iter().map(|&x| x / 2).collect();
            let a = Partition::from_membership(&ra);
            let b = Partition::from_membership(&rb);
            let ab = nmi(&a, &b);
            let ba = nmi(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        /// Modularity is bounded above by 1.
        #[test]
        fn modularity_bounded(
            edges in prop::collection::vec((0u32..8, 0u32..8, 0.1f64..3.0), 1..30),
            raw in prop::collection::vec(0usize..4, 8),
        ) {
            let mut b = GraphBuilder::new(8);
            for &(u, v, w) in &edges {
                if u != v {
                    b.add_undirected_edge(NodeId(u), NodeId(v), w);
                }
            }
            let g = b.build();
            let p = Partition::from_membership(&raw);
            let q = modularity(&g, &p);
            prop_assert!(q <= 1.0 + 1e-9);
            prop_assert!(q >= -1.0 - 1e-9);
        }
    }
}
