//! Jaccard similarity between cascades (paper eq. 1).
//!
//! Section II measures the distance between two news-event cascades as
//! the Jaccard index of their reporting-site sets,
//! `|N(i) ∩ N(j)| / |N(i) ∪ N(j)|`; the hierarchical clustering of
//! Figure 1 runs on the corresponding distance `1 − Jaccard`.

use viralcast_graph::NodeId;

/// Jaccard index of two node sets given as *sorted, deduplicated*
/// slices. Empty-vs-empty is defined as 1 (identical sets).
pub fn jaccard_index(a: &[NodeId], b: &[NodeId]) -> f64 {
    debug_assert!(
        a.windows(2).all(|w| w[0] < w[1]),
        "input must be sorted/deduped"
    );
    debug_assert!(
        b.windows(2).all(|w| w[0] < w[1]),
        "input must be sorted/deduped"
    );
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard distance `1 − index`.
pub fn jaccard_distance(a: &[NodeId], b: &[NodeId]) -> f64 {
    1.0 - jaccard_index(a, b)
}

/// A condensed (upper-triangular, row-major) pairwise distance matrix.
#[derive(Clone, Debug)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j` (0 on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.data[Self::offset(self.n, i, j)]
    }

    /// Sets the distance between distinct items `i` and `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        assert_ne!(i, j, "diagonal is fixed at zero");
        self.data[Self::offset(self.n, i, j)] = d;
    }

    /// A zero matrix over `n` items.
    pub fn zeros(n: usize) -> Self {
        CondensedMatrix {
            n,
            data: vec![0.0; n * (n - 1) / 2],
        }
    }

    #[inline]
    fn offset(n: usize, i: usize, j: usize) -> usize {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        debug_assert!(j < n);
        // Row i starts after rows 0..i: sum_{r<i} (n-1-r) = i(2n-i-1)/2.
        i * (2 * n - i - 1) / 2 + (j - i - 1)
    }
}

/// Builds the condensed pairwise Jaccard-distance matrix over item node
/// sets. Each set is sorted and deduplicated internally.
pub fn pairwise_jaccard_distances(sets: &[Vec<NodeId>]) -> CondensedMatrix {
    let n = sets.len();
    if n == 0 {
        return CondensedMatrix { n: 0, data: vec![] };
    }
    let normalized: Vec<Vec<NodeId>> = sets
        .iter()
        .map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut m = CondensedMatrix::zeros(n);
    for i in 0..n {
        for j in (i + 1)..n {
            m.set(i, j, jaccard_distance(&normalized[i], &normalized[j]));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn identical_sets_have_index_one() {
        let a = ids(&[1, 2, 3]);
        assert_eq!(jaccard_index(&a, &a), 1.0);
        assert_eq!(jaccard_distance(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_sets_have_index_zero() {
        assert_eq!(jaccard_index(&ids(&[1, 2]), &ids(&[3, 4])), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // |{1,2} ∩ {2,3}| / |{1,2,3}| = 1/3
        let v = jaccard_index(&ids(&[1, 2]), &ids(&[2, 3]));
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(jaccard_index(&[], &[]), 1.0);
        assert_eq!(jaccard_index(&[], &ids(&[1])), 0.0);
    }

    #[test]
    fn condensed_offsets_cover_triangle() {
        let mut m = CondensedMatrix::zeros(4);
        let mut v = 1.0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                m.set(i, j, v);
                v += 1.0;
            }
        }
        // 6 entries, all distinct, symmetric access.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    let bits = m.get(i, j).to_bits();
                    assert_eq!(m.get(i, j), m.get(j, i));
                    seen.insert(bits);
                }
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn pairwise_matrix_matches_direct() {
        let sets = vec![ids(&[0, 1]), ids(&[1, 2]), ids(&[5])];
        let m = pairwise_jaccard_distances(&sets);
        assert!((m.get(0, 1) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn pairwise_handles_unsorted_input() {
        let sets = vec![ids(&[3, 1, 2]), ids(&[2, 3, 1])];
        let m = pairwise_jaccard_distances(&sets);
        assert_eq!(m.get(0, 1), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_set() -> impl Strategy<Value = Vec<NodeId>> {
        prop::collection::btree_set(0u32..30, 0..15)
            .prop_map(|s| s.into_iter().map(NodeId).collect())
    }

    proptest! {
        /// Jaccard is symmetric and bounded in [0, 1].
        #[test]
        fn symmetric_and_bounded(a in sorted_set(), b in sorted_set()) {
            let ab = jaccard_index(&a, &b);
            let ba = jaccard_index(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-15);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        /// Jaccard distance satisfies the triangle inequality (it is a
        /// proper metric on finite sets).
        #[test]
        fn triangle_inequality(a in sorted_set(), b in sorted_set(), c in sorted_set()) {
            let dab = jaccard_distance(&a, &b);
            let dbc = jaccard_distance(&b, &c);
            let dac = jaccard_distance(&a, &c);
            prop_assert!(dac <= dab + dbc + 1e-12);
        }
    }
}
