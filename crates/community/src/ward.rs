//! Agglomerative hierarchical clustering with the Ward criterion —
//! the method behind the dendrogram of Figure 1.
//!
//! "The hierarchical clustering algorithm, which merges iteratively the
//! closest cascades according to the Ward distance measure among all
//! pairs of cascades, is applied to obtain a dendrogram." We implement
//! the nearest-neighbour-chain algorithm: `O(n²)` time and one condensed
//! distance matrix of memory, with cluster distances updated through the
//! Lance–Williams recurrence for Ward's linkage
//!
//! ```text
//! d(i∪j, k)² = [ (nᵢ+nₖ) d(i,k)² + (nⱼ+nₖ) d(j,k)² − nₖ d(i,j)² ] / (nᵢ+nⱼ+nₖ)
//! ```
//!
//! NN-chain is exact for Ward because the linkage is *reducible*:
//! merging two clusters never makes either closer to a third, so
//! reciprocal nearest neighbours can be merged in any discovery order
//! and yield the same dendrogram as the naive global-minimum algorithm.

use crate::jaccard::CondensedMatrix;
use serde::{Deserialize, Serialize};

/// One agglomeration step, in the SciPy linkage convention: leaves are
/// clusters `0..n`, and the cluster created by step `s` has id `n + s`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Smaller of the two merged cluster ids.
    pub left: usize,
    /// Larger of the two merged cluster ids.
    pub right: usize,
    /// Ward distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the new cluster.
    pub size: usize,
}

/// Runs Ward agglomerative clustering on a condensed distance matrix,
/// returning the `n − 1` merges in execution order (sorted by distance).
///
/// ```
/// use viralcast_community::jaccard::pairwise_jaccard_distances;
/// use viralcast_community::{ward_linkage, Dendrogram};
/// use viralcast_graph::NodeId;
///
/// // Two events over almost-identical site sets, one disjoint.
/// let sets = vec![
///     vec![NodeId(0), NodeId(1), NodeId(2)],
///     vec![NodeId(0), NodeId(1)],
///     vec![NodeId(7), NodeId(8)],
/// ];
/// let merges = ward_linkage(&pairwise_jaccard_distances(&sets));
/// let dendrogram = Dendrogram::new(3, merges);
/// // Cutting at two clusters separates the disjoint event.
/// assert_eq!(dendrogram.cut_k(2), vec![0, 0, 1]);
/// ```
pub fn ward_linkage(distances: &CondensedMatrix) -> Vec<Merge> {
    let n = distances.len();
    if n <= 1 {
        return Vec::new();
    }
    // Working state: slot-indexed. A merge reuses the lower slot.
    let mut d = distances.clone();
    let mut active: Vec<bool> = vec![true; n];
    let mut sizes: Vec<usize> = vec![1; n];
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut next_id = n;

    while merges.len() < n - 1 {
        if chain.is_empty() {
            let first = active
                .iter()
                .position(|&a| a)
                .expect("at least two clusters remain");
            chain.push(first);
        }
        loop {
            let a = *chain.last().unwrap();
            // Nearest active neighbour of `a`, smallest slot on ties.
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            #[allow(clippy::needless_range_loop)] // k indexes both `active` and the matrix
            for k in 0..n {
                if k == a || !active[k] {
                    continue;
                }
                let dk = d.get(a, k);
                if dk < best_d {
                    best_d = dk;
                    best = k;
                }
            }
            debug_assert_ne!(best, usize::MAX);
            if chain.len() >= 2 && chain[chain.len() - 2] == best {
                // Reciprocal nearest neighbours: merge.
                chain.pop();
                chain.pop();
                merge(
                    &mut d,
                    &mut active,
                    &mut sizes,
                    &mut cluster_id,
                    &mut merges,
                    a,
                    best,
                    best_d,
                    &mut next_id,
                );
                break;
            }
            chain.push(best);
        }
    }
    // NN-chain discovers merges out of global order; Ward heights are
    // monotone, so sorting by distance restores the dendrogram order.
    // Re-label internal ids to match the sorted order.
    relabel_sorted(n, merges)
}

#[allow(clippy::too_many_arguments)]
fn merge(
    d: &mut CondensedMatrix,
    active: &mut [bool],
    sizes: &mut [usize],
    cluster_id: &mut [usize],
    merges: &mut Vec<Merge>,
    a: usize,
    b: usize,
    dist: f64,
    next_id: &mut usize,
) {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (ni, nj) = (sizes[lo] as f64, sizes[hi] as f64);
    let dij = dist;
    let n = active.len();
    for k in 0..n {
        if !active[k] || k == lo || k == hi {
            continue;
        }
        let nk = sizes[k] as f64;
        let dik = d.get(lo, k);
        let djk = d.get(hi, k);
        let num = (ni + nk) * dik * dik + (nj + nk) * djk * djk - nk * dij * dij;
        let new_d = (num / (ni + nj + nk)).max(0.0).sqrt();
        d.set(lo, k, new_d);
    }
    let (ida, idb) = (cluster_id[lo], cluster_id[hi]);
    merges.push(Merge {
        left: ida.min(idb),
        right: ida.max(idb),
        distance: dist,
        size: sizes[lo] + sizes[hi],
    });
    sizes[lo] += sizes[hi];
    active[hi] = false;
    cluster_id[lo] = *next_id;
    *next_id += 1;
}

/// Sorts merges by distance and renumbers internal cluster ids to the
/// SciPy convention (step `s` creates id `n + s`).
fn relabel_sorted(n: usize, mut merges: Vec<Merge>) -> Vec<Merge> {
    // Stable sort keeps equal-height merges in execution order, which is
    // a valid tie-break.
    let order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..merges.len()).collect();
        idx.sort_by(|&x, &y| {
            merges[x]
                .distance
                .partial_cmp(&merges[y].distance)
                .unwrap()
                .then(x.cmp(&y))
        });
        idx
    };
    // old internal id (n + exec_step) -> new internal id (n + rank)
    let mut remap = vec![0usize; merges.len()];
    for (rank, &step) in order.iter().enumerate() {
        remap[step] = n + rank;
    }
    let fix = |id: usize| if id < n { id } else { remap[id - n] };
    let mut out: Vec<Merge> = order
        .iter()
        .map(|&step| {
            let m = merges[step];
            let (l, r) = (fix(m.left), fix(m.right));
            Merge {
                left: l.min(r),
                right: l.max(r),
                distance: m.distance,
                size: m.size,
            }
        })
        .collect();
    merges.clear();
    merges.append(&mut out);
    merges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, entries: &[(usize, usize, f64)]) -> CondensedMatrix {
        let mut m = CondensedMatrix::zeros(n);
        for &(i, j, d) in entries {
            m.set(i, j, d);
        }
        m
    }

    #[test]
    fn two_points_single_merge() {
        let m = matrix(2, &[(0, 1, 3.0)]);
        let merges = ward_linkage(&m);
        assert_eq!(merges.len(), 1);
        assert_eq!((merges[0].left, merges[0].right), (0, 1));
        assert_eq!(merges[0].distance, 3.0);
        assert_eq!(merges[0].size, 2);
    }

    #[test]
    fn closest_pair_merges_first() {
        // 0-1 close, 2 far from both.
        let m = matrix(3, &[(0, 1, 1.0), (0, 2, 10.0), (1, 2, 10.0)]);
        let merges = ward_linkage(&m);
        assert_eq!(merges.len(), 2);
        assert_eq!((merges[0].left, merges[0].right), (0, 1));
        assert!(merges[1].distance > merges[0].distance);
        // Second merge joins leaf 2 with internal cluster 3.
        assert_eq!((merges[1].left, merges[1].right), (2, 3));
        assert_eq!(merges[1].size, 3);
    }

    #[test]
    fn two_tight_pairs_then_join() {
        let m = matrix(
            4,
            &[
                (0, 1, 1.0),
                (2, 3, 1.0),
                (0, 2, 20.0),
                (0, 3, 20.0),
                (1, 2, 20.0),
                (1, 3, 20.0),
            ],
        );
        let merges = ward_linkage(&m);
        assert_eq!(merges.len(), 3);
        // First two merges are the tight pairs (order between them is a
        // tie), final merge joins the two internal clusters.
        let firsts: Vec<(usize, usize)> = merges[..2].iter().map(|m| (m.left, m.right)).collect();
        assert!(firsts.contains(&(0, 1)));
        assert!(firsts.contains(&(2, 3)));
        assert_eq!((merges[2].left, merges[2].right), (4, 5));
        assert_eq!(merges[2].size, 4);
    }

    #[test]
    fn distances_are_monotone_nondecreasing() {
        // Random-ish matrix; Ward heights must be sorted after linkage.
        let mut m = CondensedMatrix::zeros(8);
        let mut v = 0.1;
        for i in 0..8 {
            for j in (i + 1)..8 {
                v = (v * 1.7 + 0.3) % 5.0 + 0.2;
                m.set(i, j, v);
            }
        }
        let merges = ward_linkage(&m);
        assert_eq!(merges.len(), 7);
        for w in merges.windows(2) {
            assert!(
                w[1].distance >= w[0].distance - 1e-9,
                "heights not monotone: {} then {}",
                w[0].distance,
                w[1].distance
            );
        }
    }

    #[test]
    fn sizes_sum_correctly() {
        let mut m = CondensedMatrix::zeros(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                m.set(i, j, ((i * 7 + j * 13) % 10) as f64 + 1.0);
            }
        }
        let merges = ward_linkage(&m);
        assert_eq!(merges.last().unwrap().size, 6);
    }

    #[test]
    fn internal_ids_follow_scipy_convention() {
        let mut m = CondensedMatrix::zeros(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                m.set(i, j, (i + j) as f64 + 1.0);
            }
        }
        let merges = ward_linkage(&m);
        for (s, mg) in merges.iter().enumerate() {
            assert!(mg.left < 5 + s, "merge {s} references future cluster");
            assert!(mg.right < 5 + s);
            assert!(mg.left < mg.right);
        }
    }

    #[test]
    fn trivial_inputs() {
        assert!(ward_linkage(&CondensedMatrix::zeros(1)).is_empty());
        let empty = crate::jaccard::pairwise_jaccard_distances(&[]);
        assert!(ward_linkage(&empty).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn random_matrix() -> impl Strategy<Value = CondensedMatrix> {
        (2usize..12).prop_flat_map(|n| {
            prop::collection::vec(0.1f64..10.0, n * (n - 1) / 2).prop_map(move |vals| {
                let mut m = CondensedMatrix::zeros(n);
                let mut it = vals.into_iter();
                for i in 0..n {
                    for j in (i + 1)..n {
                        m.set(i, j, it.next().unwrap());
                    }
                }
                m
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Structural laws of any linkage output: n−1 merges, each
        /// cluster used at most once as a child, final size n, heights
        /// monotone.
        #[test]
        fn linkage_laws(m in random_matrix()) {
            let n = m.len();
            let merges = ward_linkage(&m);
            prop_assert_eq!(merges.len(), n - 1);
            let mut used = vec![false; 2 * n - 1];
            for mg in &merges {
                prop_assert!(!used[mg.left], "cluster used twice");
                prop_assert!(!used[mg.right], "cluster used twice");
                used[mg.left] = true;
                used[mg.right] = true;
            }
            prop_assert_eq!(merges.last().unwrap().size, n);
            for w in merges.windows(2) {
                prop_assert!(w[1].distance >= w[0].distance - 1e-9);
            }
        }
    }
}
