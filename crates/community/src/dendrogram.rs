//! Dendrograms over Ward merges.
//!
//! Figure 1 of the paper annotates the clustering tree's inner nodes with
//! their Ward distance and leaf count and reads off three regional
//! clusters. [`Dendrogram`] supports exactly those uses: cutting the tree
//! into `k` flat clusters, cutting at a distance, and summarising the top
//! merges for textual display.

use crate::ward::Merge;
use serde::{Deserialize, Serialize};

/// A dendrogram: `n` leaves plus the `n − 1` merges that join them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dendrogram {
    leaf_count: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Wraps linkage output.
    ///
    /// # Panics
    /// Panics if the merge count is not `leaf_count − 1` (for
    /// `leaf_count ≥ 1`).
    pub fn new(leaf_count: usize, merges: Vec<Merge>) -> Self {
        assert_eq!(
            merges.len(),
            leaf_count.saturating_sub(1),
            "a dendrogram over {leaf_count} leaves needs {} merges",
            leaf_count.saturating_sub(1)
        );
        Dendrogram { leaf_count, merges }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The merges, sorted by Ward distance.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Flat clustering with exactly `k` clusters (1 ≤ k ≤ leaves):
    /// applies the first `n − k` merges and labels the resulting groups
    /// `0..k` in order of their smallest leaf.
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        assert!(
            (1..=self.leaf_count.max(1)).contains(&k),
            "k = {k} out of range for {} leaves",
            self.leaf_count
        );
        self.cut_after(self.leaf_count - k)
    }

    /// Flat clustering keeping only merges with `distance <= threshold`.
    pub fn cut_distance(&self, threshold: f64) -> Vec<usize> {
        let applied = self.merges.partition_point(|m| m.distance <= threshold);
        self.cut_after(applied)
    }

    /// The `k` highest merges (the annotated inner nodes of Figure 1),
    /// highest first, as `(distance, size)` pairs.
    pub fn top_merges(&self, k: usize) -> Vec<(f64, usize)> {
        self.merges
            .iter()
            .rev()
            .take(k)
            .map(|m| (m.distance, m.size))
            .collect()
    }

    /// Applies the first `applied` merges via union-find and returns
    /// dense cluster labels.
    fn cut_after(&self, applied: usize) -> Vec<usize> {
        let n = self.leaf_count;
        if n == 0 {
            return Vec::new();
        }
        // Union-find over leaf ids and internal ids n..n+applied.
        let mut parent: Vec<usize> = (0..n + applied).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (s, m) in self.merges[..applied].iter().enumerate() {
            let internal = n + s;
            let l = find(&mut parent, m.left);
            let r = find(&mut parent, m.right);
            parent[l] = internal;
            parent[r] = internal;
        }
        // Dense labels in order of first appearance over leaves.
        let mut label_of_root: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for leaf in 0..n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            out.push(label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dendrogram over 4 leaves: (0,1)@1, (2,3)@2, join@5.
    fn sample() -> Dendrogram {
        Dendrogram::new(
            4,
            vec![
                Merge {
                    left: 0,
                    right: 1,
                    distance: 1.0,
                    size: 2,
                },
                Merge {
                    left: 2,
                    right: 3,
                    distance: 2.0,
                    size: 2,
                },
                Merge {
                    left: 4,
                    right: 5,
                    distance: 5.0,
                    size: 4,
                },
            ],
        )
    }

    #[test]
    fn cut_into_singletons() {
        assert_eq!(sample().cut_k(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_into_two() {
        assert_eq!(sample().cut_k(2), vec![0, 0, 1, 1]);
    }

    #[test]
    fn cut_into_one() {
        assert_eq!(sample().cut_k(1), vec![0, 0, 0, 0]);
    }

    #[test]
    fn cut_into_three_applies_lowest_merge() {
        assert_eq!(sample().cut_k(3), vec![0, 0, 1, 2]);
    }

    #[test]
    fn cut_by_distance() {
        let d = sample();
        assert_eq!(d.cut_distance(0.5), vec![0, 1, 2, 3]);
        assert_eq!(d.cut_distance(1.5), vec![0, 0, 1, 2]);
        assert_eq!(d.cut_distance(3.0), vec![0, 0, 1, 1]);
        assert_eq!(d.cut_distance(10.0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn top_merges_highest_first() {
        let t = sample().top_merges(2);
        assert_eq!(t, vec![(5.0, 4), (2.0, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cut_zero_rejected() {
        sample().cut_k(0);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn wrong_merge_count_rejected() {
        Dendrogram::new(3, vec![]);
    }

    #[test]
    fn single_leaf() {
        let d = Dendrogram::new(1, vec![]);
        assert_eq!(d.cut_k(1), vec![0]);
        assert!(d.top_merges(3).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::jaccard::CondensedMatrix;
    use crate::ward::ward_linkage;
    use proptest::prelude::*;

    fn random_dendrogram() -> impl Strategy<Value = Dendrogram> {
        (2usize..12).prop_flat_map(|n| {
            prop::collection::vec(0.1f64..10.0, n * (n - 1) / 2).prop_map(move |vals| {
                let mut m = CondensedMatrix::zeros(n);
                let mut it = vals.into_iter();
                for i in 0..n {
                    for j in (i + 1)..n {
                        m.set(i, j, it.next().unwrap());
                    }
                }
                Dendrogram::new(n, ward_linkage(&m))
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// cut_k yields exactly k clusters, and coarser cuts merge finer
        /// ones (nesting property of hierarchical clusterings).
        #[test]
        fn cuts_nest(d in random_dendrogram()) {
            let n = d.leaf_count();
            for k in 1..=n {
                let labels = d.cut_k(k);
                let distinct = {
                    let mut l = labels.clone();
                    l.sort_unstable();
                    l.dedup();
                    l.len()
                };
                prop_assert_eq!(distinct, k);
            }
            for k in 1..n {
                let coarse = d.cut_k(k);
                let fine = d.cut_k(k + 1);
                // Same fine cluster ⇒ same coarse cluster.
                for i in 0..n {
                    for j in 0..n {
                        if fine[i] == fine[j] {
                            prop_assert_eq!(coarse[i], coarse[j]);
                        }
                    }
                }
            }
        }
    }
}
