//! Disjoint node partitions.
//!
//! A [`Partition`] assigns every node to exactly one community — the
//! non-overlapping decomposition Algorithm 1 requires ("since the
//! communities do not have any intersection, the Write-Write conflicts
//! can be completely avoided").

use serde::{Deserialize, Serialize};
use viralcast_graph::NodeId;

/// A disjoint partition of nodes `0..n` into dense communities
/// `0..community_count`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    membership: Vec<usize>,
    community_count: usize,
}

impl Partition {
    /// Builds a partition from raw membership labels, compacting the
    /// label space to `0..k` while preserving first-appearance order.
    pub fn from_membership(raw: &[usize]) -> Self {
        let mut remap: Vec<Option<usize>> = Vec::new();
        let mut membership = Vec::with_capacity(raw.len());
        let mut next = 0usize;
        for &label in raw {
            if label >= remap.len() {
                remap.resize(label + 1, None);
            }
            let dense = *remap[label].get_or_insert_with(|| {
                let d = next;
                next += 1;
                d
            });
            membership.push(dense);
        }
        Partition {
            membership,
            community_count: next,
        }
    }

    /// The all-singletons partition over `n` nodes.
    pub fn singletons(n: usize) -> Self {
        Partition {
            membership: (0..n).collect(),
            community_count: n,
        }
    }

    /// One community containing every node.
    pub fn whole(n: usize) -> Self {
        Partition {
            membership: vec![0; n],
            community_count: if n == 0 { 0 } else { 1 },
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.membership.len()
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.community_count
    }

    /// Community of node `u`.
    #[inline]
    pub fn community_of(&self, u: NodeId) -> usize {
        self.membership[u.index()]
    }

    /// The raw dense membership array.
    pub fn membership(&self) -> &[usize] {
        &self.membership
    }

    /// Community member lists, indexed by community id; members sorted.
    pub fn communities(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.community_count];
        for (i, &c) in self.membership.iter().enumerate() {
            out[c].push(NodeId::new(i));
        }
        out
    }

    /// Community sizes, indexed by community id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.community_count];
        for &c in &self.membership {
            sizes[c] += 1;
        }
        sizes
    }

    /// A coarser partition obtained by merging communities: `groups[i]`
    /// is the new community of old community `i`.
    ///
    /// # Panics
    /// Panics if `groups.len() != community_count`.
    pub fn coarsen(&self, groups: &[usize]) -> Partition {
        assert_eq!(
            groups.len(),
            self.community_count,
            "coarsening map must cover every community"
        );
        let raw: Vec<usize> = self.membership.iter().map(|&c| groups[c]).collect();
        Partition::from_membership(&raw)
    }

    /// Whether `other` refines `self` (every community of `other` is
    /// contained in one community of `self`).
    pub fn is_refined_by(&self, other: &Partition) -> bool {
        if self.node_count() != other.node_count() {
            return false;
        }
        // Map each community of `other` to the `self`-community of its
        // first member and check consistency.
        let mut rep: Vec<Option<usize>> = vec![None; other.community_count];
        for (i, &oc) in other.membership.iter().enumerate() {
            let sc = self.membership[i];
            match rep[oc] {
                None => rep[oc] = Some(sc),
                Some(existing) if existing != sc => return false,
                _ => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_membership_compacts_labels() {
        let p = Partition::from_membership(&[7, 7, 3, 9, 3]);
        assert_eq!(p.community_count(), 3);
        assert_eq!(p.membership(), &[0, 0, 1, 2, 1]);
    }

    #[test]
    fn singletons_and_whole() {
        let s = Partition::singletons(4);
        assert_eq!(s.community_count(), 4);
        let w = Partition::whole(4);
        assert_eq!(w.community_count(), 1);
        assert!(w.is_refined_by(&s));
        assert!(!s.is_refined_by(&w));
    }

    #[test]
    fn communities_listing() {
        let p = Partition::from_membership(&[0, 1, 0, 1, 2]);
        let cs = p.communities();
        assert_eq!(cs[0], vec![NodeId(0), NodeId(2)]);
        assert_eq!(cs[1], vec![NodeId(1), NodeId(3)]);
        assert_eq!(cs[2], vec![NodeId(4)]);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn coarsen_merges_groups() {
        let p = Partition::from_membership(&[0, 1, 2, 3]);
        let merged = p.coarsen(&[0, 0, 1, 1]);
        assert_eq!(merged.community_count(), 2);
        assert_eq!(merged.membership(), &[0, 0, 1, 1]);
        assert!(merged.is_refined_by(&p));
    }

    #[test]
    fn refinement_is_reflexive() {
        let p = Partition::from_membership(&[0, 1, 0, 2]);
        assert!(p.is_refined_by(&p));
    }

    #[test]
    fn refinement_rejects_cross_cutting() {
        let a = Partition::from_membership(&[0, 0, 1, 1]);
        let b = Partition::from_membership(&[0, 1, 1, 0]);
        assert!(!a.is_refined_by(&b));
    }

    #[test]
    fn refinement_rejects_size_mismatch() {
        let a = Partition::whole(3);
        let b = Partition::whole(4);
        assert!(!a.is_refined_by(&b));
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn coarsen_shape_checked() {
        Partition::from_membership(&[0, 1]).coarsen(&[0]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_membership(&[]);
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.community_count(), 0);
        assert!(p.communities().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Compaction is idempotent and preserves co-membership.
        #[test]
        fn compaction_preserves_structure(raw in prop::collection::vec(0usize..10, 0..50)) {
            let p = Partition::from_membership(&raw);
            for i in 0..raw.len() {
                for j in 0..raw.len() {
                    prop_assert_eq!(
                        raw[i] == raw[j],
                        p.membership()[i] == p.membership()[j]
                    );
                }
            }
            let q = Partition::from_membership(p.membership());
            prop_assert_eq!(p.membership(), q.membership());
        }

        /// Sizes sum to the node count and every community is non-empty.
        #[test]
        fn sizes_partition_nodes(raw in prop::collection::vec(0usize..8, 1..60)) {
            let p = Partition::from_membership(&raw);
            let sizes = p.sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), raw.len());
            prop_assert!(sizes.iter().all(|&s| s > 0));
        }

        /// Coarsening always yields a partition refined by the original.
        #[test]
        fn coarsen_refinement(raw in prop::collection::vec(0usize..6, 1..40), merge_mod in 1usize..4) {
            let p = Partition::from_membership(&raw);
            let groups: Vec<usize> = (0..p.community_count()).map(|c| c % merge_mod).collect();
            let coarse = p.coarsen(&groups);
            prop_assert!(coarse.is_refined_by(&p));
        }
    }
}
