//! SLPA — Speaker-Listener Label Propagation (Xie, Szymanski & Liu,
//! ICDMW 2011), the community-detection step of Section IV-B.
//!
//! Every node keeps a memory of labels, initialised with its own id. In
//! each of `iterations` rounds, every node in turn plays *listener*: each
//! of its neighbours (*speakers*) utters one label drawn from its own
//! memory with probability proportional to that label's frequency, the
//! listener tallies the utterances weighted by edge weight, and appends
//! the winning label to its memory. Post-processing keeps, per node, the
//! labels whose memory frequency clears a threshold `r` (overlapping
//! output) and the most frequent label (disjoint output — what the
//! parallel inference uses).
//!
//! The implementation is deterministic given the seed: label memories are
//! stored as sorted vectors and all tie-breaks favour the smallest label.

use crate::partition::Partition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use viralcast_graph::{DiGraph, NodeId};
use viralcast_obs as obs;

/// SLPA parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlpaConfig {
    /// Number of speaker-listener rounds (the original paper suggests
    /// ≥ 20; memories then hold `iterations + 1` labels).
    pub iterations: usize,
    /// Post-processing probability threshold for the overlapping output.
    pub threshold: f64,
    /// RNG seed; the run is fully deterministic given this.
    pub seed: u64,
}

impl Default for SlpaConfig {
    fn default() -> Self {
        SlpaConfig {
            iterations: 30,
            threshold: 0.1,
            seed: 0x51_9A,
        }
    }
}

/// A label memory: sorted `(label, count)` pairs.
#[derive(Clone, Debug, Default)]
struct Memory {
    entries: Vec<(usize, u32)>,
    total: u32,
}

impl Memory {
    fn with_initial(label: usize) -> Self {
        Memory {
            entries: vec![(label, 1)],
            total: 1,
        }
    }

    fn add(&mut self, label: usize) {
        match self.entries.binary_search_by_key(&label, |e| e.0) {
            Ok(i) => self.entries[i].1 += 1,
            Err(i) => self.entries.insert(i, (label, 1)),
        }
        self.total += 1;
    }

    /// Samples a label proportionally to its count.
    fn speak<R: Rng>(&self, rng: &mut R) -> usize {
        debug_assert!(self.total > 0);
        let mut pick = rng.gen_range(0..self.total);
        for &(label, count) in &self.entries {
            if pick < count {
                return label;
            }
            pick -= count;
        }
        unreachable!("memory total inconsistent")
    }

    /// Most frequent label, smallest label on ties.
    fn dominant(&self) -> usize {
        self.entries
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|&(l, _)| l)
            .expect("memory never empty")
    }

    /// Labels with frequency ≥ threshold.
    fn above(&self, threshold: f64) -> Vec<usize> {
        self.entries
            .iter()
            .filter(|&&(_, c)| c as f64 / self.total as f64 >= threshold)
            .map(|&(l, _)| l)
            .collect()
    }
}

/// The SLPA detector.
#[derive(Clone, Debug)]
pub struct Slpa {
    config: SlpaConfig,
}

/// SLPA output: the disjoint partition plus the overlapping memberships.
#[derive(Clone, Debug)]
pub struct SlpaResult {
    /// Disjoint communities from each node's dominant label.
    pub partition: Partition,
    /// Per node, the labels clearing the probability threshold
    /// (overlapping communities; labels are raw, not compacted).
    pub overlapping: Vec<Vec<usize>>,
}

impl Slpa {
    /// Creates a detector with the given configuration.
    pub fn new(config: SlpaConfig) -> Self {
        assert!(config.iterations > 0, "SLPA needs at least one round");
        assert!(
            (0.0..=1.0).contains(&config.threshold),
            "threshold must be a probability"
        );
        Slpa { config }
    }

    /// Runs SLPA on the undirected view of `graph` (callers typically
    /// pass a co-occurrence graph symmetrised via
    /// [`viralcast_graph::DiGraph::to_undirected`]).
    ///
    /// ```
    /// use viralcast_community::{Slpa, SlpaConfig};
    /// use viralcast_graph::{GraphBuilder, NodeId};
    ///
    /// // Two triangles joined by one weak edge.
    /// let mut b = GraphBuilder::new(6);
    /// for base in [0u32, 3] {
    ///     b.add_undirected_edge(NodeId(base), NodeId(base + 1), 1.0);
    ///     b.add_undirected_edge(NodeId(base + 1), NodeId(base + 2), 1.0);
    ///     b.add_undirected_edge(NodeId(base), NodeId(base + 2), 1.0);
    /// }
    /// b.add_undirected_edge(NodeId(2), NodeId(3), 0.05);
    /// let result = Slpa::new(SlpaConfig::default()).run(&b.build());
    /// assert_eq!(result.partition.node_count(), 6);
    /// ```
    pub fn run(&self, graph: &DiGraph) -> SlpaResult {
        let _span = obs::Span::enter("slpa");
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut memories: Vec<Memory> = (0..n).map(Memory::with_initial).collect();
        let mut order: Vec<usize> = (0..n).collect();

        for _ in 0..self.config.iterations {
            shuffle(&mut order, &mut rng);
            for &listener in &order {
                let lu = NodeId::new(listener);
                let neighbors = graph.out_neighbors(lu);
                if neighbors.is_empty() {
                    continue;
                }
                let weights = graph.out_weights(lu);
                // Tally weighted utterances; small sorted vec keeps the
                // iteration order deterministic.
                let mut votes: Vec<(usize, f64)> = Vec::with_capacity(neighbors.len());
                for (&speaker, &w) in neighbors.iter().zip(weights) {
                    let label = memories[speaker.index()].speak(&mut rng);
                    match votes.binary_search_by_key(&label, |v| v.0) {
                        Ok(i) => votes[i].1 += w,
                        Err(i) => votes.insert(i, (label, w)),
                    }
                }
                // Ties are broken uniformly at random (deterministic via
                // the seeded rng): a fixed tie-break such as "smallest
                // label" systematically floods low node ids across weak
                // inter-community bridges and merges planted blocks.
                let max_w = votes.iter().map(|v| v.1).fold(f64::NEG_INFINITY, f64::max);
                let top: Vec<usize> = votes
                    .iter()
                    .filter(|v| v.1 >= max_w - 1e-12)
                    .map(|v| v.0)
                    .collect();
                let winner = top[rng.gen_range(0..top.len())];
                memories[listener].add(winner);
            }
        }

        let raw: Vec<usize> = memories.iter().map(Memory::dominant).collect();
        let overlapping = memories
            .iter()
            .map(|m| m.above(self.config.threshold))
            .collect();
        let partition = Partition::from_membership(&raw);
        obs::metrics()
            .counter("slpa.iterations")
            .incr(self.config.iterations as u64);
        obs::metrics()
            .gauge("slpa.communities")
            .set(partition.community_count() as f64);
        obs::info(
            "slpa",
            "label propagation finished",
            &[
                ("nodes", n.into()),
                ("iterations", self.config.iterations.into()),
                ("communities", partition.community_count().into()),
            ],
        );
        SlpaResult {
            partition,
            overlapping,
        }
    }
}

/// Fisher–Yates shuffle (avoids pulling in rand's `SliceRandom` trait for
/// one call site and keeps the sampling sequence explicit).
fn shuffle<R: Rng>(xs: &mut [usize], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viralcast_graph::{sbm, GraphBuilder, SbmConfig};

    fn two_cliques_with_bridge() -> DiGraph {
        // Clique {0,1,2,3} and clique {4,5,6,7}, one weak bridge 3-4.
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_undirected_edge(NodeId(base + i), NodeId(base + j), 1.0);
                }
            }
        }
        b.add_undirected_edge(NodeId(3), NodeId(4), 0.05);
        b.build()
    }

    #[test]
    fn separates_two_cliques() {
        // SLPA is stochastic; on tiny graphs a single run can fragment a
        // clique, so require a clear majority of perfect separations
        // across seeds (empirically ~95 % succeed).
        let g = two_cliques_with_bridge();
        let mut perfect = 0;
        for seed in 0..9u64 {
            let cfg = SlpaConfig {
                seed,
                ..SlpaConfig::default()
            };
            let p = Slpa::new(cfg).run(&g).partition;
            let clean = (1..4u32).all(|i| {
                p.community_of(NodeId(0)) == p.community_of(NodeId(i))
                    && p.community_of(NodeId(4)) == p.community_of(NodeId(4 + i))
            }) && p.community_of(NodeId(0)) != p.community_of(NodeId(4));
            if clean {
                perfect += 1;
            }
        }
        assert!(perfect >= 6, "only {perfect}/9 seeds separated the cliques");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = two_cliques_with_bridge();
        let a = Slpa::new(SlpaConfig::default()).run(&g).partition;
        let b = Slpa::new(SlpaConfig::default()).run(&g).partition;
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_nodes_keep_own_labels() {
        let g = DiGraph::empty(3);
        let result = Slpa::new(SlpaConfig::default()).run(&g);
        assert_eq!(result.partition.community_count(), 3);
    }

    #[test]
    fn overlapping_includes_dominant_label() {
        let g = two_cliques_with_bridge();
        let result = Slpa::new(SlpaConfig::default()).run(&g);
        for (node, labels) in result.overlapping.iter().enumerate() {
            assert!(
                !labels.is_empty(),
                "node {node} lost all labels in post-processing"
            );
        }
    }

    #[test]
    fn recovers_planted_sbm_blocks() {
        // A small, strongly separated SBM: SLPA should recover blocks
        // nearly perfectly (checked via pairwise agreement > 0.9).
        let cfg = SbmConfig {
            nodes: 120,
            community_size: 30,
            intra_prob: 0.5,
            inter_prob: 0.005,
        };
        let g = sbm::generate(&cfg, &mut StdRng::seed_from_u64(1));
        let gt = cfg.ground_truth();
        let p = Slpa::new(SlpaConfig::default()).run(&g).partition;
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..cfg.nodes {
            for j in (i + 1)..cfg.nodes {
                total += 1;
                let same_gt = gt[i] == gt[j];
                let same_p = p.community_of(NodeId::new(i)) == p.community_of(NodeId::new(j));
                if same_gt == same_p {
                    agree += 1;
                }
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.9, "pairwise agreement {rate} too low");
    }

    #[test]
    fn memory_speak_distribution_tracks_counts() {
        let mut m = Memory::with_initial(2);
        for _ in 0..9 {
            m.add(5);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let fives = (0..1000).filter(|_| m.speak(&mut rng) == 5).count();
        // Label 5 holds 9/10 of the memory.
        assert!((850..=950).contains(&fives), "got {fives}");
    }

    #[test]
    fn memory_dominant_breaks_ties_low() {
        let mut m = Memory::with_initial(4);
        m.add(1);
        // counts: {4:1, 1:1} — tie broken towards smaller label.
        assert_eq!(m.dominant(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_iterations_rejected() {
        Slpa::new(SlpaConfig {
            iterations: 0,
            ..SlpaConfig::default()
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use viralcast_graph::GraphBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// SLPA always outputs a full partition covering every node.
        #[test]
        fn output_is_total_partition(
            edges in prop::collection::vec((0u32..12, 0u32..12, 0.1f64..2.0), 0..50),
            seed in 0u64..100,
        ) {
            let mut b = GraphBuilder::new(12);
            for &(u, v, w) in &edges {
                if u != v {
                    b.add_undirected_edge(NodeId(u), NodeId(v), w);
                }
            }
            let g = b.build();
            let cfg = SlpaConfig { iterations: 10, threshold: 0.1, seed };
            let result = Slpa::new(cfg).run(&g);
            prop_assert_eq!(result.partition.node_count(), 12);
            prop_assert!(result.partition.community_count() >= 1);
            prop_assert!(result.partition.community_count() <= 12);
        }
    }
}
