//! The frequent co-occurrence graph of Section IV-B.
//!
//! For two nodes `u`, `v`, with `c(u)` the number of cascades containing
//! `u` and `c(u, v)` the number of cascades in which `u` is infected
//! strictly before `v`, the directed edge weight is
//!
//! ```text
//! w(u, v) = 2 c(u, v) / (c(u) + c(v))   ∈ [0, 1]
//! ```
//!
//! The paper runs SLPA on this graph to find the communities that drive
//! the parallel decomposition. Input here is deliberately minimal — any
//! slice of time-ordered node sequences — so the propagation crate (which
//! depends on this one) can feed real cascades in without a cyclic
//! dependency.

use crate::digraph::{DiGraph, GraphBuilder};
use crate::node::NodeId;
use std::collections::HashMap;
use viralcast_obs as obs;

/// The co-occurrence graph plus the per-node cascade counts that produced
/// it.
#[derive(Clone, Debug)]
pub struct CooccurrenceGraph {
    graph: DiGraph,
    cascade_counts: Vec<usize>,
}

/// Options bounding the pair-counting work.
#[derive(Clone, Copy, Debug)]
pub struct CooccurrenceOptions {
    /// Ordered pairs are only counted within a sliding window of this many
    /// successors per node; `None` counts all `O(s²)` pairs as the paper
    /// does. Very long cascades make the quadratic count expensive, and
    /// influence decays with delay anyway (eq. 12's `(t_l − t_v)` term), so
    /// a window is a faithful approximation for huge inputs.
    pub successor_window: Option<usize>,
    /// Drop edges whose final weight falls below this threshold.
    pub min_weight: f64,
}

impl Default for CooccurrenceOptions {
    fn default() -> Self {
        CooccurrenceOptions {
            successor_window: None,
            min_weight: 0.0,
        }
    }
}

impl CooccurrenceGraph {
    /// Builds the co-occurrence graph from time-ordered node sequences.
    ///
    /// Each inner slice must list the distinct nodes of one cascade in
    /// infection order (earliest first). `n` is the number of nodes in the
    /// universe.
    ///
    /// ```
    /// use viralcast_graph::cooccurrence::{CooccurrenceGraph, CooccurrenceOptions};
    /// use viralcast_graph::NodeId;
    ///
    /// // One cascade where node 0 precedes node 1.
    /// let sequences = vec![vec![NodeId(0), NodeId(1)]];
    /// let g = CooccurrenceGraph::build(2, &sequences, CooccurrenceOptions::default());
    /// // w(0, 1) = 2·c(0,1) / (c(0) + c(1)) = 2·1 / (1 + 1) = 1.
    /// assert_eq!(g.graph().edge_weight(NodeId(0), NodeId(1)), Some(1.0));
    /// assert_eq!(g.graph().edge_weight(NodeId(1), NodeId(0)), None);
    /// ```
    pub fn build(n: usize, sequences: &[Vec<NodeId>], options: CooccurrenceOptions) -> Self {
        let _span = obs::Span::enter("cooccurrence");
        let mut cascade_counts = vec![0usize; n];
        let mut pair_counts: HashMap<(NodeId, NodeId), usize> = HashMap::new();

        for seq in sequences {
            for &u in seq {
                cascade_counts[u.index()] += 1;
            }
            for (i, &u) in seq.iter().enumerate() {
                let end = match options.successor_window {
                    Some(w) => (i + 1 + w).min(seq.len()),
                    None => seq.len(),
                };
                for &v in &seq[i + 1..end] {
                    *pair_counts.entry((u, v)).or_insert(0) += 1;
                }
            }
        }

        let mut b = GraphBuilder::with_capacity(n, pair_counts.len());
        for (&(u, v), &cuv) in &pair_counts {
            let denom = cascade_counts[u.index()] + cascade_counts[v.index()];
            if denom == 0 {
                continue;
            }
            let w = 2.0 * cuv as f64 / denom as f64;
            if w >= options.min_weight {
                b.add_edge(u, v, w);
            }
        }
        let graph = b.build();
        obs::metrics()
            .counter("cooccurrence.sequences")
            .incr(sequences.len() as u64);
        obs::metrics()
            .gauge("cooccurrence.edges")
            .set(graph.edge_count() as f64);
        obs::debug(
            "cooccurrence",
            "graph built",
            &[
                ("nodes", n.into()),
                ("sequences", sequences.len().into()),
                ("edges", graph.edge_count().into()),
            ],
        );
        CooccurrenceGraph {
            graph,
            cascade_counts,
        }
    }

    /// The directed weighted graph with `w(u, v)` weights.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Consumes self, returning the directed graph.
    pub fn into_graph(self) -> DiGraph {
        self.graph
    }

    /// `c(u)` — the number of cascades containing `u`.
    pub fn cascade_count(&self, u: NodeId) -> usize {
        self.cascade_counts[u.index()]
    }

    /// The symmetrised view used by community detection.
    pub fn undirected(&self) -> DiGraph {
        self.graph.to_undirected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn weight_formula_on_a_single_cascade() {
        // One cascade 0 -> 1: c(0) = c(1) = 1, c(0,1) = 1, w = 2/2 = 1.
        let g = CooccurrenceGraph::build(2, &[ids(&[0, 1])], CooccurrenceOptions::default());
        assert_eq!(g.graph().edge_weight(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.graph().edge_weight(NodeId(1), NodeId(0)), None);
    }

    #[test]
    fn weight_is_directional_by_infection_order() {
        // Cascade A: 0 before 1. Cascade B: 1 before 0.
        let seqs = vec![ids(&[0, 1]), ids(&[1, 0])];
        let g = CooccurrenceGraph::build(2, &seqs, CooccurrenceOptions::default());
        // c(0) = c(1) = 2, c(0,1) = c(1,0) = 1, w = 2*1/4 = 0.5 each way.
        assert_eq!(g.graph().edge_weight(NodeId(0), NodeId(1)), Some(0.5));
        assert_eq!(g.graph().edge_weight(NodeId(1), NodeId(0)), Some(0.5));
    }

    #[test]
    fn weights_lie_in_unit_interval() {
        let seqs = vec![
            ids(&[0, 1, 2, 3]),
            ids(&[2, 0, 3]),
            ids(&[1, 2]),
            ids(&[3, 1, 0]),
        ];
        let g = CooccurrenceGraph::build(4, &seqs, CooccurrenceOptions::default());
        for (_, _, w) in g.graph().edges() {
            assert!((0.0..=1.0).contains(&w), "weight {w} out of range");
        }
    }

    #[test]
    fn cascade_counts_are_recorded() {
        let seqs = vec![ids(&[0, 1]), ids(&[0, 2]), ids(&[0, 1, 2])];
        let g = CooccurrenceGraph::build(3, &seqs, CooccurrenceOptions::default());
        assert_eq!(g.cascade_count(NodeId(0)), 3);
        assert_eq!(g.cascade_count(NodeId(1)), 2);
        assert_eq!(g.cascade_count(NodeId(2)), 2);
    }

    #[test]
    fn successor_window_limits_pairs() {
        let seqs = vec![ids(&[0, 1, 2, 3])];
        let opts = CooccurrenceOptions {
            successor_window: Some(1),
            min_weight: 0.0,
        };
        let g = CooccurrenceGraph::build(4, &seqs, opts);
        // Only adjacent pairs counted: (0,1), (1,2), (2,3).
        assert_eq!(g.graph().edge_count(), 3);
        assert!(g.graph().has_edge(NodeId(0), NodeId(1)));
        assert!(!g.graph().has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn min_weight_filters_weak_edges() {
        // Pair (0,1) appears once while both appear in 4 cascades:
        // w = 2/8 = 0.25 < 0.3 threshold.
        let seqs = vec![
            ids(&[0, 1]),
            ids(&[0]),
            ids(&[0]),
            ids(&[0]),
            ids(&[1]),
            ids(&[1]),
            ids(&[1]),
        ];
        let opts = CooccurrenceOptions {
            successor_window: None,
            min_weight: 0.3,
        };
        let g = CooccurrenceGraph::build(2, &seqs, opts);
        assert_eq!(g.graph().edge_count(), 0);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = CooccurrenceGraph::build(5, &[], CooccurrenceOptions::default());
        assert_eq!(g.graph().edge_count(), 0);
        assert_eq!(g.cascade_count(NodeId(3)), 0);
    }

    #[test]
    fn undirected_view_is_symmetric() {
        let seqs = vec![ids(&[0, 1, 2]), ids(&[2, 1])];
        let g = CooccurrenceGraph::build(3, &seqs, CooccurrenceOptions::default());
        let u = g.undirected();
        for (a, b, w) in u.edges() {
            assert_eq!(u.edge_weight(b, a), Some(w));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a set of cascades over 12 nodes, each a shuffled subset.
    fn cascades() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
        prop::collection::vec(
            prop::collection::vec(0u32..12, 1..8).prop_map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v.into_iter().map(NodeId).collect::<Vec<_>>()
            }),
            0..25,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// All weights lie in [0, 1] — the paper states this range
        /// explicitly.
        #[test]
        fn weights_bounded(seqs in cascades()) {
            let g = CooccurrenceGraph::build(12, &seqs, CooccurrenceOptions::default());
            for (_, _, w) in g.graph().edges() {
                prop_assert!(w > 0.0 && w <= 1.0 + 1e-12);
            }
        }

        /// Node cascade counts equal direct recounts.
        #[test]
        fn counts_match_recount(seqs in cascades()) {
            let g = CooccurrenceGraph::build(12, &seqs, CooccurrenceOptions::default());
            for u in 0..12u32 {
                let direct = seqs.iter().filter(|s| s.contains(&NodeId(u))).count();
                prop_assert_eq!(g.cascade_count(NodeId(u)), direct);
            }
        }

        /// A window never *adds* edges relative to the unwindowed build.
        #[test]
        fn window_is_a_subgraph(seqs in cascades(), w in 1usize..5) {
            let full = CooccurrenceGraph::build(12, &seqs, CooccurrenceOptions::default());
            let opts = CooccurrenceOptions { successor_window: Some(w), min_weight: 0.0 };
            let windowed = CooccurrenceGraph::build(12, &seqs, opts);
            for (u, v, _) in windowed.graph().edges() {
                prop_assert!(full.graph().has_edge(u, v));
            }
        }
    }
}
