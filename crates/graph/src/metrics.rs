//! Structural graph metrics used to validate generated substrates.
//!
//! The experiments lean on specific structural facts — the SBM's mean
//! degree of ~10, the presence of dense intra-community blocks, the
//! regional components of the backbone — and these helpers turn those
//! facts into checkable numbers.

use crate::digraph::DiGraph;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Population variance of the out-degree.
    pub variance: f64,
}

/// Computes out-degree statistics.
pub fn degree_stats(g: &DiGraph) -> DegreeStats {
    let n = g.node_count();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            variance: 0.0,
        };
    }
    let degs: Vec<usize> = g.nodes().map(|u| g.out_degree(u)).collect();
    let min = *degs.iter().min().unwrap();
    let max = *degs.iter().max().unwrap();
    let mean = degs.iter().sum::<usize>() as f64 / n as f64;
    let variance = degs.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    DegreeStats {
        min,
        max,
        mean,
        variance,
    }
}

/// Edge density of a directed graph: `m / (n (n − 1))`.
pub fn density(g: &DiGraph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    g.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Connected components of the *undirected view* of `g`, largest first.
pub fn connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let und = g.to_undirected();
    let n = und.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let id = out.len();
        out.push(Vec::new());
        comp[s] = id;
        stack.push(NodeId::new(s));
        while let Some(u) = stack.pop() {
            out[id].push(u);
            for &v in und.out_neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = id;
                    stack.push(v);
                }
            }
        }
        out[id].sort_unstable();
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.len()));
    out
}

/// Global clustering coefficient (transitivity) of the undirected view:
/// `3 × #triangles / #connected-triples`.
pub fn global_clustering_coefficient(g: &DiGraph) -> f64 {
    let und = g.to_undirected();
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for u in und.nodes() {
        let nu = und.out_neighbors(u);
        let d = nu.len();
        triples += d * d.saturating_sub(1) / 2;
        // Count edges among neighbours via sorted-slice intersection.
        for (i, &v) in nu.iter().enumerate() {
            if v <= u {
                continue;
            }
            let nv = und.out_neighbors(v);
            for &w in &nu[i + 1..] {
                if w > v && nv.binary_search(&w).is_ok() {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / triples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;

    fn triangle_plus_tail() -> DiGraph {
        // Triangle 0-1-2 with a tail 2-3 (undirected).
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0);
        b.add_undirected_edge(NodeId(1), NodeId(2), 1.0);
        b.add_undirected_edge(NodeId(0), NodeId(2), 1.0);
        b.add_undirected_edge(NodeId(2), NodeId(3), 1.0);
        b.build()
    }

    #[test]
    fn degree_stats_on_known_graph() {
        let g = triangle_plus_tail();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1); // node 3
        assert_eq!(s.max, 3); // node 2
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_complete_digraph() {
        let mut b = GraphBuilder::new(3);
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v), 1.0);
                }
            }
        }
        assert!((density(&b.build()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn components_of_two_islands() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 1.0); // directed suffices
        b.add_edge(NodeId(2), NodeId(3), 1.0);
        let comps = connected_components(&b.build());
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[2], vec![NodeId(4)]);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0);
        b.add_undirected_edge(NodeId(1), NodeId(2), 1.0);
        b.add_undirected_edge(NodeId(0), NodeId(2), 1.0);
        assert!((global_clustering_coefficient(&b.build()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let mut b = GraphBuilder::new(4);
        for v in 1..4u32 {
            b.add_undirected_edge(NodeId(0), NodeId(v), 1.0);
        }
        assert_eq!(global_clustering_coefficient(&b.build()), 0.0);
    }

    #[test]
    fn clustering_triangle_plus_tail() {
        // Triangle+tail: 1 triangle, triples = C(2,2)+C(2,2)+C(3,2)+0 = 1+1+3 = 5.
        let g = triangle_plus_tail();
        let cc = global_clustering_coefficient(&g);
        assert!((cc - 3.0 / 5.0).abs() < 1e-12, "got {cc}");
    }

    #[test]
    fn empty_graph_metrics() {
        let g = DiGraph::empty(0);
        let s = degree_stats(&g);
        assert_eq!(s.mean, 0.0);
        assert_eq!(density(&g), 0.0);
        assert!(connected_components(&g).is_empty());
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::digraph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Components always partition the node set.
        #[test]
        fn components_partition(edges in prop::collection::vec((0u32..10, 0u32..10), 0..40)) {
            let mut b = GraphBuilder::new(10);
            for &(u, v) in &edges {
                b.add_edge(NodeId(u), NodeId(v), 1.0);
            }
            let comps = connected_components(&b.build());
            let total: usize = comps.iter().map(|c| c.len()).sum();
            prop_assert_eq!(total, 10);
        }

        /// Clustering coefficient stays within [0, 1].
        #[test]
        fn clustering_bounded(edges in prop::collection::vec((0u32..8, 0u32..8), 0..30)) {
            let mut b = GraphBuilder::new(8);
            for &(u, v) in &edges {
                if u != v {
                    b.add_undirected_edge(NodeId(u), NodeId(v), 1.0);
                }
            }
            let cc = global_clustering_coefficient(&b.build());
            prop_assert!((0.0..=1.0 + 1e-12).contains(&cc));
        }
    }
}
