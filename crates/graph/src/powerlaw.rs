//! Power-law (Pareto/Zipf) sampling and estimation.
//!
//! Figure 3 of the paper shows the "Matthew effect": the number of events
//! reported per news site follows a power law, with a handful of outlets
//! reporting millions of events while the bulk report 5 000–10 000. The
//! synthetic GDELT world draws site popularities from the continuous
//! Pareto distribution implemented here, and the Figure 3 harness checks
//! the recovered exponent with the Hill maximum-likelihood estimator and a
//! log-binned histogram.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A continuous power-law (Pareto) distribution with density
/// `p(x) ∝ x^(−exponent)` for `x ≥ x_min`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerLaw {
    /// Scaling exponent `γ > 1`.
    pub exponent: f64,
    /// Lower cut-off `x_min > 0` (the paper cuts sites below 5 000 events).
    pub x_min: f64,
}

impl PowerLaw {
    /// Creates a power law, validating the parameter ranges.
    ///
    /// # Panics
    /// Panics if `exponent <= 1` (non-normalisable) or `x_min <= 0`.
    pub fn new(exponent: f64, x_min: f64) -> Self {
        assert!(
            exponent > 1.0,
            "power-law exponent must exceed 1, got {exponent}"
        );
        assert!(x_min > 0.0, "x_min must be positive, got {x_min}");
        PowerLaw { exponent, x_min }
    }

    /// Draws one sample by inverse-CDF: `x = x_min (1 − U)^(−1/(γ−1))`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.x_min * (1.0 - u).powf(-1.0 / (self.exponent - 1.0))
    }

    /// Draws `count` samples.
    pub fn sample_many<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<f64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Hill maximum-likelihood estimate of the exponent from samples that
    /// are all `≥ x_min`: `γ̂ = 1 + n / Σ ln(x_i / x_min)`.
    ///
    /// Returns `None` if no sample clears `x_min`.
    pub fn mle_exponent(samples: &[f64], x_min: f64) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for &x in samples {
            if x >= x_min {
                n += 1;
                sum += (x / x_min).ln();
            }
        }
        if n == 0 || sum <= 0.0 {
            None
        } else {
            Some(1.0 + n as f64 / sum)
        }
    }
}

/// One bar of a logarithmically binned histogram.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
    /// Number of samples in `[lo, hi)`.
    pub count: usize,
}

/// Bins positive samples into `bins_per_decade` logarithmic bins starting
/// at `x_min`; samples below `x_min` are dropped (the paper's Figure 3
/// applies exactly such a cut-off).
pub fn log_binned_histogram(samples: &[f64], x_min: f64, bins_per_decade: usize) -> Vec<LogBin> {
    assert!(x_min > 0.0 && bins_per_decade > 0);
    let max = samples.iter().cloned().fold(x_min, f64::max);
    let ratio = 10f64.powf(1.0 / bins_per_decade as f64);
    let nbins = ((max / x_min).ln() / ratio.ln()).floor() as usize + 1;
    let mut bins: Vec<LogBin> = (0..nbins)
        .map(|i| LogBin {
            lo: x_min * ratio.powi(i as i32),
            hi: x_min * ratio.powi(i as i32 + 1),
            count: 0,
        })
        .collect();
    for &x in samples {
        if x < x_min {
            continue;
        }
        let i = ((x / x_min).ln() / ratio.ln()).floor() as usize;
        let i = i.min(nbins - 1);
        bins[i].count += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_lower_cutoff() {
        let pl = PowerLaw::new(2.3, 5_000.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(pl.sample(&mut rng) >= 5_000.0);
        }
    }

    #[test]
    fn mle_recovers_exponent() {
        let pl = PowerLaw::new(2.5, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let xs = pl.sample_many(50_000, &mut rng);
        let est = PowerLaw::mle_exponent(&xs, 1.0).unwrap();
        assert!(
            (est - 2.5).abs() < 0.05,
            "estimated exponent {est} far from 2.5"
        );
    }

    #[test]
    fn mle_ignores_samples_below_cutoff() {
        let xs = vec![0.5, 0.9, 2.0, 4.0, 8.0];
        let with_cut = PowerLaw::mle_exponent(&xs, 1.0).unwrap();
        let only_tail = PowerLaw::mle_exponent(&[2.0, 4.0, 8.0], 1.0).unwrap();
        assert!((with_cut - only_tail).abs() < 1e-12);
    }

    #[test]
    fn mle_empty_tail_is_none() {
        assert!(PowerLaw::mle_exponent(&[0.1, 0.2], 1.0).is_none());
        assert!(PowerLaw::mle_exponent(&[], 1.0).is_none());
    }

    #[test]
    fn histogram_counts_everything_above_cutoff() {
        let xs = vec![1.0, 2.0, 5.0, 30.0, 99.0, 0.5];
        let bins = log_binned_histogram(&xs, 1.0, 2);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 5); // 0.5 dropped
    }

    #[test]
    fn histogram_edges_are_geometric() {
        let bins = log_binned_histogram(&[1.0, 10.0, 100.0], 1.0, 1);
        for b in &bins {
            assert!((b.hi / b.lo - 10.0).abs() < 1e-9);
        }
        assert!(bins.len() >= 3);
    }

    #[test]
    fn heavier_tail_for_smaller_exponent() {
        // Smaller γ ⇒ heavier tail ⇒ larger high quantiles.
        let mut rng = StdRng::seed_from_u64(3);
        let light = PowerLaw::new(3.5, 1.0).sample_many(20_000, &mut rng);
        let heavy = PowerLaw::new(1.8, 1.0).sample_many(20_000, &mut rng);
        let q = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(v.len() as f64 * 0.999) as usize]
        };
        assert!(q(heavy) > q(light));
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn rejects_flat_exponent() {
        PowerLaw::new(1.0, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every sample lies at or above the cut-off for any valid
        /// parameterisation.
        #[test]
        fn samples_above_xmin(
            exp in 1.1f64..4.0,
            xmin in 0.01f64..1000.0,
            seed in 0u64..10_000,
        ) {
            let pl = PowerLaw::new(exp, xmin);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(pl.sample(&mut rng) >= xmin);
            }
        }

        /// Histogram bins tile [x_min, max] without gaps or overlaps.
        #[test]
        fn histogram_bins_tile(
            xs in prop::collection::vec(1.0f64..1e6, 1..200),
            bpd in 1usize..6,
        ) {
            let bins = log_binned_histogram(&xs, 1.0, bpd);
            for w in bins.windows(2) {
                prop_assert!((w[0].hi - w[1].lo).abs() < 1e-6 * w[0].hi);
            }
            let total: usize = bins.iter().map(|b| b.count).sum();
            prop_assert_eq!(total, xs.len());
        }
    }
}
