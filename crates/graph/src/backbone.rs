//! The co-reporting backbone network of Figure 2.
//!
//! The paper links any two news sites that reported at least 50 events in
//! common over a year, then visualises the result; the regional clusters
//! (US / Australia / Europe) are plainly visible. Here we build the same
//! thresholded graph from `(node, event-set)` style input and expose the
//! quantities the figure conveys: component structure and how strongly
//! edges stay inside ground-truth groups.

use crate::digraph::{DiGraph, GraphBuilder};
use crate::node::NodeId;
use std::collections::HashMap;

/// A thresholded co-reporting graph.
#[derive(Clone, Debug)]
pub struct BackboneGraph {
    graph: DiGraph,
    threshold: usize,
}

impl BackboneGraph {
    /// Builds the backbone from event membership lists.
    ///
    /// `events[e]` lists the (distinct) nodes that reported event `e`.
    /// Two nodes are linked iff they co-report at least `threshold`
    /// events; the edge weight is the co-report count.
    pub fn build(n: usize, events: &[Vec<NodeId>], threshold: usize) -> Self {
        let mut pair_counts: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for members in events {
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    let key = if u < v { (u, v) } else { (v, u) };
                    *pair_counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        let mut b = GraphBuilder::new(n);
        for (&(u, v), &c) in &pair_counts {
            if c >= threshold && u != v {
                b.add_undirected_edge(u, v, c as f64);
            }
        }
        BackboneGraph {
            graph: b.build(),
            threshold,
        }
    }

    /// The underlying symmetric graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The co-report threshold this backbone was built with.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Connected components over nodes with at least one backbone edge.
    /// Isolated nodes are reported in their own singleton components only
    /// if `include_isolated` is set.
    pub fn components(&self, include_isolated: bool) -> Vec<Vec<NodeId>> {
        let n = self.graph.node_count();
        let mut comp = vec![usize::MAX; n];
        let mut out: Vec<Vec<NodeId>> = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let su = NodeId::new(s);
            if self.graph.out_degree(su) == 0 && !include_isolated {
                continue;
            }
            let id = out.len();
            out.push(Vec::new());
            comp[s] = id;
            stack.push(su);
            while let Some(u) = stack.pop() {
                out[id].push(u);
                for &v in self.graph.out_neighbors(u) {
                    if comp[v.index()] == usize::MAX {
                        comp[v.index()] = id;
                        stack.push(v);
                    }
                }
            }
            out[id].sort_unstable();
        }
        out.sort_by_key(|c| std::cmp::Reverse(c.len()));
        out
    }

    /// Fraction of backbone edges whose endpoints share a label under
    /// `labels` (e.g. ground-truth regions). This is the quantitative
    /// stand-in for "the clusters in Figure 2 are regional".
    pub fn label_assortativity(&self, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), self.graph.node_count());
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v, _) in self.graph.edges() {
            if u < v {
                total += 1;
                if labels[u.index()] == labels[v.index()] {
                    intra += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            intra as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn threshold_gates_edges() {
        // Nodes 0,1 co-report twice; 0,2 once.
        let events = vec![ids(&[0, 1, 2]), ids(&[0, 1])];
        let bb = BackboneGraph::build(3, &events, 2);
        assert!(bb.graph().has_edge(NodeId(0), NodeId(1)));
        assert!(!bb.graph().has_edge(NodeId(0), NodeId(2)));
        assert_eq!(bb.threshold(), 2);
    }

    #[test]
    fn edge_weight_is_coreport_count() {
        let events = vec![ids(&[0, 1]), ids(&[0, 1]), ids(&[0, 1])];
        let bb = BackboneGraph::build(2, &events, 1);
        assert_eq!(bb.graph().edge_weight(NodeId(0), NodeId(1)), Some(3.0));
    }

    #[test]
    fn graph_is_symmetric() {
        let events = vec![ids(&[0, 1, 2]), ids(&[1, 2, 3]), ids(&[0, 3])];
        let bb = BackboneGraph::build(4, &events, 1);
        for (u, v, w) in bb.graph().edges() {
            assert_eq!(bb.graph().edge_weight(v, u), Some(w));
        }
    }

    #[test]
    fn components_split_disconnected_regions() {
        // Region A: {0,1}, region B: {2,3}, never co-report across.
        let events = vec![ids(&[0, 1]), ids(&[0, 1]), ids(&[2, 3]), ids(&[2, 3])];
        let bb = BackboneGraph::build(5, &events, 2);
        let comps = bb.components(false);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn isolated_nodes_optional() {
        let events = vec![ids(&[0, 1]), ids(&[0, 1])];
        let bb = BackboneGraph::build(3, &events, 1);
        assert_eq!(bb.components(false).len(), 1);
        assert_eq!(bb.components(true).len(), 2); // + singleton {2}
    }

    #[test]
    fn assortativity_of_regional_world() {
        // All edges intra-region.
        let events = vec![ids(&[0, 1]), ids(&[2, 3])];
        let bb = BackboneGraph::build(4, &events, 1);
        assert_eq!(bb.label_assortativity(&[0, 0, 1, 1]), 1.0);
        // Mixed edge drops the fraction.
        let events = vec![ids(&[0, 1]), ids(&[1, 2])];
        let bb = BackboneGraph::build(4, &events, 1);
        assert_eq!(bb.label_assortativity(&[0, 0, 1, 1]), 0.5);
    }

    #[test]
    fn empty_events_empty_backbone() {
        let bb = BackboneGraph::build(4, &[], 1);
        assert_eq!(bb.graph().edge_count(), 0);
        assert_eq!(bb.label_assortativity(&[0, 0, 0, 0]), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn events() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
        prop::collection::vec(
            prop::collection::btree_set(0u32..10, 0..6)
                .prop_map(|s| s.into_iter().map(NodeId).collect::<Vec<_>>()),
            0..30,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Raising the threshold only removes edges.
        #[test]
        fn threshold_monotone(evs in events(), t in 1usize..4) {
            let lo = BackboneGraph::build(10, &evs, t);
            let hi = BackboneGraph::build(10, &evs, t + 1);
            for (u, v, _) in hi.graph().edges() {
                prop_assert!(lo.graph().has_edge(u, v));
            }
        }

        /// Components partition the covered nodes.
        #[test]
        fn components_are_a_partition(evs in events()) {
            let bb = BackboneGraph::build(10, &evs, 1);
            let comps = bb.components(true);
            let mut seen = [false; 10];
            for c in &comps {
                for &u in c {
                    prop_assert!(!seen[u.index()], "node in two components");
                    seen[u.index()] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
