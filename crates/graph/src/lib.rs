//! Graph substrate for the viralcast reproduction of *Predicting Viral News
//! Events in Online Media* (Lu & Szymanski, IPDPSW 2017).
//!
//! This crate provides everything the higher layers need from graph land:
//!
//! * [`NodeId`] — a compact, copyable node handle used across the workspace.
//! * [`DiGraph`] — an immutable, CSR-backed weighted directed graph, built
//!   through [`GraphBuilder`].
//! * [`sbm`] — the Stochastic Block Model generator used for every synthetic
//!   experiment in the paper (Section VI-A: n = 2000, α = 0.2, β = 0.001).
//! * [`powerlaw`] — Zipf/power-law sampling and maximum-likelihood exponent
//!   estimation, used by the synthetic GDELT world to reproduce the
//!   "Matthew effect" of Figure 3.
//! * [`cooccurrence`] — the frequent co-occurrence graph of Section IV-B,
//!   `w(u,v) = 2 c(u,v) / (c(u) + c(v))`, which feeds SLPA community
//!   detection.
//! * [`backbone`] — the thresholded co-reporting backbone network of
//!   Figure 2.
//! * [`metrics`] — degree statistics, connected components, clustering
//!   coefficients and density, used to sanity-check generated graphs.
//!
//! All generators are deterministic given a seeded RNG; nothing in this
//! crate spawns threads.

#![warn(missing_docs)]

pub mod backbone;
pub mod cooccurrence;
pub mod digraph;
pub mod metrics;
pub mod node;
pub mod powerlaw;
pub mod sbm;

pub use backbone::BackboneGraph;
pub use cooccurrence::CooccurrenceGraph;
pub use digraph::{DiGraph, GraphBuilder};
pub use node::NodeId;
pub use sbm::SbmConfig;
