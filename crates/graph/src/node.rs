//! Compact node identifiers.
//!
//! Node handles are `u32` newtypes: the paper's largest instance (the GDELT
//! world) has six thousand sites and the SBM experiments a few thousand
//! nodes, so 32 bits leave four orders of magnitude of headroom while
//! keeping cascade records and adjacency arrays half the size of a
//! `usize`-based representation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node handle: a dense index into the graph's node range `0..n`.
///
/// `NodeId` is deliberately transparent (`pub u32`) so that hot loops can
/// index embedding matrices without a conversion ceremony, but prefer
/// [`NodeId::index`] in ordinary code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Builds a `NodeId` from a dense `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(
            index <= u32::MAX as usize,
            "node index {index} overflows u32"
        );
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        NodeId::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 65_535, 1_000_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn ordering_matches_underlying_integer() {
        let mut v = vec![NodeId(5), NodeId(1), NodeId(3)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId(7)), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn conversions() {
        let id: NodeId = 9u32.into();
        assert_eq!(u32::from(id), 9);
        let id: NodeId = 11usize.into();
        assert_eq!(id.index(), 11);
    }
}
