//! Stochastic Block Model graph generation (Holland, Laskey & Leinhardt,
//! 1983), the synthetic substrate of the paper's Section VI-A.
//!
//! The paper's configuration: 2 000 nodes, ~40 nodes per community,
//! intra-community edge probability `α = 0.2`, inter-community probability
//! `β = 0.001`, giving an average degree of roughly 10.
//!
//! Edges are sampled with geometric skipping (a.k.a. the "ball-dropping /
//! leap-frog" trick): instead of flipping a Bernoulli coin for every one of
//! the `O(n²)` candidate pairs, we jump directly to the next success with a
//! `Geometric(p)` stride. This makes generation `O(m)` for sparse blocks,
//! which matters once the node sweep of Figure 11 scales the graph up.

use crate::digraph::{DiGraph, GraphBuilder};
use crate::node::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a planted-partition SBM.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SbmConfig {
    /// Total number of nodes.
    pub nodes: usize,
    /// Target community size (the final community absorbs any remainder).
    pub community_size: usize,
    /// Intra-community edge probability (`α` in the paper; 0.2).
    pub intra_prob: f64,
    /// Inter-community edge probability (`β` in the paper; 0.001).
    pub inter_prob: f64,
}

impl SbmConfig {
    /// The configuration used throughout the paper's SBM experiments.
    pub fn paper_default() -> Self {
        SbmConfig {
            nodes: 2_000,
            community_size: 40,
            intra_prob: 0.2,
            inter_prob: 0.001,
        }
    }

    /// Same community structure and densities, different node count
    /// (the Figure 11 sweep uses N = 1 000, 2 000, 4 000).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Community membership implied by this configuration: node `i` belongs
    /// to community `i / community_size` (the last community may be larger
    /// or smaller than the rest by the division remainder).
    pub fn ground_truth(&self) -> Vec<usize> {
        (0..self.nodes).map(|i| i / self.community_size).collect()
    }

    /// Number of planted communities.
    pub fn community_count(&self) -> usize {
        self.nodes.div_ceil(self.community_size)
    }

    /// Expected mean degree of the undirected graph.
    pub fn expected_mean_degree(&self) -> f64 {
        let c = self.community_size as f64;
        let n = self.nodes as f64;
        (c - 1.0) * self.intra_prob + (n - c) * self.inter_prob
    }

    fn validate(&self) {
        assert!(self.nodes > 0, "SBM needs at least one node");
        assert!(self.community_size > 0, "community size must be positive");
        assert!(
            (0.0..=1.0).contains(&self.intra_prob) && (0.0..=1.0).contains(&self.inter_prob),
            "edge probabilities must lie in [0, 1]"
        );
    }
}

/// Generates an undirected SBM graph (stored with both edge directions,
/// unit weights).
pub fn generate<R: Rng>(config: &SbmConfig, rng: &mut R) -> DiGraph {
    config.validate();
    let n = config.nodes;
    let membership = config.ground_truth();
    let expected_edges = (config.expected_mean_degree() * n as f64 / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected_edges * 2 + 16);

    // Enumerate unordered pairs (i, j), i < j, in row-major order of a
    // virtual upper-triangular matrix, skipping by Geometric(p) strides.
    // Rows with the same probability regime are handled per (i, block).
    #[allow(clippy::needless_range_loop)] // i indexes two parallel structures
    for i in 0..n {
        let ci = membership[i];
        // Intra-community stretch: j in (i, end_of_community)
        let intra_end = ((ci + 1) * config.community_size).min(n);
        sample_range(&mut b, rng, i, i + 1, intra_end, config.intra_prob);
        // Inter-community stretch: j in [end_of_community, n)
        sample_range(&mut b, rng, i, intra_end, n, config.inter_prob);
    }
    b.build()
}

/// Adds undirected edges from `i` to a uniform-probability index range
/// `[lo, hi)` using geometric jumps.
fn sample_range<R: Rng>(b: &mut GraphBuilder, rng: &mut R, i: usize, lo: usize, hi: usize, p: f64) {
    if p <= 0.0 || lo >= hi {
        return;
    }
    if p >= 1.0 {
        for j in lo..hi {
            b.add_undirected_edge(NodeId::new(i), NodeId::new(j), 1.0);
        }
        return;
    }
    let log1mp = (1.0 - p).ln();
    let mut j = lo as f64 - 1.0;
    loop {
        // Skip to the next success: floor(ln(U)/ln(1-p)) failures first.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        j += 1.0 + (u.ln() / log1mp).floor();
        if j >= hi as f64 {
            break;
        }
        b.add_undirected_edge(NodeId::new(i), NodeId::new(j as usize), 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_matches_section_vi() {
        let c = SbmConfig::paper_default();
        assert_eq!(c.nodes, 2_000);
        assert_eq!(c.community_count(), 50);
        // "The average degree of nodes is approximately 10."
        let d = c.expected_mean_degree();
        assert!((9.0..11.0).contains(&d), "expected ~10, got {d}");
    }

    #[test]
    fn ground_truth_blocks_are_contiguous() {
        let c = SbmConfig {
            nodes: 10,
            community_size: 4,
            intra_prob: 1.0,
            inter_prob: 0.0,
        };
        assert_eq!(c.ground_truth(), vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        assert_eq!(c.community_count(), 3);
    }

    #[test]
    fn dense_intra_zero_inter_yields_disjoint_cliques() {
        let c = SbmConfig {
            nodes: 12,
            community_size: 4,
            intra_prob: 1.0,
            inter_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let g = generate(&c, &mut rng);
        let gt = c.ground_truth();
        for u in 0..12 {
            for v in 0..12 {
                if u == v {
                    continue;
                }
                let linked = g.has_edge(NodeId::new(u), NodeId::new(v));
                assert_eq!(linked, gt[u] == gt[v], "pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn generated_graph_is_symmetric() {
        let c = SbmConfig {
            nodes: 200,
            community_size: 20,
            intra_prob: 0.3,
            inter_prob: 0.01,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let g = generate(&c, &mut rng);
        for (u, v, _) in g.edges() {
            assert!(g.has_edge(v, u), "missing reverse of ({u}, {v})");
        }
    }

    #[test]
    fn mean_degree_close_to_expectation() {
        let c = SbmConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(42);
        let g = generate(&c, &mut rng);
        let mean = g.edge_count() as f64 / g.node_count() as f64;
        let expect = c.expected_mean_degree();
        assert!(
            (mean - expect).abs() / expect < 0.1,
            "mean degree {mean} vs expected {expect}"
        );
    }

    #[test]
    fn no_self_loops() {
        let c = SbmConfig {
            nodes: 300,
            community_size: 30,
            intra_prob: 0.5,
            inter_prob: 0.02,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let g = generate(&c, &mut rng);
        assert!(g.edges().all(|(u, v, _)| u != v));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = SbmConfig::paper_default().with_nodes(500);
        let g1 = generate(&c, &mut StdRng::seed_from_u64(9));
        let g2 = generate(&c, &mut StdRng::seed_from_u64(9));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn with_nodes_changes_only_node_count() {
        let c = SbmConfig::paper_default().with_nodes(4_000);
        assert_eq!(c.nodes, 4_000);
        assert_eq!(c.community_size, 40);
        assert_eq!(c.community_count(), 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every edge is either intra- or inter-community; with β = 0 all
        /// edges must be intra-community.
        #[test]
        fn zero_inter_prob_means_no_cross_edges(
            seed in 0u64..1000,
            nodes in 20usize..120,
            csize in 5usize..20,
        ) {
            let c = SbmConfig {
                nodes,
                community_size: csize,
                intra_prob: 0.4,
                inter_prob: 0.0,
            };
            let g = generate(&c, &mut StdRng::seed_from_u64(seed));
            let gt = c.ground_truth();
            for (u, v, _) in g.edges() {
                prop_assert_eq!(gt[u.index()], gt[v.index()]);
            }
        }

        /// Degree counts are symmetric because the graph stores both
        /// directions of each undirected edge.
        #[test]
        fn in_degree_equals_out_degree(seed in 0u64..1000) {
            let c = SbmConfig {
                nodes: 80,
                community_size: 10,
                intra_prob: 0.3,
                inter_prob: 0.02,
            };
            let g = generate(&c, &mut StdRng::seed_from_u64(seed));
            let t = g.transpose();
            for u in g.nodes() {
                prop_assert_eq!(g.out_degree(u), t.out_degree(u));
            }
        }
    }
}
