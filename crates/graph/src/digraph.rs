//! Immutable CSR-backed weighted directed graphs.
//!
//! The workspace stores graphs in compressed-sparse-row form: one `offsets`
//! array of length `n + 1` and parallel `targets` / `weights` arrays of
//! length `m`. Neighbour scans are then contiguous slices — the access
//! pattern the inference and community-detection loops hammer — and the
//! whole structure is trivially shareable across rayon workers because it
//! is never mutated after construction.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// An immutable weighted directed graph in CSR form.
///
/// Build one with [`GraphBuilder`]; parallel edges are merged by summing
/// their weights, and self-loops are permitted (generators avoid them, but
/// co-occurrence counting may produce them when a node appears twice in a
/// malformed input — the builder keeps them so callers can detect that).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiGraph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
}

impl DiGraph {
    /// An empty graph over `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        DiGraph {
            n,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges (after merging parallel edges).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId)
    }

    /// Out-neighbours of `u` as a contiguous slice, sorted by target id.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let (lo, hi) = self.row(u);
        &self.targets[lo..hi]
    }

    /// Weights parallel to [`DiGraph::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, u: NodeId) -> &[f64] {
        let (lo, hi) = self.row(u);
        &self.weights[lo..hi]
    }

    /// `(target, weight)` pairs leaving `u`.
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = self.row(u);
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let (lo, hi) = self.row(u);
        hi - lo
    }

    /// Weight of edge `u -> v`, or `None` if absent. `O(log deg(u))`.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let (lo, hi) = self.row(u);
        self.targets[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|i| self.weights[lo + i])
    }

    /// Whether the edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// All edges as `(source, target, weight)` triples in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |u| {
            let u = NodeId::new(u);
            self.out_edges(u).map(move |(v, w)| (u, v, w))
        })
    }

    /// Total weight over all directed edges.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The transposed graph (every edge reversed), preserving weights.
    pub fn transpose(&self) -> DiGraph {
        let mut b = GraphBuilder::new(self.n);
        for (u, v, w) in self.edges() {
            b.add_edge(v, u, w);
        }
        b.build()
    }

    /// The symmetrised graph: for every unordered pair `{u, v}` both
    /// directions carry the *sum* of the original `u->v` and `v->u`
    /// weights. Community detection operates on this view.
    pub fn to_undirected(&self) -> DiGraph {
        let mut b = GraphBuilder::new(self.n);
        for (u, v, w) in self.edges() {
            if u == v {
                b.add_edge(u, v, w);
            } else {
                b.add_edge(u, v, w);
                b.add_edge(v, u, w);
            }
        }
        b.build()
    }

    fn row(&self, u: NodeId) -> (usize, usize) {
        let i = u.index();
        assert!(i < self.n, "node {u} out of range (n = {})", self.n);
        (self.offsets[i], self.offsets[i + 1])
    }
}

/// Accumulates edges and produces a [`DiGraph`].
///
/// Edges may be added in any order; `build` sorts each adjacency row and
/// merges duplicates by summing weights, which is exactly the semantics
/// needed by the co-occurrence counters (each sighting of an ordered pair
/// contributes additively).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl GraphBuilder {
    /// A builder for a graph over `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates room for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes this builder was created for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds a directed edge. Duplicate `(u, v)` pairs are merged at build
    /// time by summing weights.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge ({u}, {v}) out of range (n = {})",
            self.n
        );
        self.edges.push((u, v, w));
    }

    /// Adds `u -> v` and `v -> u` with the same weight.
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        self.add_edge(u, v, w);
        if u != v {
            self.add_edge(v, u, w);
        }
    }

    /// Finalises the CSR arrays.
    pub fn build(mut self) -> DiGraph {
        // Counting sort by source gives O(m) bucketing; rows are then
        // sorted individually so neighbour lookups can binary-search.
        let mut counts = vec![0usize; self.n + 1];
        for &(u, _, _) in &self.edges {
            counts[u.index() + 1] += 1;
        }
        for i in 0..self.n {
            counts[i + 1] += counts[i];
        }
        let offsets_raw = counts.clone();
        let mut slots: Vec<(NodeId, f64)> = vec![(NodeId(0), 0.0); self.edges.len()];
        {
            let mut cursor = counts;
            for &(u, v, w) in &self.edges {
                let c = &mut cursor[u.index()];
                slots[*c] = (v, w);
                *c += 1;
            }
        }
        self.edges.clear();

        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut targets = Vec::with_capacity(slots.len());
        let mut weights = Vec::with_capacity(slots.len());
        offsets.push(0);
        for i in 0..self.n {
            let row = &mut slots[offsets_raw[i]..offsets_raw[i + 1]];
            row.sort_unstable_by_key(|&(v, _)| v);
            let mut j = 0;
            while j < row.len() {
                let (v, mut w) = row[j];
                let mut k = j + 1;
                while k < row.len() && row[k].0 == v {
                    w += row[k].1;
                    k += 1;
                }
                targets.push(v);
                weights.push(w);
                j = k;
            }
            offsets.push(targets.len());
        }

        DiGraph {
            n: self.n,
            offsets,
            targets,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(0), NodeId(2), 2.0);
        b.add_edge(NodeId(1), NodeId(3), 3.0);
        b.add_edge(NodeId(2), NodeId(3), 4.0);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(5);
        for v in [4u32, 1, 3, 2] {
            b.add_edge(NodeId(0), NodeId(v), 1.0);
        }
        let g = b.build();
        assert_eq!(
            g.out_neighbors(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn duplicate_edges_merge_by_summing() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1.5);
        b.add_edge(NodeId(0), NodeId(1), 2.5);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(4.0));
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(2)), Some(2.0));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(0)), None);
        assert!(g.has_edge(NodeId(1), NodeId(3)));
        assert!(!g.has_edge(NodeId(3), NodeId(1)));
    }

    #[test]
    fn transpose_reverses_all_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.edge_count(), g.edge_count());
        for (u, v, w) in g.edges() {
            assert_eq!(t.edge_weight(v, u), Some(w));
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = diamond();
        let tt = g.transpose().transpose();
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = tt.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn to_undirected_sums_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(0), 2.0);
        let g = b.build().to_undirected();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3.0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(3.0));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.out_neighbors(NodeId(2)).is_empty());
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn total_weight_sums_everything() {
        assert_eq!(diamond().total_weight(), 10.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let g2: DiGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = g2.edges().collect();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        /// Building a graph from arbitrary edges preserves the multiset of
        /// merged (u, v) -> total weight entries.
        #[test]
        fn builder_preserves_merged_edge_weights(
            edges in prop::collection::vec((0u32..20, 0u32..20, 0.1f64..10.0), 0..200)
        ) {
            let mut b = GraphBuilder::new(20);
            let mut expect: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            for &(u, v, w) in &edges {
                b.add_edge(NodeId(u), NodeId(v), w);
                *expect.entry((u, v)).or_insert(0.0) += w;
            }
            let g = b.build();
            prop_assert_eq!(g.edge_count(), expect.len());
            for (&(u, v), &w) in &expect {
                let got = g.edge_weight(NodeId(u), NodeId(v)).unwrap();
                prop_assert!((got - w).abs() < 1e-9);
            }
        }

        /// CSR rows are sorted and binary-searchable for every node.
        #[test]
        fn rows_sorted(
            edges in prop::collection::vec((0u32..15, 0u32..15), 0..100)
        ) {
            let mut b = GraphBuilder::new(15);
            for &(u, v) in &edges {
                b.add_edge(NodeId(u), NodeId(v), 1.0);
            }
            let g = b.build();
            for u in g.nodes() {
                let row = g.out_neighbors(u);
                prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
                for &v in row {
                    prop_assert!(g.has_edge(u, v));
                }
            }
        }

        /// Transposition preserves edge count and total weight.
        #[test]
        fn transpose_invariants(
            edges in prop::collection::vec((0u32..12, 0u32..12, 0.5f64..2.0), 0..80)
        ) {
            let mut b = GraphBuilder::new(12);
            for &(u, v, w) in &edges {
                b.add_edge(NodeId(u), NodeId(v), w);
            }
            let g = b.build();
            let t = g.transpose();
            prop_assert_eq!(g.edge_count(), t.edge_count());
            prop_assert!((g.total_weight() - t.total_weight()).abs() < 1e-9);
        }
    }
}
