use rand::rngs::StdRng;
use rand::SeedableRng;
use viralcast_gdelt::{GdeltConfig, GdeltWorld};
use viralcast_propagation::stats::{locality_fraction, size_summary};
use viralcast_propagation::PlantedConfig;

fn main() {
    for (on, off) in [
        (0.5, 0.000005),
        (0.5, 0.000003),
        (0.5, 0.000002),
        (0.5, 0.000008),
    ] {
        let cfg = GdeltConfig {
            sites: 800,
            planted: PlantedConfig {
                on_topic: on,
                off_topic: off,
                jitter: 0.3,
            },
            ..GdeltConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let w = GdeltWorld::generate(cfg, &mut rng);
        let table = w.simulate_events(500, &mut rng);
        let set = table.to_cascade_set();
        let reports = table.reports_per_site();
        let mut order: Vec<usize> = (0..800).collect();
        order.sort_by(|&a, &b| {
            w.sites()[b]
                .popularity
                .partial_cmp(&w.sites()[a].popularity)
                .unwrap()
        });
        let top: f64 = order[..80].iter().map(|&u| reports[u] as f64).sum::<f64>() / 80.0;
        let rest: f64 = order[80..].iter().map(|&u| reports[u] as f64).sum::<f64>() / 720.0;
        let early_frac: f64 = set
            .cascades()
            .iter()
            .map(|c| c.prefix_until(5.0).len() as f64 / c.len() as f64)
            .sum::<f64>()
            / set.len() as f64;
        let s = size_summary(&set);
        println!("on={on} off={off}: mean={:.0} p90={:.0} max={:.0} early5h_frac={:.2} loc={:.2} matthew={:.2}",
            s.mean, s.p90, s.max, early_frac, locality_fraction(&set, &w.region_labels()), top/rest);
    }
}
