//! Hostile-world scenario regimes over the synthetic GDELT world.
//!
//! [`crate::generator`] builds a *benign* world: events arrive at a flat
//! rate, every site exists from hour zero, and every mention is
//! observed. The paper's whole subject is the opposite regime — viral
//! bursts orders of magnitude over baseline — and a production daemon
//! additionally faces timezone cycles, outlets appearing mid-stream, and
//! holes in its observation feed. This module composes those hostilities
//! onto a generated world, all deterministic given the caller's RNG:
//!
//! * **Flash crowds** ([`FlashCrowd`]) — windows where the event arrival
//!   intensity is multiplied by a configured magnitude, globally or in
//!   one region.
//! * **Diurnal cycles** ([`DiurnalCycle`]) — sinusoidal intensity
//!   modulation with a per-region phase offset, so "morning in the US"
//!   is not "morning in Australia".
//! * **Site churn** ([`SiteChurn`]) — a fraction of sites is born
//!   mid-stream; a site never seeds or adopts an event before its birth
//!   hour.
//! * **Censored windows** ([`CensorWindow`]) — absolute-time spans whose
//!   mentions are dropped from the *observed* table (the events still
//!   happened; the feed just missed them).
//!
//! [`ScenarioTimeline::generate`] samples event arrivals from the
//! composed intensity (Poisson per region-hour), seeds each event
//! popularity-proportionally among the sites already born in its region,
//! simulates the cascade on the world's graph, and splits the result
//! into ground truth ([`TimelineEvent`]) and the censored observation
//! ([`ScenarioTimeline::observed`]).

use crate::generator::{sample_cdf, GdeltWorld};
use crate::records::{Mention, MentionTable};
use rand::Rng;
use serde::{Deserialize, Serialize};
use viralcast_graph::NodeId;
use viralcast_propagation::{Cascade, Infection, SimulationConfig, Simulator};

/// A burst window multiplying the baseline event intensity.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Absolute hour the burst begins.
    pub start_hour: f64,
    /// How long it lasts.
    pub duration_hours: f64,
    /// Intensity multiplier over baseline (≥ 1). Overlapping bursts do
    /// not stack: the largest applicable magnitude wins.
    pub magnitude: f64,
    /// Restrict the burst to one region (index 0–3), or `None` for a
    /// world-wide story.
    pub region: Option<usize>,
}

impl FlashCrowd {
    fn applies(&self, region: usize, hour: f64) -> bool {
        self.region.map_or(true, |r| r == region)
            && hour >= self.start_hour
            && hour < self.start_hour + self.duration_hours
    }
}

/// Sinusoidal day/night intensity modulation, phase-shifted per region.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DiurnalCycle {
    /// Modulation depth in `[0, 1)`: intensity swings between
    /// `1 − amplitude` and `1 + amplitude` times baseline.
    pub amplitude: f64,
    /// Cycle length (24 for a day).
    pub period_hours: f64,
    /// Phase offset per region (US, EU, AU, Mixed) in hours — the
    /// timezone shift between the regions' local mornings.
    pub region_phase_hours: [f64; 4],
}

impl Default for DiurnalCycle {
    fn default() -> Self {
        DiurnalCycle {
            amplitude: 0.6,
            period_hours: 24.0,
            // Rough UTC offsets of the paper's regional blocks.
            region_phase_hours: [-5.0, 1.0, 10.0, 0.0],
        }
    }
}

impl DiurnalCycle {
    fn factor(&self, region: usize, hour: f64) -> f64 {
        let phase = (hour + self.region_phase_hours[region]) / self.period_hours;
        (1.0 + self.amplitude * (std::f64::consts::TAU * phase).sin()).max(0.0)
    }
}

/// Sites appearing mid-stream instead of existing from hour zero.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SiteChurn {
    /// Fraction of sites born after the stream starts.
    pub late_fraction: f64,
    /// Late births are uniform in `(0, spread_hours]`.
    pub spread_hours: f64,
}

/// An absolute-time span the observation feed missed: mentions inside it
/// are dropped from the observed table.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CensorWindow {
    /// Start of the blackout (absolute hour, inclusive).
    pub start_hour: f64,
    /// End of the blackout (absolute hour, exclusive).
    pub end_hour: f64,
}

impl CensorWindow {
    fn contains(&self, hour: f64) -> bool {
        hour >= self.start_hour && hour < self.end_hour
    }
}

/// The composed hostile-world configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Length of the simulated stream.
    pub horizon_hours: f64,
    /// Baseline event arrivals per hour across all regions (split by the
    /// world's region weights).
    pub base_events_per_hour: f64,
    /// Burst windows, if any.
    pub flash_crowds: Vec<FlashCrowd>,
    /// Day/night modulation, if any.
    pub diurnal: Option<DiurnalCycle>,
    /// Mid-stream site births, if any.
    pub churn: Option<SiteChurn>,
    /// Observation blackouts, if any.
    pub censored: Vec<CensorWindow>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            horizon_hours: 48.0,
            base_events_per_hour: 10.0,
            flash_crowds: Vec::new(),
            diurnal: None,
            churn: None,
            censored: Vec::new(),
        }
    }
}

/// One event on the timeline: when and where it broke, plus its true
/// (churn-filtered, uncensored) cascade with times relative to
/// `start_hour`.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEvent {
    /// Index into the timeline (and the observed mention table).
    pub event: u32,
    /// Absolute hour the seed outlet broke the story.
    pub start_hour: f64,
    /// Region (0–3) the event was seeded in.
    pub region: usize,
    /// The ground-truth cascade (relative times; the seed is at 0).
    pub cascade: Cascade,
}

/// A generated hostile-world stream: ground truth plus the censored
/// observation of it.
#[derive(Clone, Debug)]
pub struct ScenarioTimeline {
    events: Vec<TimelineEvent>,
    birth_hours: Vec<f64>,
    observed: MentionTable,
    horizon_hours: f64,
}

impl ScenarioTimeline {
    /// Generates a timeline over `world`. Everything — arrivals, births,
    /// seeds, cascades — is drawn from `rng`, so the same world and seed
    /// reproduce the identical stream.
    pub fn generate<R: Rng>(
        world: &GdeltWorld,
        config: &ScenarioConfig,
        rng: &mut R,
    ) -> ScenarioTimeline {
        let sites = world.sites();
        let n = sites.len();

        // --- Births. Default: everyone exists from hour zero.
        let mut birth_hours = vec![0.0f64; n];
        if let Some(churn) = &config.churn {
            for birth in birth_hours.iter_mut() {
                if rng.gen_range(0.0..1.0) < churn.late_fraction {
                    *birth = rng.gen_range(0.0..churn.spread_hours.max(f64::MIN_POSITIVE));
                }
            }
        }

        // --- Arrivals: an inhomogeneous Poisson process per region,
        // sampled hour by hour so bursts and cycles compose by simple
        // multiplication of the bucket intensity.
        let weights = world.config().region_weights;
        let total_weight: f64 = weights.iter().sum();
        let buckets = config.horizon_hours.ceil().max(0.0) as usize;
        let mut arrivals: Vec<(f64, usize)> = Vec::new();
        for bucket in 0..buckets {
            let mid = bucket as f64 + 0.5;
            for (region, weight) in weights.iter().enumerate() {
                let mut intensity = config.base_events_per_hour * (weight / total_weight);
                if let Some(diurnal) = &config.diurnal {
                    intensity *= diurnal.factor(region, mid);
                }
                let burst = config
                    .flash_crowds
                    .iter()
                    .filter(|f| f.applies(region, mid))
                    .map(|f| f.magnitude)
                    .fold(1.0, f64::max);
                intensity *= burst;
                for _ in 0..poisson(intensity, rng) {
                    let t = bucket as f64 + rng.gen_range(0.0..1.0);
                    if t < config.horizon_hours {
                        arrivals.push((t, region));
                    }
                }
            }
        }
        arrivals.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // --- Seed, simulate, churn-filter, censor.
        let sim_config = SimulationConfig {
            observation_window: world.config().observation_hours,
            max_cascade_size: None,
            min_cascade_size: 1,
            max_retries: 0,
        };
        let simulator = Simulator::new(world.graph(), world.ground_truth().clone(), sim_config);
        let regions = world.region_labels();
        let mut events = Vec::with_capacity(arrivals.len());
        let mut observed = Vec::new();
        for (start_hour, region) in arrivals {
            // Popularity-proportional draw over the sites of this region
            // that exist at `start_hour` (falling back to any born site
            // when the region's are all unborn).
            let seed = match born_cdf_draw(sites, &regions, &birth_hours, region, start_hour, rng) {
                Some(seed) => seed,
                None => continue,
            };
            let cascade = simulator.simulate_from(NodeId::new(seed), rng);
            // A site cannot adopt a story before it exists: drop
            // infections that land before the adopter's birth.
            let alive: Vec<Infection> = cascade
                .infections()
                .iter()
                .filter(|inf| birth_hours[inf.node.index()] <= start_hour + inf.time)
                .copied()
                .collect();
            let cascade = match Cascade::new(alive) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let event = events.len() as u32;
            for inf in cascade.infections() {
                let absolute = start_hour + inf.time;
                if config.censored.iter().any(|w| w.contains(absolute)) {
                    continue;
                }
                observed.push(Mention {
                    site: inf.node,
                    event,
                    hour: inf.time,
                });
            }
            events.push(TimelineEvent {
                event,
                start_hour,
                region,
                cascade,
            });
        }

        let observed = MentionTable::new(n, events.len(), observed);
        ScenarioTimeline {
            events,
            birth_hours,
            observed,
            horizon_hours: config.horizon_hours,
        }
    }

    /// The ground-truth events, in arrival order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Birth hour of every site (0 for sites alive from the start).
    pub fn birth_hours(&self) -> &[f64] {
        &self.birth_hours
    }

    /// The censored observation: what a feed consumer actually saw.
    /// Mention hours stay relative to their event's true origin.
    pub fn observed(&self) -> &MentionTable {
        &self.observed
    }

    /// Stream length this timeline was generated for.
    pub fn horizon_hours(&self) -> f64 {
        self.horizon_hours
    }

    /// Events whose seed broke in `[from, to)` — the arrival count a
    /// burst-bound check compares against baseline.
    pub fn arrivals_in(&self, from: f64, to: f64) -> usize {
        self.events
            .iter()
            .filter(|e| e.start_hour >= from && e.start_hour < to)
            .count()
    }
}

/// Draws a site popularity-proportionally among those born by `hour` in
/// `region`, falling back to the whole born population, or `None` when
/// nothing has been born yet.
fn born_cdf_draw<R: Rng>(
    sites: &[crate::site::NewsSite],
    regions: &[usize],
    birth_hours: &[f64],
    region: usize,
    hour: f64,
    rng: &mut R,
) -> Option<usize> {
    let scoped = |restrict: bool| -> (Vec<usize>, Vec<f64>) {
        let mut members = Vec::new();
        let mut cdf = Vec::new();
        let mut acc = 0.0;
        for (u, site) in sites.iter().enumerate() {
            if birth_hours[u] <= hour && (!restrict || regions[u] == region) {
                acc += site.popularity;
                members.push(u);
                cdf.push(acc);
            }
        }
        (members, cdf)
    };
    let (members, cdf) = scoped(true);
    if !members.is_empty() {
        return Some(members[sample_cdf(&cdf, rng)]);
    }
    let (members, cdf) = scoped(false);
    if !members.is_empty() {
        return Some(members[sample_cdf(&cdf, rng)]);
    }
    None
}

/// Poisson draw: Knuth's product-of-uniforms for small intensities, a
/// rounded normal approximation for large ones (where exp(−λ)
/// underflows).
fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (lambda + lambda.sqrt() * gauss).round().max(0.0) as usize;
    }
    let limit = (-lambda).exp();
    let mut count = 0usize;
    let mut product: f64 = rng.gen_range(0.0..1.0);
    while product > limit {
        count += 1;
        product *= rng.gen_range(0.0..1.0);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GdeltConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> GdeltWorld {
        let mut rng = StdRng::seed_from_u64(1);
        GdeltWorld::generate(GdeltConfig::small(), &mut rng)
    }

    fn hostile_config() -> ScenarioConfig {
        ScenarioConfig {
            horizon_hours: 36.0,
            base_events_per_hour: 8.0,
            flash_crowds: vec![FlashCrowd {
                start_hour: 12.0,
                duration_hours: 4.0,
                magnitude: 12.0,
                region: None,
            }],
            diurnal: Some(DiurnalCycle::default()),
            churn: Some(SiteChurn {
                late_fraction: 0.5,
                spread_hours: 24.0,
            }),
            censored: vec![CensorWindow {
                start_hour: 5.0,
                end_hour: 9.0,
            }],
        }
    }

    #[test]
    fn same_seed_yields_the_identical_stream() {
        let w = world();
        let config = hostile_config();
        let a = ScenarioTimeline::generate(&w, &config, &mut StdRng::seed_from_u64(7));
        let b = ScenarioTimeline::generate(&w, &config, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.events(), b.events());
        assert_eq!(a.birth_hours(), b.birth_hours());
        assert_eq!(a.observed().mentions(), b.observed().mentions());
        // A different seed actually changes the stream (the regimes are
        // driven by the RNG, not fixed).
        let c = ScenarioTimeline::generate(&w, &config, &mut StdRng::seed_from_u64(8));
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn flash_crowd_magnitude_stays_within_configured_bounds() {
        let w = world();
        let config = ScenarioConfig {
            horizon_hours: 30.0,
            base_events_per_hour: 8.0,
            flash_crowds: vec![FlashCrowd {
                start_hour: 10.0,
                duration_hours: 4.0,
                magnitude: 12.0,
                region: None,
            }],
            ..ScenarioConfig::default()
        };
        let timeline = ScenarioTimeline::generate(&w, &config, &mut StdRng::seed_from_u64(21));
        let burst = timeline.arrivals_in(10.0, 14.0) as f64 / 4.0;
        let baseline =
            (timeline.arrivals_in(0.0, 10.0) + timeline.arrivals_in(14.0, 30.0)) as f64 / 26.0;
        assert!(baseline > 0.0, "no baseline arrivals");
        let ratio = burst / baseline;
        // The burst rate must reflect the magnitude — well above
        // baseline, and no higher than the configured multiplier plus
        // Poisson slack.
        assert!(ratio > 6.0, "burst ratio {ratio} too small");
        assert!(ratio < 18.0, "burst ratio {ratio} exceeds the magnitude");
        let cap = config.base_events_per_hour * 12.0 * 4.0 * 1.5;
        assert!((timeline.arrivals_in(10.0, 14.0) as f64) < cap);
    }

    #[test]
    fn regional_flash_crowd_spares_other_regions() {
        let w = world();
        let config = ScenarioConfig {
            horizon_hours: 20.0,
            base_events_per_hour: 10.0,
            flash_crowds: vec![FlashCrowd {
                start_hour: 5.0,
                duration_hours: 10.0,
                magnitude: 15.0,
                region: Some(0),
            }],
            ..ScenarioConfig::default()
        };
        let timeline = ScenarioTimeline::generate(&w, &config, &mut StdRng::seed_from_u64(22));
        let in_burst: Vec<_> = timeline
            .events()
            .iter()
            .filter(|e| e.start_hour >= 5.0 && e.start_hour < 15.0)
            .collect();
        let region0 = in_burst.iter().filter(|e| e.region == 0).count();
        let others = in_burst.len() - region0;
        assert!(
            region0 > others * 3,
            "burst should concentrate in region 0: {region0} vs {others}"
        );
    }

    #[test]
    fn churned_sites_never_adopt_before_birth() {
        let w = world();
        let timeline =
            ScenarioTimeline::generate(&w, &hostile_config(), &mut StdRng::seed_from_u64(31));
        let births = timeline.birth_hours();
        let late = births.iter().filter(|&&b| b > 0.0).count();
        assert!(late > 100, "churn produced only {late} late births");
        for event in timeline.events() {
            for inf in event.cascade.infections() {
                assert!(
                    births[inf.node.index()] <= event.start_hour + inf.time + 1e-9,
                    "site {} adopted at {} before its birth at {}",
                    inf.node.index(),
                    event.start_hour + inf.time,
                    births[inf.node.index()]
                );
            }
        }
    }

    #[test]
    fn censored_windows_hold_no_observed_mentions() {
        let w = world();
        let config = hostile_config();
        let timeline = ScenarioTimeline::generate(&w, &config, &mut StdRng::seed_from_u64(41));
        let events = timeline.events();
        let mut censored_truth = 0usize;
        for mention in timeline.observed().mentions() {
            let absolute = events[mention.event as usize].start_hour + mention.hour;
            assert!(
                !(5.0..9.0).contains(&absolute),
                "observed mention at censored hour {absolute}"
            );
        }
        // The blackout actually removed something: ground truth has
        // mentions inside the window.
        for event in events {
            for inf in event.cascade.infections() {
                if (5.0..9.0).contains(&(event.start_hour + inf.time)) {
                    censored_truth += 1;
                }
            }
        }
        assert!(censored_truth > 0, "censor window removed nothing");
    }

    #[test]
    fn diurnal_cycle_peaks_beat_troughs() {
        let w = world();
        let config = ScenarioConfig {
            horizon_hours: 96.0,
            base_events_per_hour: 12.0,
            diurnal: Some(DiurnalCycle {
                amplitude: 0.9,
                period_hours: 24.0,
                region_phase_hours: [0.0; 4],
            }),
            ..ScenarioConfig::default()
        };
        let timeline = ScenarioTimeline::generate(&w, &config, &mut StdRng::seed_from_u64(51));
        // With a shared phase, sin((t/24)·2π) peaks around hour 6 and
        // troughs around hour 18 of each day.
        let mut peak = 0usize;
        let mut trough = 0usize;
        for day in 0..4 {
            let base = day as f64 * 24.0;
            peak += timeline.arrivals_in(base + 4.0, base + 8.0);
            trough += timeline.arrivals_in(base + 16.0, base + 20.0);
        }
        assert!(
            peak > trough * 2,
            "diurnal modulation missing: peak {peak} vs trough {trough}"
        );
    }
}
