//! A small query layer over the mention table.
//!
//! The paper's authors worked GDELT through Google BigQuery ("users can
//! … process the data remotely by SQL commands"). These helpers stand in
//! for the handful of aggregations the paper actually needed: the
//! most-popular-sites ranking, random event sampling (the 5 000 and
//! 2 600 event samples of Sections II and VI-B), and pairwise co-report
//! counts for the backbone network.

use crate::records::MentionTable;
use rand::Rng;
use viralcast_graph::backbone::BackboneGraph;
use viralcast_graph::NodeId;

/// The `k` sites with the most reports, ordered descending, as
/// `(site, report_count)`.
pub fn top_sites(table: &MentionTable, k: usize) -> Vec<(NodeId, usize)> {
    let counts = table.reports_per_site();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
    order
        .into_iter()
        .take(k)
        .map(|u| (NodeId::new(u), counts[u]))
        .collect()
}

/// Uniformly samples `k` distinct event ids (Floyd's algorithm keeps it
/// `O(k)` even for large universes).
pub fn sample_events<R: Rng>(table: &MentionTable, k: usize, rng: &mut R) -> Vec<u32> {
    let n = table.event_count();
    let k = k.min(n);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j) as u32;
        if !chosen.insert(t) {
            chosen.insert(j as u32);
        }
    }
    let mut out: Vec<u32> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Reporting-site sets of a subset of events, for Jaccard clustering.
pub fn site_sets_of(table: &MentionTable, events: &[u32]) -> Vec<Vec<NodeId>> {
    let all = table.event_site_sets();
    events.iter().map(|&e| all[e as usize].clone()).collect()
}

/// Builds the Figure 2 backbone: sites co-reporting at least
/// `threshold` of the given events are linked.
pub fn coreport_backbone(table: &MentionTable, events: &[u32], threshold: usize) -> BackboneGraph {
    let sets = site_sets_of(table, events);
    BackboneGraph::build(table.site_count(), &sets, threshold)
}

/// Events whose total report count exceeds `min_reports` — the "top one
/// million most reported news events" style filter of Section VI-B.
pub fn events_with_min_reports(table: &MentionTable, min_reports: usize) -> Vec<u32> {
    table
        .reports_per_event()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_reports)
        .map(|(e, _)| e as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::Mention;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> MentionTable {
        // Site 0 reports everything; sites 1, 2 split events.
        MentionTable::new(
            3,
            4,
            vec![
                Mention {
                    site: NodeId(0),
                    event: 0,
                    hour: 0.0,
                },
                Mention {
                    site: NodeId(1),
                    event: 0,
                    hour: 1.0,
                },
                Mention {
                    site: NodeId(0),
                    event: 1,
                    hour: 0.0,
                },
                Mention {
                    site: NodeId(1),
                    event: 1,
                    hour: 2.0,
                },
                Mention {
                    site: NodeId(0),
                    event: 2,
                    hour: 0.0,
                },
                Mention {
                    site: NodeId(2),
                    event: 2,
                    hour: 1.0,
                },
                Mention {
                    site: NodeId(0),
                    event: 3,
                    hour: 0.0,
                },
            ],
        )
    }

    #[test]
    fn top_sites_ranked_by_reports() {
        let top = top_sites(&table(), 2);
        assert_eq!(top[0], (NodeId(0), 4));
        assert_eq!(top[1], (NodeId(1), 2));
    }

    #[test]
    fn sample_events_distinct_and_in_range() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sample_events(&t, 3, &mut rng);
        assert_eq!(sample.len(), 3);
        let mut dedup = sample.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        assert!(sample.iter().all(|&e| e < 4));
    }

    #[test]
    fn sample_larger_than_universe_clamps() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_events(&t, 100, &mut rng).len(), 4);
    }

    #[test]
    fn backbone_links_frequent_coreporters() {
        // Sites 0 and 1 co-report events 0, 1 (count 2); 0 and 2 only
        // event 2 (count 1).
        let bb = coreport_backbone(&table(), &[0, 1, 2, 3], 2);
        assert!(bb.graph().has_edge(NodeId(0), NodeId(1)));
        assert!(!bb.graph().has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn min_reports_filter() {
        assert_eq!(events_with_min_reports(&table(), 2), vec![0, 1, 2]);
        assert_eq!(events_with_min_reports(&table(), 3), Vec::<u32>::new());
    }

    #[test]
    fn site_sets_subset_matches_events() {
        let sets = site_sets_of(&table(), &[2, 3]);
        assert_eq!(sets[0], vec![NodeId(0), NodeId(2)]);
        assert_eq!(sets[1], vec![NodeId(0)]);
    }
}
