//! News sites: identity, region, language, popularity.

use serde::{Deserialize, Serialize};
use viralcast_graph::NodeId;

/// The regional blocks visible in the paper's Figures 1–2: a large US
/// cluster, a European cluster (UK + continental sites), an Australian
/// cluster, and a residual mixed group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// United States outlets.
    UnitedStates,
    /// United Kingdom and continental Europe.
    Europe,
    /// Australia and New Zealand.
    Australia,
    /// Sites without a clear regional cluster.
    Mixed,
}

impl Region {
    /// All regions in a fixed order (index = numeric label used by
    /// assortativity and locality metrics).
    pub const ALL: [Region; 4] = [
        Region::UnitedStates,
        Region::Europe,
        Region::Australia,
        Region::Mixed,
    ];

    /// Numeric label of the region.
    pub fn index(self) -> usize {
        match self {
            Region::UnitedStates => 0,
            Region::Europe => 1,
            Region::Australia => 2,
            Region::Mixed => 3,
        }
    }

    /// Domain suffix used for synthetic site names.
    pub fn tld(self) -> &'static str {
        match self {
            Region::UnitedStates => "com",
            Region::Europe => "co.uk",
            Region::Australia => "com.au",
            Region::Mixed => "net",
        }
    }

    /// The languages spoken in the region (GDELT translates 65; we keep
    /// a representative handful per region).
    pub fn languages(self) -> &'static [&'static str] {
        match self {
            Region::UnitedStates => &["en"],
            Region::Europe => &["en", "de", "fr", "es", "it"],
            Region::Australia => &["en"],
            Region::Mixed => &["en", "zh", "ar", "pt", "ru", "hi"],
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Region::UnitedStates => "US",
            Region::Europe => "EU",
            Region::Australia => "AU",
            Region::Mixed => "Mixed",
        };
        write!(f, "{s}")
    }
}

/// One synthetic news outlet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NewsSite {
    /// Dense node id shared with graphs and cascades.
    pub id: NodeId,
    /// Synthetic domain name, e.g. `news-0042.co.uk`.
    pub name: String,
    /// Regional block.
    pub region: Region,
    /// Primary publication language (ISO 639-1 code).
    pub language: String,
    /// Expected yearly event reports (power-law distributed; the paper
    /// cuts below 5 000).
    pub popularity: f64,
}

impl NewsSite {
    /// Builds a site with a templated name.
    pub fn new(id: NodeId, region: Region, language: &str, popularity: f64) -> Self {
        NewsSite {
            name: format!("news-{:04}.{}", id.index(), region.tld()),
            id,
            region,
            language: language.to_owned(),
            popularity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_indices_are_dense() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn names_follow_region_tld() {
        let s = NewsSite::new(NodeId(42), Region::Australia, "en", 10_000.0);
        assert_eq!(s.name, "news-0042.com.au");
    }

    #[test]
    fn languages_nonempty_per_region() {
        for r in Region::ALL {
            assert!(!r.languages().is_empty());
        }
    }

    #[test]
    fn display_is_short() {
        assert_eq!(Region::UnitedStates.to_string(), "US");
        assert_eq!(Region::Mixed.to_string(), "Mixed");
    }

    #[test]
    fn serde_round_trip() {
        let s = NewsSite::new(NodeId(7), Region::Europe, "de", 6_000.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: NewsSite = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.region, s.region);
    }
}
