//! A synthetic GDELT-like news-mention substrate.
//!
//! The paper's real-data experiments run on the Global Database of
//! Events, Language and Tone — tens of thousands of news sites, millions
//! of events, accessed through Google BigQuery. That dataset is a paid,
//! network-backed service; this crate builds the closest synthetic
//! equivalent that exercises the same code paths and reproduces the
//! three properties Section II highlights:
//!
//! 1. **Short event life cycle** — events are reported within an
//!    observation window of ~72 hours, most mentions landing early.
//! 2. **Regional locality** — sites live in regional blocks (US, Europe,
//!    Australia, a mixed rest); cascades mostly stay within a region.
//! 3. **Matthew effect** — site popularity follows a power law; popular
//!    sites are proportionally more influential and seed more events.
//!
//! The ground truth is the paper's own generative model: sites carry
//! planted influence/selectivity vectors, and events spread along a
//! regional co-follow graph with exponential delays of rate
//! `⟨A_u, B_v⟩`. The inference stage therefore has a well-defined target,
//! exactly as in the SBM experiments, while the *data shape* (mention
//! records of `(site, event, hour)`) matches what the paper pulled from
//! BigQuery.
//!
//! * [`site`] — news sites with region, language, popularity.
//! * [`records`] — the mention table plus its aggregations (reports per
//!   site, per-event site sets, conversion to cascades).
//! * [`generator`] — the world builder and event simulator.
//! * [`query`] — a small query layer standing in for the SQL the
//!   authors ran (top-k sites, event sampling, co-report counts).
//! * [`scenario`] — hostile-world regimes over a generated world:
//!   flash-crowd bursts, diurnal/multi-region cycles, site churn, and
//!   censored observation windows.

#![warn(missing_docs)]

pub mod generator;
pub mod query;
pub mod records;
pub mod scenario;
pub mod site;

pub use generator::{GdeltConfig, GdeltWorld};
pub use records::{Mention, MentionTable};
pub use scenario::{
    CensorWindow, DiurnalCycle, FlashCrowd, ScenarioConfig, ScenarioTimeline, SiteChurn,
    TimelineEvent,
};
pub use site::{NewsSite, Region};
