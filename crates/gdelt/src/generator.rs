//! The synthetic GDELT world builder and event simulator.
//!
//! The world is assembled in four steps:
//!
//! 1. **Sites** — `sites` outlets split across the four regional blocks
//!    by `region_weights`; each region is subdivided into communities of
//!    `community_size` sites (the topical sub-structure SLPA later
//!    recovers); popularity is drawn from a power law with the paper's
//!    5 000-report cut-off.
//! 2. **Ground-truth embeddings** — one topic per community via
//!    [`planted_embeddings`], then each site's influence row is scaled
//!    by `1 + ln(popularity / x_min)` so popular outlets genuinely move
//!    more stories (the Matthew effect feeding Figure 3).
//! 3. **Co-follow graph** — every site links to `mean_degree` peers
//!    sampled popularity-proportionally, mostly within its own region
//!    (`1 − cross_region_fraction` of draws), symmetrised.
//! 4. **Events** — each news event is one simulated cascade: a seed
//!    outlet drawn popularity-proportionally breaks the story, and it
//!    spreads along the graph with exponential delays of rate
//!    `⟨A_u, B_v⟩` for `observation_hours` (3 days, matching the
//!    "total number of reports in 3 days" target).

use crate::records::{Mention, MentionTable};
use crate::site::{NewsSite, Region};
use rand::Rng;
use serde::{Deserialize, Serialize};
use viralcast_graph::powerlaw::PowerLaw;
use viralcast_graph::{DiGraph, GraphBuilder, NodeId};
use viralcast_propagation::{
    planted_embeddings, EmbeddingRates, PlantedConfig, SimulationConfig, Simulator,
};

/// World-generation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GdeltConfig {
    /// Number of news sites (paper: 6 000 most popular).
    pub sites: usize,
    /// Probability weights of the four regions (US, EU, AU, Mixed).
    pub region_weights: [f64; 4],
    /// Sites per topical community inside a region.
    pub community_size: usize,
    /// Power-law exponent of site popularity.
    pub popularity_exponent: f64,
    /// Popularity cut-off (the paper ignores sites below 5 000 yearly
    /// reports).
    pub popularity_cutoff: f64,
    /// Exponent of the per-community popularity multiplier. Major
    /// outlets cluster: a community's sites share a power-law factor on
    /// top of their individual draws, so some topical communities are
    /// "hot" (national press) and most are cold (local outlets). Events
    /// breaking in hot communities spread faster and further — which is
    /// precisely the signal the early-adopter features read off.
    pub community_popularity_exponent: f64,
    /// Mean out-degree of the co-follow graph.
    pub mean_degree: usize,
    /// Fraction of co-follow links drawn inside the site's own topical
    /// community (the rest stay inside the region, minus the
    /// cross-region share).
    pub intra_community_fraction: f64,
    /// Fraction of co-follow links that cross regions.
    pub cross_region_fraction: f64,
    /// Observation window per event, in hours (3 days).
    pub observation_hours: f64,
    /// Planted embedding shape (on/off-topic rates are per hour).
    pub planted: PlantedConfig,
}

impl Default for GdeltConfig {
    fn default() -> Self {
        GdeltConfig {
            sites: 6_000,
            region_weights: [0.4, 0.3, 0.2, 0.1],
            community_size: 40,
            popularity_exponent: 2.2,
            popularity_cutoff: 5_000.0,
            community_popularity_exponent: 2.5,
            mean_degree: 10,
            intra_community_fraction: 0.6,
            cross_region_fraction: 0.02,
            observation_hours: 72.0,
            // Tuned to the partially-flooding, subcritical-jump regime:
            // an unpopular site catches a community event with
            // probability well below one (its catch hazard scales with
            // its popularity boost — the Matthew effect shows up in the
            // simulated report counts, not just the latent popularity),
            // the expected number of community jumps per event stays
            // near one (sizes spread over roughly 20–200 sites), and
            // cross-region jumps are rare (~80 % of cascades stay in
            // one region, as in the paper's Figures 1–2).
            planted: PlantedConfig {
                on_topic: 0.5,
                off_topic: 0.000003,
                jitter: 0.3,
            },
        }
    }
}

/// A smaller default for tests and quick runs.
impl GdeltConfig {
    /// A scaled-down world (600 sites) that keeps every structural
    /// property but generates in milliseconds.
    pub fn small() -> Self {
        GdeltConfig {
            sites: 600,
            ..GdeltConfig::default()
        }
    }
}

/// A fully generated world.
#[derive(Clone, Debug)]
pub struct GdeltWorld {
    config: GdeltConfig,
    sites: Vec<NewsSite>,
    graph: DiGraph,
    rates: EmbeddingRates,
    /// Topical community of each site (region-nested).
    membership: Vec<usize>,
    /// Cumulative popularity for seed sampling.
    popularity_cdf: Vec<f64>,
}

impl GdeltWorld {
    /// Generates a world.
    pub fn generate<R: Rng>(config: GdeltConfig, rng: &mut R) -> Self {
        assert!(config.sites > 0 && config.community_size > 0);
        let total_weight: f64 = config.region_weights.iter().sum();
        assert!(total_weight > 0.0, "region weights must not all be zero");

        // --- Sites: contiguous regional blocks, then communities.
        let mut region_sizes = [0usize; 4];
        let mut assigned = 0;
        for (i, w) in config.region_weights.iter().enumerate() {
            region_sizes[i] = if i == 3 {
                config.sites - assigned
            } else {
                ((w / total_weight) * config.sites as f64).round() as usize
            };
            assigned += region_sizes[i];
        }
        let popularity = PowerLaw::new(config.popularity_exponent, config.popularity_cutoff);
        let community_factor = PowerLaw::new(config.community_popularity_exponent, 1.0);
        let mut sites = Vec::with_capacity(config.sites);
        let mut membership = Vec::with_capacity(config.sites);
        let mut community = 0usize;
        // Capped so a single hot community cannot dwarf the world.
        let mut factor = community_factor.sample(rng).min(30.0);
        let mut id = 0usize;
        for (ri, &size) in region_sizes.iter().enumerate() {
            let region = Region::ALL[ri];
            for j in 0..size {
                if j > 0 && j % config.community_size == 0 {
                    community += 1;
                    factor = community_factor.sample(rng).min(30.0);
                }
                let langs = region.languages();
                let lang = langs[rng.gen_range(0..langs.len())];
                sites.push(NewsSite::new(
                    NodeId::new(id),
                    region,
                    lang,
                    popularity.sample(rng) * factor,
                ));
                membership.push(community);
                id += 1;
            }
            if size > 0 {
                community += 1;
                factor = community_factor.sample(rng).min(30.0);
            }
        }

        // --- Ground-truth embeddings, scaled by popularity: popular
        // outlets both push stories harder (influence) and cover more
        // of what passes by (selectivity) — the generative form of the
        // Matthew effect.
        let mut rates = planted_embeddings(&membership, &config.planted, rng);
        let k = rates.topic_count();
        let n = config.sites;
        let mut a = Vec::with_capacity(n * k);
        let mut b = Vec::with_capacity(n * k);
        #[allow(clippy::needless_range_loop)] // u indexes sites and both matrices
        for u in 0..n {
            let boost = 1.0 + (sites[u].popularity / config.popularity_cutoff).ln();
            for t in 0..k {
                a.push(rates.influence(NodeId::new(u))[t] * boost);
                b.push(rates.selectivity(NodeId::new(u))[t] * boost);
            }
        }
        rates = EmbeddingRates::from_matrices(n, k, a, b);

        // --- Co-follow graph: popularity-proportional sampling, mostly
        // intra-region.
        let region_of: Vec<usize> = sites.iter().map(|s| s.region.index()).collect();
        let mut region_members: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for (u, &r) in region_of.iter().enumerate() {
            region_members[r].push(u);
        }
        let community_count = membership.iter().copied().max().map_or(0, |m| m + 1);
        let mut community_members: Vec<Vec<usize>> = vec![Vec::new(); community_count];
        for (u, &c) in membership.iter().enumerate() {
            community_members[c].push(u);
        }
        let mut builder = GraphBuilder::with_capacity(n, n * config.mean_degree);
        // Popularity CDFs for proportional draws at each scope.
        let cdf_of = |members: &[usize]| -> Vec<f64> {
            let mut acc = 0.0;
            members
                .iter()
                .map(|&u| {
                    acc += sites[u].popularity;
                    acc
                })
                .collect()
        };
        let region_cdfs: Vec<Vec<f64>> = region_members.iter().map(|m| cdf_of(m)).collect();
        let community_cdfs: Vec<Vec<f64>> = community_members.iter().map(|m| cdf_of(m)).collect();
        let global_cdf: Vec<f64> = {
            let mut acc = 0.0;
            sites
                .iter()
                .map(|s| {
                    acc += s.popularity;
                    acc
                })
                .collect()
        };
        for u in 0..n {
            let mut added = 0usize;
            let mut guard = 0usize;
            while added < config.mean_degree && guard < config.mean_degree * 20 {
                guard += 1;
                let roll: f64 = rng.gen_range(0.0..1.0);
                let v = if roll < config.cross_region_fraction {
                    sample_cdf(&global_cdf, rng)
                } else if roll < config.cross_region_fraction + config.intra_community_fraction
                    && community_members[membership[u]].len() >= 2
                {
                    let c = membership[u];
                    community_members[c][sample_cdf(&community_cdfs[c], rng)]
                } else if region_members[region_of[u]].len() >= 2 {
                    let r = region_of[u];
                    region_members[r][sample_cdf(&region_cdfs[r], rng)]
                } else {
                    sample_cdf(&global_cdf, rng)
                };
                if v != u {
                    builder.add_undirected_edge(NodeId::new(u), NodeId::new(v), 1.0);
                    added += 1;
                }
            }
        }
        let graph = builder.build();

        let popularity_cdf = global_cdf;
        GdeltWorld {
            config,
            sites,
            graph,
            rates,
            membership,
            popularity_cdf,
        }
    }

    /// The configuration this world was generated from.
    pub fn config(&self) -> &GdeltConfig {
        &self.config
    }

    /// The news sites, indexed by node id.
    pub fn sites(&self) -> &[NewsSite] {
        &self.sites
    }

    /// The co-follow graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Ground-truth rates (for recovery checks).
    pub fn ground_truth(&self) -> &EmbeddingRates {
        &self.rates
    }

    /// Topical community labels (region-nested).
    pub fn membership(&self) -> &[usize] {
        &self.membership
    }

    /// Region label (0–3) per site.
    pub fn region_labels(&self) -> Vec<usize> {
        self.sites.iter().map(|s| s.region.index()).collect()
    }

    /// Simulates `count` news events and returns their mention table.
    /// Seeds are drawn popularity-proportionally; every event has at
    /// least its seed mention.
    pub fn simulate_events<R: Rng>(&self, count: usize, rng: &mut R) -> MentionTable {
        let sim_config = SimulationConfig {
            observation_window: self.config.observation_hours,
            max_cascade_size: None,
            min_cascade_size: 2,
            max_retries: 10,
        };
        let simulator = Simulator::new(&self.graph, self.rates.clone(), sim_config);
        let mut mentions = Vec::new();
        for event in 0..count {
            let seed = NodeId::new(sample_cdf(&self.popularity_cdf, rng));
            let mut cascade = simulator.simulate_from(seed, rng);
            let mut retries = 0;
            while cascade.len() < 2 && retries < 10 {
                let seed = NodeId::new(sample_cdf(&self.popularity_cdf, rng));
                cascade = simulator.simulate_from(seed, rng);
                retries += 1;
            }
            for inf in cascade.infections() {
                mentions.push(Mention {
                    site: inf.node,
                    event: event as u32,
                    hour: inf.time,
                });
            }
        }
        MentionTable::new(self.sites.len(), count, mentions)
    }
}

/// Samples an index proportionally to the increments of a cumulative
/// sum.
pub(crate) fn sample_cdf<R: Rng>(cdf: &[f64], rng: &mut R) -> usize {
    let total = *cdf.last().expect("empty CDF");
    let x = rng.gen_range(0.0..total);
    cdf.partition_point(|&c| c <= x).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viralcast_propagation::stats::locality_fraction;

    fn small_world(seed: u64) -> GdeltWorld {
        let mut rng = StdRng::seed_from_u64(seed);
        GdeltWorld::generate(GdeltConfig::small(), &mut rng)
    }

    #[test]
    fn world_has_requested_sites() {
        let w = small_world(1);
        assert_eq!(w.sites().len(), 600);
        assert_eq!(w.graph().node_count(), 600);
    }

    #[test]
    fn regions_cover_all_sites_in_blocks() {
        let w = small_world(2);
        // Regions appear as contiguous blocks in id order.
        let labels = w.region_labels();
        let mut seen_last = 0;
        for &l in &labels {
            assert!(l >= seen_last || l == seen_last, "regions not contiguous");
            seen_last = seen_last.max(l);
        }
        // All four regions present with the default weights.
        for r in 0..4 {
            assert!(labels.contains(&r), "region {r} missing");
        }
    }

    #[test]
    fn popularity_respects_cutoff() {
        let w = small_world(3);
        assert!(w.sites().iter().all(|s| s.popularity >= 5_000.0));
    }

    #[test]
    fn communities_nest_inside_regions() {
        let w = small_world(4);
        let regions = w.region_labels();
        let membership = w.membership();
        // Two sites in the same community must share a region.
        for i in 0..membership.len() {
            for j in (i + 1)..membership.len().min(i + 50) {
                if membership[i] == membership[j] {
                    assert_eq!(regions[i], regions[j]);
                }
            }
        }
    }

    #[test]
    fn graph_mostly_intra_region() {
        let w = small_world(5);
        let regions = w.region_labels();
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v, _) in w.graph().edges() {
            total += 1;
            if regions[u.index()] == regions[v.index()] {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.8, "intra-region edge fraction {frac} too low");
    }

    #[test]
    fn events_have_mentions_and_stay_in_window() {
        let w = small_world(6);
        let mut rng = StdRng::seed_from_u64(7);
        let table = w.simulate_events(50, &mut rng);
        assert_eq!(table.event_count(), 50);
        assert!(table.mentions().iter().all(|m| m.hour <= 72.0));
        let per_event = table.reports_per_event();
        assert!(per_event.iter().all(|&c| c >= 1));
        // Most events got past the seed (min size 2 with retries).
        let multi = per_event.iter().filter(|&&c| c >= 2).count();
        assert!(multi * 10 >= per_event.len() * 8, "{multi}/50 multi-site");
    }

    #[test]
    fn cascades_are_mostly_regional() {
        let w = small_world(8);
        let mut rng = StdRng::seed_from_u64(9);
        let table = w.simulate_events(100, &mut rng);
        let cascades = table.to_cascade_set();
        let frac = locality_fraction(&cascades, &w.region_labels());
        assert!(
            frac > 0.6,
            "only {frac} of cascades stayed within one region"
        );
    }

    #[test]
    fn popular_sites_report_more() {
        let w = small_world(10);
        let mut rng = StdRng::seed_from_u64(11);
        let table = w.simulate_events(400, &mut rng);
        let reports = table.reports_per_site();
        // Compare mean reports of the top popularity decile vs the rest.
        let mut order: Vec<usize> = (0..w.sites().len()).collect();
        order.sort_by(|&a, &b| {
            w.sites()[b]
                .popularity
                .partial_cmp(&w.sites()[a].popularity)
                .unwrap()
        });
        let top: f64 = order[..60].iter().map(|&u| reports[u] as f64).sum::<f64>() / 60.0;
        let rest: f64 = order[60..].iter().map(|&u| reports[u] as f64).sum::<f64>() / 540.0;
        // Simulated corpora are thousands of events, not GDELT's
        // millions, so the count gap is compressed relative to the
        // latent popularity power law; a clear positive margin is the
        // meaningful check here.
        assert!(
            top > 1.2 * rest,
            "Matthew effect missing: top {top} vs rest {rest}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = small_world(12);
        let w2 = small_world(12);
        assert_eq!(w1.sites().len(), w2.sites().len());
        let e1: Vec<_> = w1.graph().edges().collect();
        let e2: Vec<_> = w2.graph().edges().collect();
        assert_eq!(e1, e2);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        assert_eq!(
            w1.simulate_events(10, &mut r1).mentions(),
            w2.simulate_events(10, &mut r2).mentions()
        );
    }

    #[test]
    fn sample_cdf_respects_weights() {
        // CDF over 3 items with weights 1, 0, 9.
        let cdf = vec![1.0, 1.0, 10.0];
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_cdf(&cdf, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 8_500 && counts[0] < 1_500, "{counts:?}");
    }
}
