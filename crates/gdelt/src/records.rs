//! The mention table — our stand-in for GDELT's event-mention records.
//!
//! GDELT stores "the mentions of news events by news sites"; each row of
//! the synthetic table is one `(site, event, hour)` triple, hours
//! measured from the event's first report. Aggregations mirror the
//! queries the paper ran: reports per site (Figure 3), per-event
//! reporting-site sets (Figures 1–2), early mentions (the 5-hour
//! prediction input of Figure 12), and conversion to cascades for the
//! inference stage.

use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use viralcast_graph::NodeId;
use viralcast_propagation::{Cascade, CascadeSet, Infection};

/// One mention record.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mention {
    /// Reporting site.
    pub site: NodeId,
    /// Event id (dense `0..event_count`).
    pub event: u32,
    /// Hours since the event's first report.
    pub hour: f64,
}

/// A table of mention records over a fixed site/event universe.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MentionTable {
    site_count: usize,
    event_count: usize,
    mentions: Vec<Mention>,
}

impl MentionTable {
    /// Builds a table, sorting mentions by `(event, hour)`.
    pub fn new(site_count: usize, event_count: usize, mut mentions: Vec<Mention>) -> Self {
        assert!(
            mentions
                .iter()
                .all(|m| m.site.index() < site_count && (m.event as usize) < event_count),
            "mention outside the declared universe"
        );
        mentions.sort_by(|a, b| {
            a.event
                .cmp(&b.event)
                .then(a.hour.partial_cmp(&b.hour).unwrap())
        });
        MentionTable {
            site_count,
            event_count,
            mentions,
        }
    }

    /// Number of sites in the universe.
    pub fn site_count(&self) -> usize {
        self.site_count
    }

    /// Number of events in the universe.
    pub fn event_count(&self) -> usize {
        self.event_count
    }

    /// All mentions, sorted by `(event, hour)`.
    pub fn mentions(&self) -> &[Mention] {
        &self.mentions
    }

    /// Number of events each site reported (the Figure 3 histogram
    /// input).
    pub fn reports_per_site(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.site_count];
        for m in &self.mentions {
            counts[m.site.index()] += 1;
        }
        counts
    }

    /// Number of mentions per event (the prediction target of
    /// Figure 12: "the total number of reports in 3 days").
    pub fn reports_per_event(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.event_count];
        for m in &self.mentions {
            counts[m.event as usize] += 1;
        }
        counts
    }

    /// Per-event sets of reporting sites (input to Jaccard clustering
    /// and the backbone network).
    pub fn event_site_sets(&self) -> Vec<Vec<NodeId>> {
        let mut sets = vec![Vec::new(); self.event_count];
        for m in &self.mentions {
            sets[m.event as usize].push(m.site);
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        sets
    }

    /// Converts each event's mentions into a cascade (first mention per
    /// site wins; events with no mentions are dropped).
    pub fn to_cascade_set(&self) -> CascadeSet {
        let mut cascades = Vec::new();
        let mut start = 0;
        while start < self.mentions.len() {
            let event = self.mentions[start].event;
            let mut end = start;
            while end < self.mentions.len() && self.mentions[end].event == event {
                end += 1;
            }
            let slice = &self.mentions[start..end];
            let mut seen = std::collections::HashSet::new();
            let infections: Vec<Infection> = slice
                .iter()
                .filter(|m| seen.insert(m.site))
                .map(|m| Infection::new(m.site, m.hour))
                .collect();
            if let Ok(c) = Cascade::new(infections) {
                cascades.push(c);
            }
            start = end;
        }
        CascadeSet::new(self.site_count, cascades)
    }

    /// The sites that reported `event` within the first `hours` hours —
    /// the early adopters of the Figure 12 protocol.
    pub fn early_reporters(&self, event: u32, hours: f64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .mentions
            .iter()
            .filter(|m| m.event == event && m.hour <= hours)
            .map(|m| m.site)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Writes the table as CSV (`site,event,hour` with a header).
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "site,event,hour")?;
        for m in &self.mentions {
            writeln!(w, "{},{},{}", m.site.0, m.event, m.hour)?;
        }
        w.flush()
    }

    /// Reads a table previously written by [`MentionTable::save_csv`].
    /// The universe is inferred as `max + 1` over the observed ids.
    pub fn load_csv(path: &Path) -> std::io::Result<MentionTable> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut mentions = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if lineno == 0 || line.trim().is_empty() {
                continue; // header
            }
            let mut parts = line.split(',');
            let parse_err =
                || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed CSV row");
            let site: u32 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let event: u32 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let hour: f64 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            mentions.push(Mention {
                site: NodeId(site),
                event,
                hour,
            });
        }
        let site_count = mentions
            .iter()
            .map(|m| m.site.index() + 1)
            .max()
            .unwrap_or(0);
        let event_count = mentions
            .iter()
            .map(|m| m.event as usize + 1)
            .max()
            .unwrap_or(0);
        Ok(MentionTable::new(site_count, event_count, mentions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MentionTable {
        MentionTable::new(
            4,
            3,
            vec![
                Mention {
                    site: NodeId(1),
                    event: 0,
                    hour: 2.0,
                },
                Mention {
                    site: NodeId(0),
                    event: 0,
                    hour: 0.0,
                },
                Mention {
                    site: NodeId(2),
                    event: 1,
                    hour: 0.0,
                },
                Mention {
                    site: NodeId(0),
                    event: 1,
                    hour: 5.5,
                },
                Mention {
                    site: NodeId(3),
                    event: 1,
                    hour: 1.0,
                },
            ],
        )
    }

    #[test]
    fn mentions_sorted_by_event_then_hour() {
        let t = table();
        let keys: Vec<(u32, f64)> = t.mentions().iter().map(|m| (m.event, m.hour)).collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).unwrap()));
        assert_eq!(keys, sorted);
    }

    #[test]
    fn reports_per_site_counts() {
        assert_eq!(table().reports_per_site(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn reports_per_event_counts() {
        assert_eq!(table().reports_per_event(), vec![2, 3, 0]);
    }

    #[test]
    fn event_site_sets_sorted_dedup() {
        let sets = table().event_site_sets();
        assert_eq!(sets[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(sets[1], vec![NodeId(0), NodeId(2), NodeId(3)]);
        assert!(sets[2].is_empty());
    }

    #[test]
    fn cascades_one_per_nonempty_event() {
        let set = table().to_cascade_set();
        assert_eq!(set.len(), 2);
        assert_eq!(set.cascades()[0].seed().node, NodeId(0));
        assert_eq!(set.cascades()[1].seed().node, NodeId(2));
    }

    #[test]
    fn duplicate_site_mentions_keep_first() {
        let t = MentionTable::new(
            2,
            1,
            vec![
                Mention {
                    site: NodeId(0),
                    event: 0,
                    hour: 0.0,
                },
                Mention {
                    site: NodeId(1),
                    event: 0,
                    hour: 1.0,
                },
                Mention {
                    site: NodeId(1),
                    event: 0,
                    hour: 3.0,
                }, // repeat
            ],
        );
        let set = t.to_cascade_set();
        assert_eq!(set.cascades()[0].len(), 2);
        assert_eq!(set.cascades()[0].time_of(NodeId(1)), Some(1.0));
    }

    #[test]
    fn early_reporters_respect_cutoff() {
        let t = table();
        assert_eq!(t.early_reporters(1, 1.0), vec![NodeId(2), NodeId(3)]);
        assert_eq!(t.early_reporters(1, 10.0).len(), 3);
        assert!(t.early_reporters(2, 10.0).is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("viralcast-gdelt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mentions.csv");
        let t = table();
        t.save_csv(&path).unwrap();
        let back = MentionTable::load_csv(&path).unwrap();
        assert_eq!(back.mentions(), t.mentions());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_csv_row_is_an_error() {
        let dir = std::env::temp_dir().join("viralcast-gdelt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.csv");
        std::fs::write(&path, "site,event,hour\n1,notanumber,0.5\n").unwrap();
        let err = MentionTable::load_csv(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_csv_loads_empty_table() {
        let dir = std::env::temp_dir().join("viralcast-gdelt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.csv");
        std::fs::write(&path, "site,event,hour\n").unwrap();
        let t = MentionTable::load_csv(&path).unwrap();
        assert_eq!(t.mentions().len(), 0);
        assert_eq!(t.site_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "outside the declared universe")]
    fn out_of_universe_rejected() {
        MentionTable::new(
            1,
            1,
            vec![Mention {
                site: NodeId(5),
                event: 0,
                hour: 0.0,
            }],
        );
    }
}
