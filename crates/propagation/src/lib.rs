//! Stochastic information propagation: cascades, hazards and the
//! continuous-time simulator.
//!
//! The paper (Section III-A) adopts the stochastic propagation model of
//! Kempe, Kleinberg & Tardos: a message spreads along links with random,
//! independently distributed delays, every node is infected at most once
//! (SI dynamics), and the realisation of one spreading process — a
//! time-ordered sequence of `(node, time)` infections — is a *cascade*
//! (Definition 1).
//!
//! Modules:
//!
//! * [`cascade`] — the [`Cascade`]/[`Infection`] types with their validity
//!   invariants (strictly increasing times, distinct nodes), plus
//!   [`CascadeSet`] for corpora of cascades.
//! * [`hazard`] — delay distributions as hazard/survival function pairs.
//!   The paper's model is [`hazard::Exponential`]; a Rayleigh alternative
//!   is provided for ablations.
//! * [`rates`] — pluggable `u → v` rate providers: raw edge weights or
//!   planted ground-truth influence/selectivity embeddings whose inner
//!   product is the rate, exactly the parametric form the inference stage
//!   recovers (eqs. 6–7).
//! * [`simulator`] — the event-driven simulator with an observation
//!   window: "after the observation window, the current spreading process
//!   will be terminated instantly" (Section VI-A).
//! * [`stats`] — cascade corpus statistics (size and duration
//!   distributions) used by the data-exploration figures.
//! * [`store`] — JSON-lines persistence for cascade corpora.

#![warn(missing_docs)]

pub mod cascade;
pub mod hazard;
pub mod rates;
pub mod simulator;
pub mod stats;
pub mod store;

pub use cascade::{Cascade, CascadeError, CascadeSet, Infection};
pub use hazard::{Exponential, HazardFunction, Rayleigh};
pub use rates::{planted_embeddings, EdgeWeightRates, EmbeddingRates, PlantedConfig, RateProvider};
pub use simulator::{SimulationConfig, Simulator};
