//! Persistence for cascade corpora.
//!
//! Corpora are stored as a small JSON header line followed by one JSON
//! cascade per line. JSON-lines keeps the files greppable and streamable,
//! and lets the harnesses regenerate expensive corpora once and reuse
//! them across figures.

use crate::cascade::{Cascade, CascadeSet};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

#[derive(Serialize, Deserialize)]
struct Header {
    format: String,
    node_count: usize,
    cascade_count: usize,
}

const FORMAT: &str = "viralcast-cascades-v1";

/// Errors from reading a cascade file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed JSON or a broken invariant.
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Writes a corpus to `path` in JSON-lines form.
pub fn save(set: &CascadeSet, path: &Path) -> Result<(), StoreError> {
    let mut w = BufWriter::new(File::create(path)?);
    let header = Header {
        format: FORMAT.to_string(),
        node_count: set.node_count(),
        cascade_count: set.len(),
    };
    serde_json::to_writer(&mut w, &header).map_err(|e| StoreError::Format(e.to_string()))?;
    w.write_all(b"\n")?;
    for c in set.cascades() {
        serde_json::to_writer(&mut w, c).map_err(|e| StoreError::Format(e.to_string()))?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a corpus previously written by [`save`].
pub fn load(path: &Path) -> Result<CascadeSet, StoreError> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| StoreError::Format("empty file".into()))??;
    let header: Header = serde_json::from_str(&header_line)
        .map_err(|e| StoreError::Format(format!("bad header: {e}")))?;
    if header.format != FORMAT {
        return Err(StoreError::Format(format!(
            "unknown format {:?}",
            header.format
        )));
    }
    let mut cascades = Vec::with_capacity(header.cascade_count);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let c: Cascade = serde_json::from_str(&line)
            .map_err(|e| StoreError::Format(format!("bad cascade: {e}")))?;
        if c.infections()
            .iter()
            .any(|i| i.node.index() >= header.node_count)
        {
            return Err(StoreError::Format(
                "cascade references node outside the declared universe".into(),
            ));
        }
        cascades.push(c);
    }
    if cascades.len() != header.cascade_count {
        return Err(StoreError::Format(format!(
            "header declared {} cascades, found {}",
            header.cascade_count,
            cascades.len()
        )));
    }
    Ok(CascadeSet::new(header.node_count, cascades))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::Infection;

    fn sample_set() -> CascadeSet {
        let c1 = Cascade::new(vec![Infection::new(0u32, 0.0), Infection::new(1u32, 1.5)]).unwrap();
        let c2 = Cascade::new(vec![Infection::new(2u32, 0.25)]).unwrap();
        CascadeSet::new(3, vec![c1, c2])
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("viralcast-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let set = sample_set();
        save(&set, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.node_count(), set.node_count());
        assert_eq!(loaded.cascades(), set.cascades());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/viralcast.jsonl")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn garbage_header_is_format_error() {
        let dir = std::env::temp_dir().join("viralcast-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn count_mismatch_detected() {
        let dir = std::env::temp_dir().join("viralcast-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.jsonl");
        let set = sample_set();
        save(&set, &path).unwrap();
        // Append a forged extra cascade.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "{}", serde_json::to_string(&set.cascades()[1]).unwrap()).unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_detected() {
        // Simulate a crash mid-write: drop the last line.
        let dir = std::env::temp_dir().join("viralcast-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.jsonl");
        save(&sample_set(), &path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = full.lines().collect();
        std::fs::write(&path, keep[..keep.len() - 1].join("\n")).unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_cascade_line_detected() {
        let dir = std::env::temp_dir().join("viralcast-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        save(&sample_set(), &path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"node\"", "\"nod\"");
        std::fs::write(&path, text).unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_universe_node_detected() {
        let dir = std::env::temp_dir().join("viralcast-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oob.jsonl");
        // Handcraft a file whose header claims 1 node but cascade uses 5.
        let c = Cascade::new(vec![Infection::new(5u32, 0.0)]).unwrap();
        let contents = format!(
            "{}\n{}\n",
            serde_json::to_string(&Header {
                format: FORMAT.into(),
                node_count: 1,
                cascade_count: 1
            })
            .unwrap(),
            serde_json::to_string(&c).unwrap()
        );
        std::fs::write(&path, contents).unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)));
        std::fs::remove_file(&path).ok();
    }
}
