//! Link-rate providers for the simulator.
//!
//! The simulator only needs one number per directed link: the exponential
//! rate `λ_{uv}`. Two providers cover the experiments:
//!
//! * [`EdgeWeightRates`] — rates proportional to graph edge weights, for
//!   driving propagation on an arbitrary weighted topology;
//! * [`EmbeddingRates`] — rates `⟨A_u, B_v⟩` from *planted* ground-truth
//!   influence/selectivity vectors, the exact parametric family the
//!   inference algorithm later recovers. This gives the synthetic
//!   experiments a well-specified target and lets tests check recovery.

use rand::Rng;
use serde::{Deserialize, Serialize};
use viralcast_graph::NodeId;

/// Supplies the exponential rate of each directed link.
pub trait RateProvider: Sync {
    /// The rate `λ_{uv} ≥ 0`; zero means the link never transmits.
    fn rate(&self, u: NodeId, v: NodeId) -> f64;
}

/// Rates read straight off graph edge weights, scaled by a constant.
#[derive(Clone, Debug)]
pub struct EdgeWeightRates<'g> {
    graph: &'g viralcast_graph::DiGraph,
    scale: f64,
}

impl<'g> EdgeWeightRates<'g> {
    /// Wraps a graph; the rate of `u → v` is `scale × weight(u, v)`.
    pub fn new(graph: &'g viralcast_graph::DiGraph, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        EdgeWeightRates { graph, scale }
    }
}

impl RateProvider for EdgeWeightRates<'_> {
    #[inline]
    fn rate(&self, u: NodeId, v: NodeId) -> f64 {
        self.graph.edge_weight(u, v).unwrap_or(0.0) * self.scale
    }
}

/// Ground-truth influence/selectivity embeddings; the link rate is the
/// inner product `⟨A_u, B_v⟩` (paper eq. 6).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EmbeddingRates {
    n: usize,
    k: usize,
    /// Influence matrix, row-major `n × k`.
    a: Vec<f64>,
    /// Selectivity matrix, row-major `n × k`.
    b: Vec<f64>,
}

impl EmbeddingRates {
    /// Wraps explicit matrices (row-major, `n × k` each).
    pub fn from_matrices(n: usize, k: usize, a: Vec<f64>, b: Vec<f64>) -> Self {
        assert_eq!(a.len(), n * k, "influence matrix shape mismatch");
        assert_eq!(b.len(), n * k, "selectivity matrix shape mismatch");
        assert!(
            a.iter().chain(b.iter()).all(|&x| x >= 0.0 && x.is_finite()),
            "embeddings must be non-negative and finite"
        );
        EmbeddingRates { n, k, a, b }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.k
    }

    /// Influence row of `u`.
    pub fn influence(&self, u: NodeId) -> &[f64] {
        let i = u.index() * self.k;
        &self.a[i..i + self.k]
    }

    /// Selectivity row of `v`.
    pub fn selectivity(&self, v: NodeId) -> &[f64] {
        let i = v.index() * self.k;
        &self.b[i..i + self.k]
    }
}

impl RateProvider for EmbeddingRates {
    #[inline]
    fn rate(&self, u: NodeId, v: NodeId) -> f64 {
        self.influence(u)
            .iter()
            .zip(self.selectivity(v))
            .map(|(x, y)| x * y)
            .sum()
    }
}

/// Configuration of planted ground-truth embeddings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlantedConfig {
    /// Mean on-topic component (a node is "on topic" for its own
    /// community's topic).
    pub on_topic: f64,
    /// Mean off-topic component.
    pub off_topic: f64,
    /// Multiplicative jitter half-width: components are drawn uniformly
    /// from `mean × [1 − jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            on_topic: 1.0,
            off_topic: 0.05,
            jitter: 0.3,
        }
    }
}

/// Generates planted embeddings with one topic per community: node `u` in
/// community `c` has an elevated `A_{u,c}` and `B_{u,c}` and small values
/// elsewhere, so intra-community links are fast (`≈ on_topic²`) and
/// inter-community links slow — the regime the paper's locality analysis
/// (Section II) describes.
pub fn planted_embeddings<R: Rng>(
    membership: &[usize],
    config: &PlantedConfig,
    rng: &mut R,
) -> EmbeddingRates {
    assert!(
        config.on_topic > 0.0 && config.off_topic >= 0.0 && (0.0..1.0).contains(&config.jitter),
        "invalid planted configuration"
    );
    let n = membership.len();
    let k = membership.iter().copied().max().map_or(0, |m| m + 1);
    let mut a = vec![0.0; n * k];
    let mut b = vec![0.0; n * k];
    let draw = |mean: f64, rng: &mut R| -> f64 {
        if mean == 0.0 {
            0.0
        } else {
            mean * rng.gen_range(1.0 - config.jitter..=1.0 + config.jitter)
        }
    };
    for (u, &c) in membership.iter().enumerate() {
        for t in 0..k {
            let mean = if t == c {
                config.on_topic
            } else {
                config.off_topic
            };
            a[u * k + t] = draw(mean, rng);
            b[u * k + t] = draw(mean, rng);
        }
    }
    EmbeddingRates::from_matrices(n, k, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viralcast_graph::GraphBuilder;

    #[test]
    fn edge_weight_rates_scale() {
        let mut gb = GraphBuilder::new(2);
        gb.add_edge(NodeId(0), NodeId(1), 0.5);
        let g = gb.build();
        let r = EdgeWeightRates::new(&g, 4.0);
        assert_eq!(r.rate(NodeId(0), NodeId(1)), 2.0);
        assert_eq!(r.rate(NodeId(1), NodeId(0)), 0.0);
    }

    #[test]
    fn embedding_rate_is_inner_product() {
        let a = vec![1.0, 2.0, /* node 1 */ 0.0, 1.0];
        let b = vec![3.0, 1.0, /* node 1 */ 2.0, 2.0];
        let e = EmbeddingRates::from_matrices(2, 2, a, b);
        // rate(0 -> 1) = A_0 · B_1 = 1*2 + 2*2 = 6
        assert_eq!(e.rate(NodeId(0), NodeId(1)), 6.0);
        // rate(1 -> 0) = A_1 · B_0 = 0*3 + 1*1 = 1
        assert_eq!(e.rate(NodeId(1), NodeId(0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matrix_shape_checked() {
        EmbeddingRates::from_matrices(2, 2, vec![1.0; 3], vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_embeddings_rejected() {
        EmbeddingRates::from_matrices(1, 1, vec![-1.0], vec![1.0]);
    }

    #[test]
    fn planted_intra_rates_dominate_inter() {
        let membership = vec![0, 0, 0, 1, 1, 1];
        let cfg = PlantedConfig {
            on_topic: 1.0,
            off_topic: 0.02,
            jitter: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let e = planted_embeddings(&membership, &cfg, &mut rng);
        let intra = e.rate(NodeId(0), NodeId(1));
        let inter = e.rate(NodeId(0), NodeId(3));
        assert!(
            intra > 10.0 * inter,
            "intra {intra} should dwarf inter {inter}"
        );
    }

    #[test]
    fn planted_shapes() {
        let membership = vec![0, 1, 2, 1];
        let mut rng = StdRng::seed_from_u64(1);
        let e = planted_embeddings(&membership, &PlantedConfig::default(), &mut rng);
        assert_eq!(e.node_count(), 4);
        assert_eq!(e.topic_count(), 3);
        assert_eq!(e.influence(NodeId(2)).len(), 3);
    }

    #[test]
    fn planted_deterministic_per_seed() {
        let membership = vec![0, 0, 1, 1];
        let e1 = planted_embeddings(
            &membership,
            &PlantedConfig::default(),
            &mut StdRng::seed_from_u64(9),
        );
        let e2 = planted_embeddings(
            &membership,
            &PlantedConfig::default(),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(e1.rate(NodeId(0), NodeId(1)), e2.rate(NodeId(0), NodeId(1)));
    }

    #[test]
    fn zero_off_topic_blocks_cross_community_rates() {
        let membership = vec![0, 0, 1, 1];
        let cfg = PlantedConfig {
            on_topic: 1.0,
            off_topic: 0.0,
            jitter: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let e = planted_embeddings(&membership, &cfg, &mut rng);
        assert_eq!(e.rate(NodeId(0), NodeId(2)), 0.0);
        assert!(e.rate(NodeId(0), NodeId(1)) > 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Planted rates are always non-negative and finite.
        #[test]
        fn planted_rates_valid(
            seed in 0u64..500,
            communities in 1usize..5,
            per in 1usize..6,
        ) {
            let membership: Vec<usize> =
                (0..communities * per).map(|i| i / per).collect();
            let e = planted_embeddings(
                &membership,
                &PlantedConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            );
            for u in 0..membership.len() {
                for v in 0..membership.len() {
                    let r = e.rate(NodeId::new(u), NodeId::new(v));
                    prop_assert!(r.is_finite() && r >= 0.0);
                }
            }
        }
    }
}
