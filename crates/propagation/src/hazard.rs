//! Hazard and survival functions from survival analysis (Section III-A).
//!
//! For an infection delay `Δt` along a link, the *hazard* `h(Δt)` is the
//! instantaneous infection rate conditioned on no earlier infection, and
//! the *survival* `S(Δt)` is the probability the infection has not
//! happened by `Δt`; they are related by `S(Δt) = exp(−∫₀^{Δt} h)`.
//!
//! The paper's model (eqs. 6–7) uses the constant hazard
//! `h_uv(Δt) = ⟨A_u, B_v⟩` — an exponential delay — because the minimum
//! of `K` independent exponentials with rates `A_{u,k} B_{v,k}` is again
//! exponential with the summed rate. A Rayleigh variant (linear hazard,
//! common in the NetRate literature the paper builds on) is provided for
//! ablation studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parametric delay distribution expressed through its hazard/survival
/// pair, with enough structure to simulate and to score likelihoods.
pub trait HazardFunction: Clone + Send + Sync {
    /// Hazard `h(Δt)` for `Δt ≥ 0`.
    fn hazard(&self, dt: f64) -> f64;

    /// Survival `S(Δt) = P[delay > Δt]`.
    fn survival(&self, dt: f64) -> f64;

    /// `ln S(Δt)`, computed directly to avoid underflow for large `Δt`.
    fn log_survival(&self, dt: f64) -> f64;

    /// Draws one delay.
    fn sample<R: Rng>(&self, rng: &mut R) -> f64;

    /// Expected delay, if finite.
    fn mean(&self) -> f64;
}

/// Exponential delay: `h(Δt) = λ`, `S(Δt) = e^{−λΔt}`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Rate `λ > 0`.
    pub rate: f64,
}

impl Exponential {
    /// An exponential delay with rate `λ`.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive, got {rate}"
        );
        Exponential { rate }
    }
}

impl HazardFunction for Exponential {
    #[inline]
    fn hazard(&self, _dt: f64) -> f64 {
        self.rate
    }

    #[inline]
    fn survival(&self, dt: f64) -> f64 {
        (-self.rate * dt).exp()
    }

    #[inline]
    fn log_survival(&self, dt: f64) -> f64 {
        -self.rate * dt
    }

    #[inline]
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 − U avoids ln(0).
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() / self.rate
    }

    #[inline]
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Rayleigh delay: `h(Δt) = αΔt`, `S(Δt) = e^{−αΔt²/2}`.
///
/// Used by the NetRate family as an alternative transmission model; we
/// keep it for the hazard-shape ablation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rayleigh {
    /// Scale `α > 0`.
    pub alpha: f64,
}

impl Rayleigh {
    /// A Rayleigh delay with scale `α`.
    ///
    /// # Panics
    /// Panics if `alpha` is not strictly positive and finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "alpha must be positive, got {alpha}"
        );
        Rayleigh { alpha }
    }
}

impl HazardFunction for Rayleigh {
    #[inline]
    fn hazard(&self, dt: f64) -> f64 {
        self.alpha * dt
    }

    #[inline]
    fn survival(&self, dt: f64) -> f64 {
        (-self.alpha * dt * dt / 2.0).exp()
    }

    #[inline]
    fn log_survival(&self, dt: f64) -> f64 {
        -self.alpha * dt * dt / 2.0
    }

    #[inline]
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * (1.0 - u).ln() / self.alpha).sqrt()
    }

    #[inline]
    fn mean(&self) -> f64 {
        (std::f64::consts::PI / (2.0 * self.alpha)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_survival_matches_log() {
        let e = Exponential::new(0.7);
        for dt in [0.0, 0.5, 2.0, 10.0] {
            assert!((e.survival(dt).ln() - e.log_survival(dt)).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_survival_at_zero_is_one() {
        assert_eq!(Exponential::new(3.0).survival(0.0), 1.0);
        assert_eq!(Rayleigh::new(3.0).survival(0.0), 1.0);
    }

    #[test]
    fn exponential_sample_mean_close_to_inverse_rate() {
        let e = Exponential::new(2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - e.mean()).abs() < 0.01, "sample mean {mean}");
    }

    #[test]
    fn rayleigh_sample_mean_matches_formula() {
        let r = Rayleigh::new(1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - r.mean()).abs() < 0.01, "sample mean {mean}");
    }

    #[test]
    fn rayleigh_hazard_grows_linearly() {
        let r = Rayleigh::new(2.0);
        assert_eq!(r.hazard(0.0), 0.0);
        assert!((r.hazard(3.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn survival_is_consistent_with_hazard_integral() {
        // S(t) = exp(-∫h); numerically integrate and compare.
        let r = Rayleigh::new(0.8);
        let t = 2.0;
        let steps = 100_000;
        let h = t / steps as f64;
        let integral: f64 = (0..steps).map(|i| r.hazard((i as f64 + 0.5) * h) * h).sum();
        assert!(((-integral).exp() - r.survival(t)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        Exponential::new(0.0);
    }

    #[test]
    fn higher_rate_means_shorter_delays() {
        let mut rng = StdRng::seed_from_u64(3);
        let fast: f64 = (0..10_000)
            .map(|_| Exponential::new(5.0).sample(&mut rng))
            .sum();
        let slow: f64 = (0..10_000)
            .map(|_| Exponential::new(0.5).sample(&mut rng))
            .sum();
        assert!(fast < slow);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Survival is monotonically non-increasing in Δt and bounded by
        /// [0, 1]; samples are non-negative.
        #[test]
        fn exponential_laws(rate in 0.01f64..20.0, a in 0.0f64..10.0, b in 0.0f64..10.0, seed in 0u64..100) {
            let e = Exponential::new(rate);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.survival(lo) >= e.survival(hi));
            prop_assert!((0.0..=1.0).contains(&e.survival(hi)));
            let mut rng = StdRng::seed_from_u64(seed);
            prop_assert!(e.sample(&mut rng) >= 0.0);
        }

        #[test]
        fn rayleigh_laws(alpha in 0.01f64..20.0, a in 0.0f64..10.0, b in 0.0f64..10.0, seed in 0u64..100) {
            let r = Rayleigh::new(alpha);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(r.survival(lo) >= r.survival(hi));
            prop_assert!((0.0..=1.0).contains(&r.survival(hi)));
            let mut rng = StdRng::seed_from_u64(seed);
            prop_assert!(r.sample(&mut rng) >= 0.0);
        }
    }
}
