//! Corpus-level cascade statistics.
//!
//! Section II of the paper characterises the GDELT data through exactly
//! these lenses: the short life cycle of events (most reported within the
//! first ~50 hours), the locality of cascades, and the skew of per-site
//! participation. These helpers compute the corresponding numbers for any
//! [`CascadeSet`] so harnesses can print them alongside paper values.

use crate::cascade::CascadeSet;
use serde::{Deserialize, Serialize};

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub mean: f64,
    /// Median (lower of the two middles for even counts).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl SampleSummary {
    /// Summarises a sample; returns zeros for an empty input.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return SampleSummary {
                count: 0,
                min: 0.0,
                mean: 0.0,
                median: 0.0,
                p90: 0.0,
                max: 0.0,
            };
        }
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let count = v.len();
        let pick = |q: f64| v[((count as f64 - 1.0) * q).floor() as usize];
        SampleSummary {
            count,
            min: v[0],
            mean: v.iter().sum::<f64>() / count as f64,
            median: pick(0.5),
            p90: pick(0.9),
            max: v[count - 1],
        }
    }
}

/// Summary of cascade sizes.
pub fn size_summary(set: &CascadeSet) -> SampleSummary {
    let sizes: Vec<f64> = set.cascades().iter().map(|c| c.len() as f64).collect();
    SampleSummary::from_samples(&sizes)
}

/// Summary of cascade durations (first to last infection).
pub fn duration_summary(set: &CascadeSet) -> SampleSummary {
    let d: Vec<f64> = set.cascades().iter().map(|c| c.duration()).collect();
    SampleSummary::from_samples(&d)
}

/// Histogram of cascade sizes with fixed-width bins (the bars of
/// Figures 9 and 12).
pub fn size_histogram(set: &CascadeSet, bin_width: usize) -> Vec<(usize, usize)> {
    assert!(bin_width > 0);
    let max = set.cascades().iter().map(|c| c.len()).max().unwrap_or(0);
    let nbins = max / bin_width + 1;
    let mut bins = vec![0usize; nbins];
    for c in set.cascades() {
        bins[c.len() / bin_width] += 1;
    }
    bins.into_iter()
        .enumerate()
        .map(|(i, count)| (i * bin_width, count))
        .collect()
}

/// Per-node participation counts: how many cascades each node appears in
/// (the per-site event counts of Figure 3).
pub fn participation_counts(set: &CascadeSet) -> Vec<usize> {
    let mut counts = vec![0usize; set.node_count()];
    for c in set.cascades() {
        for inf in c.infections() {
            counts[inf.node.index()] += 1;
        }
    }
    counts
}

/// Fraction of cascades whose infections stay within one group of
/// `membership` — the paper's "most cascades are local" observation.
pub fn locality_fraction(set: &CascadeSet, membership: &[usize]) -> f64 {
    if set.is_empty() {
        return 0.0;
    }
    let local = set
        .cascades()
        .iter()
        .filter(|c| {
            let first = membership[c.seed().node.index()];
            c.infections()
                .iter()
                .all(|i| membership[i.node.index()] == first)
        })
        .count();
    local as f64 / set.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::{Cascade, Infection};

    fn cascade(nodes: &[(u32, f64)]) -> Cascade {
        Cascade::new(nodes.iter().map(|&(n, t)| Infection::new(n, t)).collect()).unwrap()
    }

    fn corpus() -> CascadeSet {
        CascadeSet::new(
            6,
            vec![
                cascade(&[(0, 0.0), (1, 1.0), (2, 2.0)]),
                cascade(&[(3, 0.0), (4, 0.5)]),
                cascade(&[(0, 0.0)]),
            ],
        )
    }

    #[test]
    fn summary_of_known_sample() {
        let s = SampleSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn summary_empty_is_zeros() {
        let s = SampleSummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn size_summary_counts_cascades() {
        let s = size_summary(&corpus());
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_summary_spans() {
        let s = duration_summary(&corpus());
        assert_eq!(s.max, 2.0);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn histogram_bins_sizes() {
        let h = size_histogram(&corpus(), 2);
        // sizes 3, 2, 1 -> bins [0,2): {1}, [2,4): {3, 2}
        assert_eq!(h, vec![(0, 1), (2, 2)]);
    }

    #[test]
    fn histogram_total_equals_cascade_count() {
        let h = size_histogram(&corpus(), 1);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn participation_counts_per_node() {
        let p = participation_counts(&corpus());
        assert_eq!(p, vec![2, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn locality_with_perfect_split() {
        // Membership: {0,1,2} region 0, {3,4,5} region 1 — all three
        // cascades stay local.
        let f = locality_fraction(&corpus(), &[0, 0, 0, 1, 1, 1]);
        assert_eq!(f, 1.0);
        // Flip node 2's region — first cascade goes cross-region.
        let f = locality_fraction(&corpus(), &[0, 0, 1, 1, 1, 1]);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn locality_of_empty_corpus() {
        let set = CascadeSet::new(2, vec![]);
        assert_eq!(locality_fraction(&set, &[0, 0]), 0.0);
    }
}
