//! Event-driven continuous-time propagation simulator.
//!
//! Implements the stochastic propagation model of Kempe et al. as used in
//! Section VI-A: a random seed node starts each cascade; every link
//! `u → v` transmits after an exponential delay with rate
//! `λ_{uv}` supplied by a [`RateProvider`]; a node keeps its *earliest*
//! arriving infection (single-source rule of Definition 1); and the whole
//! process is cut off at the observation window because "any cascade would
//! eventually flood the entire network".
//!
//! The implementation is the classic lazy-deletion priority-queue sweep:
//! at a node's infection we sample one candidate delay per out-link and
//! push the tentative arrival; stale arrivals at already-infected nodes
//! are skipped on pop. For exponential delays this produces exactly the
//! first-passage times of the continuous-time SI process.

use crate::cascade::{Cascade, CascadeSet, Infection};
use crate::hazard::{Exponential, HazardFunction};
use crate::rates::RateProvider;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use viralcast_graph::{DiGraph, NodeId};

/// Simulation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Length of the observation window; infections after it are
    /// discarded and the process stops.
    pub observation_window: f64,
    /// Optional hard cap on cascade size (guards flooding on dense
    /// graphs).
    pub max_cascade_size: Option<usize>,
    /// Cascades smaller than this are re-drawn from a fresh random seed
    /// node (up to [`SimulationConfig::max_retries`] attempts) when
    /// generating corpora.
    pub min_cascade_size: usize,
    /// Retry budget for `min_cascade_size`.
    pub max_retries: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            observation_window: 1.0,
            max_cascade_size: None,
            min_cascade_size: 1,
            max_retries: 20,
        }
    }
}

/// Min-heap entry ordered by arrival time.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    time: f64,
    node: NodeId,
}

impl PartialEq for Arrival {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.node == other.node
    }
}
impl Eq for Arrival {}
impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on time for a min-heap; ties broken by node for
        // determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The propagation simulator over a fixed topology and rate provider.
pub struct Simulator<'g, P: RateProvider> {
    graph: &'g DiGraph,
    rates: P,
    config: SimulationConfig,
}

impl<'g, P: RateProvider> Simulator<'g, P> {
    /// Creates a simulator.
    pub fn new(graph: &'g DiGraph, rates: P, config: SimulationConfig) -> Self {
        assert!(
            config.observation_window > 0.0,
            "observation window must be positive"
        );
        Simulator {
            graph,
            rates,
            config,
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Simulates one cascade from a given seed node at time 0.
    ///
    /// ```
    /// use viralcast_propagation::{EdgeWeightRates, SimulationConfig, Simulator};
    /// use viralcast_graph::{GraphBuilder, NodeId};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut b = GraphBuilder::new(3);
    /// b.add_edge(NodeId(0), NodeId(1), 5.0);
    /// b.add_edge(NodeId(1), NodeId(2), 5.0);
    /// let graph = b.build();
    /// let sim = Simulator::new(
    ///     &graph,
    ///     EdgeWeightRates::new(&graph, 1.0),
    ///     SimulationConfig { observation_window: 10.0, ..Default::default() },
    /// );
    /// let cascade = sim.simulate_from(NodeId(0), &mut StdRng::seed_from_u64(1));
    /// assert_eq!(cascade.seed().node, NodeId(0));
    /// assert!(cascade.len() >= 1);
    /// ```
    pub fn simulate_from<R: Rng>(&self, seed: NodeId, rng: &mut R) -> Cascade {
        let n = self.graph.node_count();
        assert!(seed.index() < n, "seed {seed} out of range");
        let cap = self.config.max_cascade_size.unwrap_or(usize::MAX);
        let mut infected = vec![false; n];
        let mut heap = BinaryHeap::new();
        let mut infections = Vec::new();
        heap.push(Arrival {
            time: 0.0,
            node: seed,
        });

        while let Some(Arrival { time, node }) = heap.pop() {
            if infected[node.index()] {
                continue; // stale arrival — an earlier infection won
            }
            if time > self.config.observation_window {
                break; // everything later is outside the window too
            }
            infected[node.index()] = true;
            infections.push(Infection { node, time });
            if infections.len() >= cap {
                break;
            }
            for (v, _) in self.graph.out_edges(node) {
                if infected[v.index()] {
                    continue;
                }
                let rate = self.rates.rate(node, v);
                if rate <= 0.0 {
                    continue;
                }
                let delay = Exponential::new(rate).sample(rng);
                let arrival = time + delay;
                if arrival <= self.config.observation_window {
                    heap.push(Arrival {
                        time: arrival,
                        node: v,
                    });
                }
            }
        }
        Cascade::new(infections).expect("simulator output is a valid cascade by construction")
    }

    /// Simulates one cascade from a uniformly random seed.
    pub fn simulate<R: Rng>(&self, rng: &mut R) -> Cascade {
        let seed = NodeId::new(rng.gen_range(0..self.graph.node_count()));
        self.simulate_from(seed, rng)
    }

    /// Simulates a corpus of `count` cascades, re-drawing seeds for
    /// cascades below the configured minimum size.
    pub fn simulate_corpus<R: Rng>(&self, count: usize, rng: &mut R) -> CascadeSet {
        let mut cascades = Vec::with_capacity(count);
        for _ in 0..count {
            let mut cascade = self.simulate(rng);
            let mut retries = 0;
            while cascade.len() < self.config.min_cascade_size && retries < self.config.max_retries
            {
                cascade = self.simulate(rng);
                retries += 1;
            }
            cascades.push(cascade);
        }
        CascadeSet::new(self.graph.node_count(), cascades)
    }
}

impl<P: RateProvider> Simulator<'_, P> {
    /// Parallel corpus simulation: cascade `i` runs on its own RNG
    /// derived from `(seed, i)`, so the result is deterministic and
    /// *independent of the thread count* — unlike threading a single
    /// RNG through, which would make the corpus depend on scheduling.
    pub fn simulate_corpus_parallel(&self, count: usize, seed: u64) -> CascadeSet {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rayon::prelude::*;
        let cascades: Vec<Cascade> = (0..count)
            .into_par_iter()
            .map(|i| {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut cascade = self.simulate(&mut rng);
                let mut retries = 0;
                while cascade.len() < self.config.min_cascade_size
                    && retries < self.config.max_retries
                {
                    cascade = self.simulate(&mut rng);
                    retries += 1;
                }
                cascade
            })
            .collect();
        CascadeSet::new(self.graph.node_count(), cascades)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::EdgeWeightRates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viralcast_graph::GraphBuilder;

    fn path_graph(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId::new(i), NodeId::new(i + 1), 1.0);
        }
        b.build()
    }

    fn config(window: f64) -> SimulationConfig {
        SimulationConfig {
            observation_window: window,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn seed_is_always_infected_at_time_zero() {
        let g = path_graph(3);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 1.0), config(10.0));
        let mut rng = StdRng::seed_from_u64(1);
        let c = sim.simulate_from(NodeId(1), &mut rng);
        assert_eq!(c.seed().node, NodeId(1));
        assert_eq!(c.seed().time, 0.0);
    }

    #[test]
    fn infection_respects_topology() {
        // Directed path 0 -> 1 -> 2: seeding at 2 can never infect 0 or 1.
        let g = path_graph(3);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 1000.0), config(100.0));
        let mut rng = StdRng::seed_from_u64(2);
        let c = sim.simulate_from(NodeId(2), &mut rng);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn high_rates_flood_the_component() {
        let g = path_graph(5);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 1e6), config(1.0));
        let mut rng = StdRng::seed_from_u64(3);
        let c = sim.simulate_from(NodeId(0), &mut rng);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn observation_window_truncates() {
        // Rates so slow that nothing happens within the window.
        let g = path_graph(5);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 1e-9), config(0.001));
        let mut rng = StdRng::seed_from_u64(4);
        let c = sim.simulate_from(NodeId(0), &mut rng);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn all_infection_times_inside_window() {
        let g = path_graph(50);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 3.0), config(2.5));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let c = sim.simulate(&mut rng);
            assert!(c.infections().iter().all(|i| i.time <= 2.5 + 1e-12));
        }
    }

    #[test]
    fn max_size_cap_respected() {
        let g = path_graph(100);
        let cfg = SimulationConfig {
            observation_window: 1000.0,
            max_cascade_size: Some(7),
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 100.0), cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let c = sim.simulate_from(NodeId(0), &mut rng);
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn corpus_respects_min_size_when_possible() {
        // A strongly connected pair: min size 2 is always reachable.
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let cfg = SimulationConfig {
            observation_window: 100.0,
            min_cascade_size: 2,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 5.0), cfg);
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = sim.simulate_corpus(20, &mut rng);
        assert_eq!(corpus.len(), 20);
        assert!(corpus.cascades().iter().all(|c| c.len() == 2));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = path_graph(20);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 2.0), config(3.0));
        let c1 = sim.simulate_corpus(5, &mut StdRng::seed_from_u64(11));
        let c2 = sim.simulate_corpus(5, &mut StdRng::seed_from_u64(11));
        assert_eq!(c1.cascades(), c2.cascades());
    }

    #[test]
    fn parallel_corpus_is_thread_count_invariant() {
        let g = path_graph(30);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 2.0), config(3.0));
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| sim.simulate_corpus_parallel(20, 7))
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.cascades(), four.cascades());
    }

    #[test]
    fn parallel_corpus_respects_min_size() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let cfg = SimulationConfig {
            observation_window: 100.0,
            min_cascade_size: 2,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 5.0), cfg);
        let corpus = sim.simulate_corpus_parallel(25, 3);
        assert_eq!(corpus.len(), 25);
        assert!(corpus.cascades().iter().all(|c| c.len() == 2));
    }

    #[test]
    fn parallel_and_sequential_draw_from_same_model() {
        // Not bit-identical (different RNG streams), but statistically
        // compatible: mean sizes within 25%.
        let g = path_graph(40);
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 2.0), config(5.0));
        let seq = sim.simulate_corpus(200, &mut StdRng::seed_from_u64(5));
        let par = sim.simulate_corpus_parallel(200, 5);
        let mean = |s: &CascadeSet| {
            s.cascades().iter().map(|c| c.len()).sum::<usize>() as f64 / s.len() as f64
        };
        let (ms, mp) = (mean(&seq), mean(&par));
        assert!(
            (ms - mp).abs() / ms < 0.25,
            "sequential mean {ms} vs parallel mean {mp}"
        );
    }

    #[test]
    fn single_source_rule_earliest_infection_wins() {
        // Diamond 0 -> {1, 2} -> 3 with extreme rate asymmetry: 3 is
        // reached overwhelmingly often through the fast branch, and in
        // every run its recorded time is the earliest arrival.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 100.0);
        b.add_edge(NodeId(0), NodeId(2), 0.01);
        b.add_edge(NodeId(1), NodeId(3), 100.0);
        b.add_edge(NodeId(2), NodeId(3), 0.01);
        let g = b.build();
        let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 1.0), config(1e6));
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let c = sim.simulate_from(NodeId(0), &mut rng);
            // Times strictly ordered and node 3 never infected before
            // at least one of its predecessors.
            if let Some(t3) = c.time_of(NodeId(3)) {
                let t1 = c.time_of(NodeId(1)).unwrap_or(f64::INFINITY);
                let t2 = c.time_of(NodeId(2)).unwrap_or(f64::INFINITY);
                assert!(t3 >= t1.min(t2));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rates::EdgeWeightRates;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viralcast_graph::GraphBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// On random graphs every produced cascade satisfies Definition 1
        /// and stays within the window.
        #[test]
        fn cascades_always_valid(
            seed in 0u64..1000,
            edges in prop::collection::vec((0u32..15, 0u32..15, 0.1f64..5.0), 1..60),
            window in 0.1f64..10.0,
        ) {
            let mut b = GraphBuilder::new(15);
            for &(u, v, w) in &edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v), w);
                }
            }
            let g = b.build();
            let cfg = SimulationConfig {
                observation_window: window,
                ..SimulationConfig::default()
            };
            let sim = Simulator::new(&g, EdgeWeightRates::new(&g, 1.0), cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let c = sim.simulate(&mut rng);
            // Valid by construction (Cascade::new validated); check extras.
            prop_assert!(!c.is_empty());
            prop_assert!(c.infections().iter().all(|i| i.time <= window + 1e-12));
            // Every non-seed infection has an in-neighbour infected
            // earlier (propagation follows edges).
            let t = g.transpose();
            for inf in &c.infections()[1..] {
                let has_source = t
                    .out_neighbors(inf.node)
                    .iter()
                    .any(|&p| c.time_of(p).is_some_and(|tp| tp < inf.time));
                prop_assert!(has_source, "orphan infection {:?}", inf.node);
            }
        }
    }
}
