//! Cascades — Definition 1 of the paper.
//!
//! "A cascade is a sequence of distinct infections `(v_i, t_{v_i})` for
//! `i = 1, 2, …, s`, where an infection is a tuple indicating the node
//! `v_i` gets infected at time `t_{v_i}`." Two invariants follow and are
//! enforced here: infection times are non-decreasing (we store them
//! sorted) and every node appears at most once (SI dynamics — a node
//! cannot adopt the same message twice).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use viralcast_graph::NodeId;

/// A single infection event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Infection {
    /// The infected node.
    pub node: NodeId,
    /// The infection time (continuous; the unit is set by the simulator —
    /// hours in the GDELT world).
    pub time: f64,
}

impl Infection {
    /// Convenience constructor.
    pub fn new(node: impl Into<NodeId>, time: f64) -> Self {
        Infection {
            node: node.into(),
            time,
        }
    }
}

/// Why a sequence of infections is not a valid cascade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CascadeError {
    /// The cascade contains no infections.
    Empty,
    /// A node appears more than once.
    DuplicateNode(NodeId),
    /// An infection time is NaN or negative.
    InvalidTime,
}

impl std::fmt::Display for CascadeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CascadeError::Empty => write!(f, "cascade has no infections"),
            CascadeError::DuplicateNode(u) => {
                write!(
                    f,
                    "node {u} infected more than once (SI dynamics forbid this)"
                )
            }
            CascadeError::InvalidTime => write!(f, "infection time is NaN or negative"),
        }
    }
}

impl std::error::Error for CascadeError {}

/// A validated cascade: infections sorted by time, nodes distinct.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cascade {
    infections: Vec<Infection>,
}

impl Cascade {
    /// Builds a cascade, sorting by time and validating the invariants.
    pub fn new(mut infections: Vec<Infection>) -> Result<Self, CascadeError> {
        if infections.is_empty() {
            return Err(CascadeError::Empty);
        }
        for inf in &infections {
            if !inf.time.is_finite() || inf.time < 0.0 {
                return Err(CascadeError::InvalidTime);
            }
        }
        infections.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
        let mut seen = HashSet::with_capacity(infections.len());
        for inf in &infections {
            if !seen.insert(inf.node) {
                return Err(CascadeError::DuplicateNode(inf.node));
            }
        }
        Ok(Cascade { infections })
    }

    /// Number of infections (the *cascade size* the prediction task
    /// targets).
    pub fn len(&self) -> usize {
        self.infections.len()
    }

    /// Whether the cascade is empty (never true for a constructed
    /// cascade, but useful on slices of views).
    pub fn is_empty(&self) -> bool {
        self.infections.is_empty()
    }

    /// The infections in time order.
    pub fn infections(&self) -> &[Infection] {
        &self.infections
    }

    /// The earliest infection — the cascade's seed.
    pub fn seed(&self) -> Infection {
        self.infections[0]
    }

    /// Time span from first to last infection ("duration of events" in
    /// Section II).
    pub fn duration(&self) -> f64 {
        self.infections.last().unwrap().time - self.infections[0].time
    }

    /// The node sequence in infection order (used by the co-occurrence
    /// graph builder).
    pub fn node_sequence(&self) -> Vec<NodeId> {
        self.infections.iter().map(|i| i.node).collect()
    }

    /// Whether `u` is infected in this cascade.
    pub fn contains(&self, u: NodeId) -> bool {
        self.infections.iter().any(|i| i.node == u)
    }

    /// Infection time of `u`, if infected.
    pub fn time_of(&self, u: NodeId) -> Option<f64> {
        self.infections.iter().find(|i| i.node == u).map(|i| i.time)
    }

    /// The prefix of infections with `time ≤ cutoff` — the "early
    /// adopters" fed to the prediction features. May be empty.
    pub fn prefix_until(&self, cutoff: f64) -> &[Infection] {
        let end = self.infections.partition_point(|i| i.time <= cutoff);
        &self.infections[..end]
    }

    /// Early adopters within the first `fraction` of an observation
    /// window of length `window`, measured from the seed time. The paper
    /// uses `fraction = 2/7` on SBM cascades and the first 5 hours on
    /// GDELT events.
    pub fn early_adopters(&self, window: f64, fraction: f64) -> &[Infection] {
        let cutoff = self.seed().time + window * fraction;
        self.prefix_until(cutoff)
    }

    /// A new cascade truncated to `time ≤ cutoff`, or `None` if nothing
    /// survives.
    pub fn truncate(&self, cutoff: f64) -> Option<Cascade> {
        let prefix = self.prefix_until(cutoff);
        if prefix.is_empty() {
            None
        } else {
            Some(Cascade {
                infections: prefix.to_vec(),
            })
        }
    }
}

/// A corpus of cascades over a common node universe.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CascadeSet {
    /// Number of nodes in the universe (node ids are `0..node_count`).
    node_count: usize,
    cascades: Vec<Cascade>,
}

impl CascadeSet {
    /// A corpus over `node_count` nodes.
    pub fn new(node_count: usize, cascades: Vec<Cascade>) -> Self {
        debug_assert!(cascades
            .iter()
            .all(|c| c.infections().iter().all(|i| i.node.index() < node_count)));
        CascadeSet {
            node_count,
            cascades,
        }
    }

    /// Number of nodes in the universe.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of cascades.
    pub fn len(&self) -> usize {
        self.cascades.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.cascades.is_empty()
    }

    /// The cascades.
    pub fn cascades(&self) -> &[Cascade] {
        &self.cascades
    }

    /// Adds a cascade.
    pub fn push(&mut self, c: Cascade) {
        debug_assert!(c
            .infections()
            .iter()
            .all(|i| i.node.index() < self.node_count));
        self.cascades.push(c);
    }

    /// Splits into `(first k, rest)` — the paper trains embeddings on the
    /// first 2 000 cascades and evaluates prediction on the last 1 000.
    pub fn split_at(&self, k: usize) -> (CascadeSet, CascadeSet) {
        let k = k.min(self.cascades.len());
        (
            CascadeSet::new(self.node_count, self.cascades[..k].to_vec()),
            CascadeSet::new(self.node_count, self.cascades[k..].to_vec()),
        )
    }

    /// Node sequences of every cascade (co-occurrence input).
    pub fn node_sequences(&self) -> Vec<Vec<NodeId>> {
        self.cascades.iter().map(|c| c.node_sequence()).collect()
    }

    /// Total number of infections across all cascades.
    pub fn total_infections(&self) -> usize {
        self.cascades.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inf(node: u32, time: f64) -> Infection {
        Infection::new(node, time)
    }

    #[test]
    fn construction_sorts_by_time() {
        let c = Cascade::new(vec![inf(2, 3.0), inf(0, 1.0), inf(1, 2.0)]).unwrap();
        let times: Vec<f64> = c.infections().iter().map(|i| i.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.seed().node, NodeId(0));
    }

    #[test]
    fn rejects_duplicate_nodes() {
        let err = Cascade::new(vec![inf(0, 1.0), inf(0, 2.0)]).unwrap_err();
        assert_eq!(err, CascadeError::DuplicateNode(NodeId(0)));
    }

    #[test]
    fn rejects_empty_and_bad_times() {
        assert_eq!(Cascade::new(vec![]).unwrap_err(), CascadeError::Empty);
        assert_eq!(
            Cascade::new(vec![inf(0, f64::NAN)]).unwrap_err(),
            CascadeError::InvalidTime
        );
        assert_eq!(
            Cascade::new(vec![inf(0, -1.0)]).unwrap_err(),
            CascadeError::InvalidTime
        );
    }

    #[test]
    fn duration_and_size() {
        let c = Cascade::new(vec![inf(0, 1.0), inf(1, 4.5)]).unwrap();
        assert_eq!(c.len(), 2);
        assert!((c.duration() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_until_is_inclusive() {
        let c = Cascade::new(vec![inf(0, 1.0), inf(1, 2.0), inf(2, 3.0)]).unwrap();
        assert_eq!(c.prefix_until(2.0).len(), 2);
        assert_eq!(c.prefix_until(1.9).len(), 1);
        assert_eq!(c.prefix_until(0.5).len(), 0);
    }

    #[test]
    fn early_adopters_two_sevenths() {
        // Window 7.0, fraction 2/7 ⇒ cutoff = seed + 2.0.
        let c = Cascade::new(vec![inf(0, 0.0), inf(1, 1.5), inf(2, 2.5), inf(3, 6.0)]).unwrap();
        let early = c.early_adopters(7.0, 2.0 / 7.0);
        assert_eq!(early.len(), 2);
    }

    #[test]
    fn truncate_keeps_prefix_or_none() {
        let c = Cascade::new(vec![inf(0, 1.0), inf(1, 2.0)]).unwrap();
        assert_eq!(c.truncate(1.5).unwrap().len(), 1);
        assert!(c.truncate(0.5).is_none());
    }

    #[test]
    fn time_of_and_contains() {
        let c = Cascade::new(vec![inf(0, 1.0), inf(5, 2.0)]).unwrap();
        assert!(c.contains(NodeId(5)));
        assert!(!c.contains(NodeId(3)));
        assert_eq!(c.time_of(NodeId(5)), Some(2.0));
        assert_eq!(c.time_of(NodeId(3)), None);
    }

    #[test]
    fn set_split_matches_paper_protocol() {
        let mk = |t: f64| Cascade::new(vec![inf(0, t)]).unwrap();
        let set = CascadeSet::new(1, (0..10).map(|i| mk(i as f64)).collect());
        let (train, test) = set.split_at(7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.node_count(), 1);
    }

    #[test]
    fn split_beyond_len_is_total() {
        let set = CascadeSet::new(1, vec![Cascade::new(vec![inf(0, 0.0)]).unwrap()]);
        let (a, b) = set.split_at(10);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn total_infections_sums_sizes() {
        let c1 = Cascade::new(vec![inf(0, 0.0), inf(1, 1.0)]).unwrap();
        let c2 = Cascade::new(vec![inf(2, 0.0)]).unwrap();
        let set = CascadeSet::new(3, vec![c1, c2]);
        assert_eq!(set.total_infections(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let c = Cascade::new(vec![inf(0, 1.0), inf(1, 2.0)]).unwrap();
        let s = serde_json::to_string(&c).unwrap();
        let c2: Cascade = serde_json::from_str(&s).unwrap();
        assert_eq!(c, c2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn infection_list() -> impl Strategy<Value = Vec<Infection>> {
        prop::collection::btree_map(0u32..50, 0.0f64..100.0, 1..30)
            .prop_map(|m| m.into_iter().map(|(n, t)| Infection::new(n, t)).collect())
    }

    proptest! {
        /// Constructed cascades always have non-decreasing times and
        /// distinct nodes.
        #[test]
        fn invariants_hold(infs in infection_list()) {
            let c = Cascade::new(infs).unwrap();
            let inf = c.infections();
            prop_assert!(inf.windows(2).all(|w| w[0].time <= w[1].time));
            let mut nodes: Vec<_> = inf.iter().map(|i| i.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), inf.len());
        }

        /// prefix_until is monotone in the cutoff and bounded by len.
        #[test]
        fn prefix_monotone(infs in infection_list(), a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let c = Cascade::new(infs).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.prefix_until(lo).len() <= c.prefix_until(hi).len());
            prop_assert!(c.prefix_until(hi).len() <= c.len());
        }

        /// Truncation at the last time returns the whole cascade.
        #[test]
        fn truncate_at_end_is_identity(infs in infection_list()) {
            let c = Cascade::new(infs).unwrap();
            let last = c.infections().last().unwrap().time;
            prop_assert_eq!(c.truncate(last).unwrap().len(), c.len());
        }
    }
}
