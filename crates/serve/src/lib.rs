//! `viralcast-serve`: the online prediction daemon.
//!
//! A zero-external-dependency HTTP/1.1 server over `std::net` that keeps
//! a versioned, atomically hot-swappable model snapshot in memory and
//! answers hazard, next-adopter, and influencer queries from it while a
//! background trainer folds freshly ingested cascades back into the
//! model. The snapshot holds an `Arc<dyn viralcast_model::CascadeModel>`
//! — any registered backend (the paper's embeddings, the NETINF greedy
//! baseline, …) serves through the same endpoints.
//!
//! Layering, bottom to top:
//!
//! - [`json`] — a strict parser into `viralcast_obs::JsonValue` (the obs
//!   crate only writes JSON; the daemon must also read it);
//! - [`http`] — bounded request parsing and response framing;
//! - [`snapshot`] — the `Arc`-swapped [`snapshot::ModelSnapshot`] store;
//! - [`shard`] — [`shard::RowBlock`] candidate-row ownership, the unit a
//!   cluster places on each daemon (re-exported from `viralcast-model`,
//!   where the trait's batched scans consume it);
//! - [`ingest`] — the bounded cascade buffer behind `POST /v1/ingest`;
//! - [`replica`] — follower-role state: the leader's address plus the
//!   lag record a replication poller keeps current (the poller itself
//!   lives in `viralcast-replica`);
//! - [`api`] — endpoint codecs and model evaluation, socket-free;
//! - [`trace`] — request-scoped trace IDs (accepted or generated);
//! - [`router`] — `(method, path)` dispatch over [`router::AppState`];
//! - [`trainer`] — the retraining thread (the learner is injected as a
//!   [`trainer::RetrainFn`], keeping this crate independent of the
//!   `viralcast` facade);
//! - [`server`] — listener, worker pool, and the [`server::ServerHandle`]
//!   lifecycle;
//! - [`signal`] / [`client`] — ctrl-c plumbing and a tiny test client.
//!
//! The daemon deliberately depends on nothing outside the workspace and
//! the standard library, so it builds (and keeps building) in offline
//! environments.

pub mod api;
pub mod client;
pub mod http;
pub mod ingest;
pub mod json;
pub mod replica;
pub mod router;
pub mod server;
pub mod shard;
pub mod signal;
pub mod snapshot;
pub mod trace;
pub mod trainer;

pub use client::{
    request_with_retry, request_with_retry_on, transient_status, ClientResponse, Endpoints,
    RawResponse, Retried, RetryPolicy,
};
pub use http::{HttpLimits, Request, Response};
pub use ingest::{DrainedBatch, IngestBuffer, IngestReceipt, TraceMark};
pub use replica::{ReplicaRole, ReplicaStatus};
pub use router::DegradeThresholds;
pub use server::{start, BootRecovery, ServeConfig, ServerHandle};
pub use shard::RowBlock;
pub use signal::install_ctrlc;
pub use snapshot::{ModelSnapshot, SnapshotStore};
pub use trainer::{RetrainFn, TrainerConfig};

/// The durability layer (`viralcast-store`), re-exported so callers
/// configuring `--data-dir` serving reach [`store::FsyncPolicy`] and
/// [`store::WalOptions`] without a separate dependency.
pub use viralcast_store as store;

/// The backend abstraction (`viralcast-model`), re-exported so callers
/// constructing a daemon reach [`model::CascadeModel`],
/// [`model::EmbeddingBackend`], and [`model::NetInfBackend`] without a
/// separate dependency.
pub use viralcast_model as model;
pub use viralcast_model::{BackendMismatch, CascadeModel};
