//! Endpoint codecs: JSON bodies ⇄ typed requests, model reads → JSON.
//!
//! Parsing and model evaluation are split from the router so they unit
//! test without sockets. Every response object carries the
//! `snapshot_version` it was computed from — the contract that lets
//! clients detect hot swaps (and the integration tests assert on).

use crate::json;
use viralcast_graph::NodeId;
use viralcast_model::CascadeModel;
use viralcast_obs::JsonValue;
use viralcast_propagation::{Cascade, Infection};

use crate::shard::RowBlock;
use crate::snapshot::ModelSnapshot;

/// `POST /v1/hazard` body: pairwise rate queries.
#[derive(Clone, Debug, PartialEq)]
pub struct HazardRequest {
    /// `(source, target)` node pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Optional delay for survival probabilities.
    pub dt: Option<f64>,
}

/// Parses a hazard request body.
pub fn parse_hazard(body: &JsonValue) -> Result<HazardRequest, String> {
    let pairs_json = json::as_arr(json::get(body, "pairs").ok_or("missing \"pairs\" array")?)
        .ok_or("\"pairs\" must be an array")?;
    let mut pairs = Vec::with_capacity(pairs_json.len());
    for (i, pair) in pairs_json.iter().enumerate() {
        let items = json::as_arr(pair).ok_or_else(|| format!("pairs[{i}] must be [u, v]"))?;
        if items.len() != 2 {
            return Err(format!("pairs[{i}] must have exactly two node ids"));
        }
        let u = parse_node(&items[0]).map_err(|e| format!("pairs[{i}][0]: {e}"))?;
        let v = parse_node(&items[1]).map_err(|e| format!("pairs[{i}][1]: {e}"))?;
        pairs.push((u, v));
    }
    let dt = match json::get(body, "dt") {
        None | Some(JsonValue::Null) => None,
        Some(v) => {
            let dt = json::as_f64(v).ok_or("\"dt\" must be a number")?;
            if !dt.is_finite() || dt < 0.0 {
                return Err("\"dt\" must be a non-negative finite number".into());
            }
            Some(dt)
        }
    };
    Ok(HazardRequest { pairs, dt })
}

/// Evaluates a hazard request against one snapshot.
pub fn hazard_json(snap: &ModelSnapshot, req: &HazardRequest) -> Result<JsonValue, String> {
    let model = snap.model.as_ref();
    let mut results = Vec::with_capacity(req.pairs.len());
    for &(u, v) in &req.pairs {
        check_node(u, model)?;
        check_node(v, model)?;
        // Constant hazard (eq. 6 for the embed backend) ⇒ exponential
        // delay, so S(Δt) = e^{−rate·Δt}; computed directly to allow
        // rate = 0.
        let rate = model.hazard(u, v);
        let mut fields = vec![
            ("source", JsonValue::from(u.0 as u64)),
            ("target", JsonValue::from(v.0 as u64)),
            ("rate", JsonValue::from(rate)),
        ];
        if let Some(dt) = req.dt {
            fields.push(("survival", JsonValue::from((-rate * dt).exp())));
        }
        results.push(JsonValue::obj(fields));
    }
    Ok(JsonValue::obj(vec![
        ("snapshot_version", JsonValue::from(snap.version)),
        ("results", JsonValue::Arr(results)),
    ]))
}

/// `POST /v1/predict` body: a partial cascade to extend.
#[derive(Clone, Debug)]
pub struct PredictRequest {
    /// The observed infections (any order; times need not be sorted).
    pub infections: Vec<Infection>,
    /// How many candidates to return.
    pub top: usize,
}

/// Parses a predict request body.
pub fn parse_predict(body: &JsonValue) -> Result<PredictRequest, String> {
    let events = json::as_arr(json::get(body, "cascade").ok_or("missing \"cascade\" array")?)
        .ok_or("\"cascade\" must be an array")?;
    if events.is_empty() {
        return Err("\"cascade\" must contain at least one infection".into());
    }
    let infections = events
        .iter()
        .enumerate()
        .map(|(i, e)| parse_infection(e).map_err(|err| format!("cascade[{i}]: {err}")))
        .collect::<Result<Vec<_>, _>>()?;
    let top = match json::get(body, "top") {
        None => 10,
        Some(v) => json::as_u64(v).ok_or("\"top\" must be a non-negative integer")? as usize,
    };
    Ok(PredictRequest { infections, top })
}

/// Ranks the next adopters of a partial cascade.
///
/// With constant hazards, the instantaneous rate at which an uninfected
/// node `v` gets infected is the sum of `hazard(u, v)` over the already
/// infected `u` — the exact quantity the simulator races on — so ranking
/// by that sum orders candidates by imminence.
///
/// `owned` restricts the candidate scan to the rows a shard owns (see
/// [`RowBlock`]); `None` scans every row. The infected set is summed in
/// sorted node order so the same request yields bit-identical rates on
/// every process — the property that lets a router's merged shard
/// rankings equal a single box's byte for byte.
pub fn predict_json(
    snap: &ModelSnapshot,
    req: &PredictRequest,
    owned: Option<&RowBlock>,
) -> Result<JsonValue, String> {
    let model = snap.model.as_ref();
    for inf in &req.infections {
        check_node(inf.node, model)?;
    }
    let mut infected: Vec<NodeId> = req.infections.iter().map(|i| i.node).collect();
    infected.sort_unstable();
    infected.dedup();
    let scored = model.rank_candidates(&infected, req.top, owned);
    let candidates = scored
        .into_iter()
        .map(|(v, rate)| {
            JsonValue::obj(vec![
                ("node", JsonValue::from(v.0 as u64)),
                ("rate", JsonValue::from(rate)),
            ])
        })
        .collect();
    Ok(JsonValue::obj(vec![
        ("snapshot_version", JsonValue::from(snap.version)),
        ("observed", JsonValue::from(req.infections.len())),
        ("candidates", JsonValue::Arr(candidates)),
    ]))
}

/// Outcome of decoding one `POST /v1/ingest` body.
#[derive(Debug)]
pub struct IngestBatch {
    /// Cascades that validated against the node universe.
    pub cascades: Vec<Cascade>,
    /// Cascades rejected (bad shape, invalid times, out-of-range nodes).
    pub rejected: usize,
    /// First few rejection reasons, for the response body.
    pub errors: Vec<String>,
}

/// Parses an ingest body, validating each cascade against `node_count`.
/// Individually broken cascades are rejected (with reasons) without
/// failing the batch; a structurally malformed body is an `Err`.
pub fn parse_ingest(body: &JsonValue, node_count: usize) -> Result<IngestBatch, String> {
    let lists = json::as_arr(json::get(body, "cascades").ok_or("missing \"cascades\" array")?)
        .ok_or("\"cascades\" must be an array")?;
    let mut cascades = Vec::with_capacity(lists.len());
    let mut rejected = 0usize;
    let mut errors = Vec::new();
    for (i, list) in lists.iter().enumerate() {
        match parse_one_cascade(list, node_count) {
            Ok(c) => cascades.push(c),
            Err(e) => {
                rejected += 1;
                if errors.len() < 5 {
                    errors.push(format!("cascades[{i}]: {e}"));
                }
            }
        }
    }
    Ok(IngestBatch {
        cascades,
        rejected,
        errors,
    })
}

fn parse_one_cascade(list: &JsonValue, node_count: usize) -> Result<Cascade, String> {
    let events = json::as_arr(list).ok_or("must be an array of infections")?;
    let infections = events
        .iter()
        .enumerate()
        .map(|(i, e)| parse_infection(e).map_err(|err| format!("[{i}]: {err}")))
        .collect::<Result<Vec<_>, _>>()?;
    for inf in &infections {
        if inf.node.index() >= node_count {
            return Err(format!(
                "node {} outside the model universe (node_count {node_count})",
                inf.node
            ));
        }
    }
    Cascade::new(infections).map_err(|e| e.to_string())
}

/// `GET /v1/influencers` → top-k ranking, globally or per topic.
///
/// Scores are the backend's influencer metric (for the embed backend:
/// Euclidean norm of `A_u` globally, single component per topic,
/// matching `viralcast::influencers`). `owned` restricts the ranking to
/// a shard's rows, as in [`predict_json`].
pub fn influencers_json(
    snap: &ModelSnapshot,
    topic: Option<usize>,
    top: usize,
    owned: Option<&RowBlock>,
) -> Result<JsonValue, String> {
    let scored = snap.model.influencers(topic, top, owned)?;
    let influencers = scored
        .into_iter()
        .map(|(u, score)| {
            JsonValue::obj(vec![
                ("node", JsonValue::from(u.0 as u64)),
                ("score", JsonValue::from(score)),
            ])
        })
        .collect();
    let mut fields = vec![("snapshot_version", JsonValue::from(snap.version))];
    if let Some(t) = topic {
        fields.push(("topic", JsonValue::from(t)));
    }
    fields.push(("influencers", JsonValue::Arr(influencers)));
    Ok(JsonValue::obj(fields))
}

fn parse_node(value: &JsonValue) -> Result<NodeId, String> {
    let raw = json::as_u64(value).ok_or("node id must be a non-negative integer")?;
    if raw > u32::MAX as u64 {
        return Err(format!("node id {raw} overflows u32"));
    }
    Ok(NodeId(raw as u32))
}

fn parse_infection(value: &JsonValue) -> Result<Infection, String> {
    let node = parse_node(json::get(value, "node").ok_or("missing \"node\"")?)?;
    let time = json::as_f64(json::get(value, "time").ok_or("missing \"time\"")?)
        .ok_or("\"time\" must be a number")?;
    if !time.is_finite() || time < 0.0 {
        return Err("\"time\" must be a non-negative finite number".into());
    }
    Ok(Infection { node, time })
}

fn check_node(u: NodeId, model: &dyn CascadeModel) -> Result<(), String> {
    if u.index() >= model.node_count() {
        return Err(format!(
            "node {u} outside the model universe (node_count {})",
            model.node_count()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn snapshot() -> ModelSnapshot {
        // 3 nodes × 2 topics. rate(0,1) = 1*0 + 2*1 = 2; node 2 all-zero.
        ModelSnapshot {
            version: 7,
            model: std::sync::Arc::new(viralcast_model::EmbeddingBackend::new(
                viralcast_embed::Embeddings::from_matrices(
                    3,
                    2,
                    vec![1.0, 2.0, 0.5, 0.5, 0.0, 0.0],
                    vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
                ),
            )),
            published_unix: 0,
        }
    }

    #[test]
    fn hazard_round_trip() {
        let req = parse_hazard(&parse(r#"{"pairs":[[0,1]],"dt":1.0}"#).unwrap()).unwrap();
        assert_eq!(req.pairs, vec![(NodeId(0), NodeId(1))]);
        let out = hazard_json(&snapshot(), &req).unwrap().render();
        assert!(out.contains("\"snapshot_version\":7"), "{out}");
        assert!(out.contains("\"rate\":2"), "{out}");
        // survival = e^{-2·1}
        assert!(
            out.contains(&format!("\"survival\":{}", (-2.0f64).exp())),
            "{out}"
        );
    }

    #[test]
    fn hazard_rejects_bad_bodies() {
        for bad in [
            r#"{}"#,
            r#"{"pairs":[[0]]}"#,
            r#"{"pairs":[[0,1,2]]}"#,
            r#"{"pairs":[["a",1]]}"#,
            r#"{"pairs":[[0,1]],"dt":-1}"#,
        ] {
            assert!(
                parse_hazard(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn hazard_rejects_out_of_range_nodes() {
        let req = parse_hazard(&parse(r#"{"pairs":[[0,99]]}"#).unwrap()).unwrap();
        let err = hazard_json(&snapshot(), &req).unwrap_err();
        assert!(err.contains("outside the model universe"), "{err}");
    }

    #[test]
    fn predict_ranks_uninfected_by_total_rate() {
        let req = parse_predict(&parse(r#"{"cascade":[{"node":0,"time":0.0}],"top":5}"#).unwrap())
            .unwrap();
        let out = predict_json(&snapshot(), &req, None).unwrap();
        // Candidates are nodes 1 and 2: rate(0,1)=2, rate(0,2)=0.
        let candidates =
            crate::json::as_arr(crate::json::get(&out, "candidates").unwrap()).unwrap();
        assert_eq!(candidates.len(), 2);
        assert_eq!(
            crate::json::as_u64(crate::json::get(&candidates[0], "node").unwrap()),
            Some(1)
        );
        assert_eq!(
            crate::json::as_f64(crate::json::get(&candidates[0], "rate").unwrap()),
            Some(2.0)
        );
    }

    #[test]
    fn predict_requires_a_nonempty_cascade() {
        assert!(parse_predict(&parse(r#"{"cascade":[]}"#).unwrap()).is_err());
        assert!(parse_predict(&parse(r#"{"top":3}"#).unwrap()).is_err());
    }

    #[test]
    fn ingest_separates_good_from_bad() {
        let body = parse(
            r#"{"cascades":[
                [{"node":0,"time":0.0},{"node":1,"time":0.5}],
                [{"node":0,"time":0.0},{"node":0,"time":1.0}],
                [{"node":9,"time":0.0}],
                []
            ]}"#,
        )
        .unwrap();
        let batch = parse_ingest(&body, 3).unwrap();
        assert_eq!(batch.cascades.len(), 1);
        assert_eq!(batch.rejected, 3);
        assert_eq!(batch.errors.len(), 3);
        assert!(
            batch.errors[0].contains("infected more than once"),
            "{:?}",
            batch.errors
        );
        assert!(batch.errors[1].contains("outside the model universe"));
        assert!(batch.errors[2].contains("no infections"));
    }

    #[test]
    fn influencers_global_and_topic_rankings() {
        let snap = snapshot();
        // Norms: n0 = √5, n1 = √0.5, n2 = 0.
        let out = influencers_json(&snap, None, 2, None).unwrap().render();
        let n0 = (5.0f64).sqrt();
        assert!(
            out.contains(&format!("{{\"node\":0,\"score\":{n0}}}")),
            "{out}"
        );
        // Topic 1: n0 = 2.0 leads.
        let out = influencers_json(&snap, Some(1), 1, None).unwrap().render();
        assert!(out.contains("\"topic\":1"), "{out}");
        assert!(out.contains("{\"node\":0,\"score\":2}"), "{out}");
        assert!(influencers_json(&snap, Some(9), 1, None).is_err());
    }

    #[test]
    fn shard_filter_restricts_candidates_to_owned_rows() {
        use crate::shard::RowBlock;
        let snap = snapshot();
        // Shard 1 of 2 (round-robin over 3 nodes) owns only node 1.
        let block = RowBlock::round_robin(3, 1, 2).unwrap();
        let req = parse_predict(&parse(r#"{"cascade":[{"node":0,"time":0.0}],"top":5}"#).unwrap())
            .unwrap();
        let out = predict_json(&snap, &req, Some(&block)).unwrap();
        let candidates =
            crate::json::as_arr(crate::json::get(&out, "candidates").unwrap()).unwrap();
        assert_eq!(candidates.len(), 1);
        assert_eq!(
            crate::json::as_u64(crate::json::get(&candidates[0], "node").unwrap()),
            Some(1)
        );
        // Influencers under the same mask: only node 1 is ranked.
        let out = influencers_json(&snap, None, 5, Some(&block))
            .unwrap()
            .render();
        assert!(out.contains("\"node\":1"), "{out}");
        assert!(!out.contains("\"node\":0"), "{out}");
        assert!(!out.contains("\"node\":2"), "{out}");
    }

    #[test]
    fn shard_filtered_rankings_tile_the_unsharded_ranking() {
        use crate::shard::RowBlock;
        let snap = snapshot();
        let req = parse_predict(&parse(r#"{"cascade":[{"node":0,"time":0.0}],"top":3}"#).unwrap())
            .unwrap();
        let full = predict_json(&snap, &req, None).unwrap().render();
        // Every candidate object a shard emits appears verbatim in the
        // single-box response — the byte-identity the router relies on.
        for shard in 0..2 {
            let block = RowBlock::round_robin(3, shard, 2).unwrap();
            let part = predict_json(&snap, &req, Some(&block)).unwrap();
            let candidates =
                crate::json::as_arr(crate::json::get(&part, "candidates").unwrap()).unwrap();
            for c in candidates {
                assert!(full.contains(&c.render()), "{} not in {full}", c.render());
            }
        }
    }
}
