//! The daemon: listener, bounded worker pool, and lifecycle handle.
//!
//! The acceptor thread polls a non-blocking listener so it can notice
//! shutdown promptly, and feeds accepted connections into a bounded
//! channel. When every worker is busy and the channel is full the
//! acceptor answers 503 directly instead of queueing without bound.
//! Workers parse one request per connection, dispatch through the
//! router, and record per-endpoint latency histograms.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use viralcast_model::{BackendMismatch, CascadeModel};
use viralcast_obs as obs;
use viralcast_store::{EventStore, WalOptions};

use crate::http::{self, HttpError, HttpLimits, Response};
use crate::ingest::IngestBuffer;
use crate::router::{self, AppState};
use crate::snapshot::SnapshotStore;
use crate::trace;
use crate::trainer::{self, RetrainFn, TrainerConfig};

/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-endpoint latency histogram: exponential bounds from 250µs to
/// ~0.5s (12 doublings), resolution tracking magnitude.
fn latency_histogram(label: &str) -> std::sync::Arc<obs::Histogram> {
    obs::metrics().histogram_exponential(&format!("serve.http.latency_ms.{label}"), 0.25, 2.0, 12)
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests (≥ 1).
    pub workers: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Background trainer cadence.
    pub trainer: TrainerConfig,
    /// Ingest buffer capacity (cascades).
    pub ingest_capacity: usize,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Data directory for the durable event store. `None` (the
    /// default) serves purely in memory; `Some` write-ahead-logs every
    /// acked ingest, checkpoints each published snapshot, and recovers
    /// both at boot.
    pub data_dir: Option<PathBuf>,
    /// WAL tuning (segment size, fsync policy) when `data_dir` is set.
    pub wal: WalOptions,
    /// Path of the JSONL access log (one line per request). `None`
    /// disables access logging.
    pub access_log: Option<PathBuf>,
    /// When `/healthz` reports `degraded` instead of `ok`.
    pub degrade: router::DegradeThresholds,
    /// Candidate row block this daemon owns when serving as one shard
    /// of a cluster; `None` (the default) serves every row.
    pub shard: Option<crate::shard::RowBlock>,
    /// Follower role: `Some` makes this daemon a read-only replica —
    /// the trainer thread is not spawned (snapshots arrive from the
    /// leader through [`SnapshotStore::publish_version`]), ingest is
    /// refused with a 409 redirect to the leader, and `/healthz` /
    /// `/metrics` report replication lag.
    pub replica: Option<crate::replica::ReplicaRole>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            trainer: TrainerConfig::default(),
            ingest_capacity: 4096,
            limits: HttpLimits::default(),
            data_dir: None,
            wal: WalOptions::default(),
            access_log: None,
            degrade: router::DegradeThresholds::default(),
            shard: None,
            replica: None,
        }
    }
}

/// What a durable boot recovered from its data directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BootRecovery {
    /// Intact WAL records replayed (checkpointed or pending).
    pub replayed: usize,
    /// Acked-but-untrained events fed back into the ingest buffer.
    pub pending: usize,
    /// Bytes truncated from a torn final WAL segment.
    pub truncated_bytes: u64,
    /// Snapshot version the daemon resumed at (1 on a cold start).
    pub snapshot_version: u64,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or `request_shutdown` + `join`).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    snapshots: Arc<SnapshotStore>,
    ingest: Arc<IngestBuffer>,
    event_store: Option<Arc<Mutex<EventStore>>>,
    recovery: Option<BootRecovery>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The snapshot store the daemon serves from.
    pub fn snapshots(&self) -> Arc<SnapshotStore> {
        Arc::clone(&self.snapshots)
    }

    /// The ingest buffer feeding the trainer.
    pub fn ingest(&self) -> Arc<IngestBuffer> {
        Arc::clone(&self.ingest)
    }

    /// The durable event store, when booted with a data directory.
    pub fn event_store(&self) -> Option<Arc<Mutex<EventStore>>> {
        self.event_store.clone()
    }

    /// What boot recovered from the data directory (`None` without one).
    pub fn recovery(&self) -> Option<BootRecovery> {
        self.recovery
    }

    /// Asks every thread to wind down (returns immediately).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for all threads to exit. Call after `request_shutdown`.
    ///
    /// Joining the trainer first means an in-flight checkpoint finishes
    /// before this returns; the final WAL sync then closes the window an
    /// `FsyncPolicy::Interval` log leaves between the last acked batch
    /// and its fsync — a graceful stop must never lose acked records.
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(store) = &self.event_store {
            let mut guard = store.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = guard.sync() {
                obs::warn("serve", &format!("final WAL sync failed: {e}"), &[]);
            }
        }
    }

    /// Graceful stop: request shutdown, then join.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Binds the listener and spawns acceptor, workers, and trainer.
///
/// `retrain` is invoked by the trainer with the current model and a
/// fresh cascade batch; pass `CascadeModel::update` wrapped in a closure
/// (see the `serve` subcommand) or any stand-in.
///
/// # Errors
///
/// Besides the usual bind/open failures, a durable boot fails fast with
/// an `InvalidData` error wrapping [`BackendMismatch`] when the data
/// directory's checkpoint was written by a different backend than the
/// passed-in model — silently serving (or worse, retraining over) the
/// wrong backend's state would corrupt the lineage.
pub fn start(
    model: Arc<dyn CascadeModel>,
    retrain: RetrainFn,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    // Recover the durable state first: if the data directory holds a
    // checkpoint, it supersedes the passed-in model (same lineage, same
    // version), and every acked-but-untrained event in the WAL is fed
    // back to the trainer before the listener accepts traffic.
    let mut boot_model = model;
    let mut boot_version = 1u64;
    let mut pending = Vec::new();
    let mut recovery_summary = None;
    let event_store = match &config.data_dir {
        Some(dir) => {
            let (es, recovery) = EventStore::open(dir, config.wal)?;
            boot_version = recovery.snapshot_version();
            if let Some(recovered) = recovery.model {
                if recovered.backend_id() != boot_model.backend_id() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        BackendMismatch {
                            expected: boot_model.backend_id().to_string(),
                            found: recovered.backend_id().to_string(),
                        },
                    ));
                }
                boot_model = recovered;
            }
            recovery_summary = Some(BootRecovery {
                replayed: recovery.replayed,
                pending: recovery.pending.len(),
                truncated_bytes: recovery.truncated_bytes,
                snapshot_version: boot_version,
            });
            pending = recovery.pending;
            obs::info(
                "serve",
                &format!(
                    "recovered {} from {}: {} pending event(s), snapshot v{boot_version}",
                    if recovery.manifest.is_some() {
                        "checkpoint + WAL"
                    } else {
                        "WAL"
                    },
                    dir.display(),
                    pending.len(),
                ),
                &[],
            );
            Some(Arc::new(Mutex::new(es)))
        }
        None => None,
    };

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let snapshots = Arc::new(SnapshotStore::with_version(boot_model, boot_version));
    let ingest = Arc::new(IngestBuffer::new(config.ingest_capacity));
    if !pending.is_empty() {
        // Preload bypasses the capacity bound: these events were acked
        // in a previous life and must not be shed.
        ingest.preload(pending);
    }
    let access_log = match &config.access_log {
        Some(path) => Some(Arc::new(obs::AccessLog::create(path)?)),
        None => None,
    };
    let state = Arc::new(AppState {
        snapshots: Arc::clone(&snapshots),
        ingest: Arc::clone(&ingest),
        store: event_store.clone(),
        shed_retry_after_ms: config.trainer.interval.as_millis().max(1) as u64,
        started: Instant::now(),
        access_log,
        degrade: config.degrade,
        shard: config.shard.clone().map(Arc::new),
        replica: config.replica.clone(),
    });

    let workers = config.workers.max(1);
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers * 4);
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::with_capacity(workers + 2);
    for i in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let limits = config.limits;
        threads.push(
            std::thread::Builder::new()
                .name(format!("viralcast-worker-{i}"))
                .spawn(move || worker_loop(&rx, &state, &limits))?,
        );
    }

    // Followers never train: their snapshots arrive from the leader,
    // and a local trainer would fork the version lineage.
    if config.replica.is_none() {
        threads.push(trainer::spawn(
            Arc::clone(&snapshots),
            Arc::clone(&ingest),
            event_store.clone(),
            retrain,
            config.trainer,
            Arc::clone(&shutdown),
        ));
    }

    {
        let shutdown = Arc::clone(&shutdown);
        let state = Arc::clone(&state);
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        threads.push(
            std::thread::Builder::new()
                .name("viralcast-acceptor".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &tx,
                        &state,
                        &shutdown,
                        read_timeout,
                        write_timeout,
                    );
                    // `tx` drops here; workers unblock from `recv` and exit.
                })?,
        );
    }

    obs::info(
        "serve",
        &format!("listening on {addr} with {workers} workers"),
        &[],
    );
    Ok(ServerHandle {
        addr,
        shutdown,
        snapshots,
        ingest,
        event_store,
        recovery: recovery_summary,
        threads,
    })
}

fn accept_loop(
    listener: &TcpListener,
    tx: &mpsc::SyncSender<TcpStream>,
    state: &AppState,
    shutdown: &AtomicBool,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(e) => {
                obs::warn("serve", &format!("accept failed: {e}"), &[]);
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        // The listener is non-blocking; per-connection I/O must not be.
        if stream.set_nonblocking(false).is_err()
            || stream.set_read_timeout(Some(read_timeout)).is_err()
            || stream.set_write_timeout(Some(write_timeout)).is_err()
        {
            continue;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                obs::metrics().counter("serve.http.overload").incr(1);
                // The request was never read; the shed still gets a
                // trace ID and an access-log line so overload is
                // attributable from the client side.
                let trace_id = trace::generate_trace_id();
                let _ = Response::error(503, "server overloaded; retry later")
                    .with_header("X-Request-Id", trace_id.clone())
                    .write_to(&mut stream);
                if let Some(log) = &state.access_log {
                    log.append(&obs::AccessRecord {
                        method: "-",
                        path: "-",
                        status: 503,
                        snapshot_version: state.snapshots.version(),
                        latency_us: 0,
                        trace_id: &trace_id,
                    });
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &AppState, limits: &HttpLimits) {
    loop {
        // Take the lock only to dequeue; handling runs unlocked so slow
        // clients don't serialise the pool.
        let next = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match next {
            Ok(mut stream) => handle_connection(&mut stream, state, limits),
            Err(_) => break, // acceptor gone: shutdown
        }
    }
}

/// Reads one request, routes it, writes the response (stamped with the
/// request's trace ID), records metrics, and appends the access-log
/// line.
fn handle_connection(stream: &mut TcpStream, state: &AppState, limits: &HttpLimits) {
    let started = Instant::now();
    obs::metrics().counter("serve.http.requests").incr(1);
    // (method, path) survive for the access log even on routing errors;
    // a request too malformed to parse logs placeholders.
    let (response, trace_id, method, path) = match http::read_request(stream, limits) {
        Ok(req) => {
            let trace_id = trace::trace_id_for(&req);
            let response = router::route(&req, state, &trace_id);
            let label = router::endpoint_label(&req.path);
            latency_histogram(label).record(started.elapsed().as_secs_f64() * 1e3);
            (response, trace_id, req.method, req.path)
        }
        Err(e) => {
            let response = match e {
                HttpError::BadRequest(m) => Response::error(400, m),
                HttpError::HeadTooLarge(limit) => {
                    Response::error(431, format!("request head exceeds {limit} bytes"))
                }
                HttpError::BodyTooLarge(limit) => {
                    Response::error(413, format!("request body exceeds {limit} bytes"))
                }
                // Nothing sensible to answer on a dead transport.
                HttpError::Io(_) | HttpError::ConnectionClosed => return,
            };
            (response, trace::generate_trace_id(), "-".into(), "-".into())
        }
    };
    if response.status >= 400 {
        obs::metrics().counter("serve.http.errors").incr(1);
    }
    let response = response.with_header("X-Request-Id", trace_id.clone());
    let _ = response.write_to(stream);
    if let Some(log) = &state.access_log {
        log.append(&obs::AccessRecord {
            method: &method,
            path: &path,
            status: response.status,
            snapshot_version: state.snapshots.version(),
            latency_us: started.elapsed().as_micros() as u64,
            trace_id: &trace_id,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            trainer: TrainerConfig {
                interval: Duration::from_millis(20),
                min_batch: 1,
            },
            ..ServeConfig::default()
        }
    }

    fn embeddings() -> Arc<dyn CascadeModel> {
        Arc::new(viralcast_model::EmbeddingBackend::new(
            viralcast_embed::Embeddings::from_matrices(
                3,
                1,
                vec![1.0, 0.5, 0.0],
                vec![1.0, 1.0, 1.0],
            ),
        ))
    }

    fn identity_retrain() -> RetrainFn {
        Box::new(|model, _| Ok(Arc::clone(model)))
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let handle = start(embeddings(), identity_retrain(), config()).unwrap();
        let addr = handle.local_addr();

        let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"status\":\"ok\""), "{}", resp.body);

        let resp = client::request(
            &addr,
            "POST",
            "/v1/hazard",
            Some(r#"{"pairs":[[0,1]],"dt":1.0}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"rate\":"), "{}", resp.body);

        let resp = client::request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(resp.status, 404);

        handle.shutdown();
        // The port is released once the acceptor exits.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn ingest_triggers_a_background_retrain() {
        let handle = start(embeddings(), identity_retrain(), config()).unwrap();
        let addr = handle.local_addr();
        let resp = client::request(
            &addr,
            "POST",
            "/v1/ingest",
            Some(r#"{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":1.0}]]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"accepted\":1"), "{}", resp.body);

        let snapshots = handle.snapshots();
        let deadline = Instant::now() + Duration::from_secs(5);
        while snapshots.version() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(snapshots.version() >= 2, "trainer never published");
        handle.shutdown();
    }

    #[test]
    fn durable_boot_recovers_acked_ingests() {
        let dir =
            std::env::temp_dir().join(format!("viralcast-serve-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = config();
        cfg.data_dir = Some(dir.clone());
        // The trainer never fires: everything acked stays in the WAL.
        cfg.trainer.interval = Duration::from_secs(3600);

        let handle = start(embeddings(), identity_retrain(), cfg.clone()).unwrap();
        assert_eq!(
            handle.recovery(),
            Some(BootRecovery {
                snapshot_version: 1,
                ..BootRecovery::default()
            })
        );
        let resp = client::request(
            &handle.local_addr(),
            "POST",
            "/v1/ingest",
            Some(r#"{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":1.0}]]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        handle.shutdown();

        // Restart on the same directory: the acked event is back in the
        // trainer's queue, same snapshot lineage.
        let handle = start(embeddings(), identity_retrain(), cfg).unwrap();
        let recovery = handle.recovery().expect("durable boot reports recovery");
        assert_eq!(recovery.replayed, 1);
        assert_eq!(recovery.pending, 1);
        assert_eq!(recovery.snapshot_version, 1);
        assert_eq!(handle.ingest().len(), 1);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_shutdown_flushes_an_interval_policy_wal() {
        use viralcast_store::FsyncPolicy;
        let dir =
            std::env::temp_dir().join(format!("viralcast-serve-flush-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = config();
        cfg.data_dir = Some(dir.clone());
        // Neither the trainer nor the interval policy would sync on
        // their own within this test's lifetime.
        cfg.trainer.interval = Duration::from_secs(3600);
        cfg.wal = WalOptions {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Interval(Duration::from_secs(3600)),
        };

        let handle = start(embeddings(), identity_retrain(), cfg.clone()).unwrap();
        let resp = client::request(
            &handle.local_addr(),
            "POST",
            "/v1/ingest",
            Some(r#"{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":1.0}]]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        // The acked record sits in the page cache: no fsync has covered
        // it yet. The graceful shutdown must run one.
        let before = obs::metrics().counter("store.wal.fsyncs").get();
        handle.shutdown();
        let after = obs::metrics().counter("store.wal.fsyncs").get();
        assert!(after > before, "shutdown did not fsync the WAL");

        // And the record is durably there on the next boot.
        let handle = start(embeddings(), identity_retrain(), cfg).unwrap();
        assert_eq!(handle.recovery().map(|r| r.pending), Some(1));
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_boot_refuses_a_foreign_backend_checkpoint() {
        let dir =
            std::env::temp_dir().join(format!("viralcast-serve-backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = config();
        cfg.data_dir = Some(dir.clone());
        cfg.trainer.interval = Duration::from_millis(20);

        // First life: an embed daemon publishes (and checkpoints) v2.
        let handle = start(embeddings(), identity_retrain(), cfg.clone()).unwrap();
        let resp = client::request(
            &handle.local_addr(),
            "POST",
            "/v1/ingest",
            Some(r#"{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":1.0}]]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let snapshots = handle.snapshots();
        let deadline = Instant::now() + Duration::from_secs(5);
        while snapshots.version() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(snapshots.version() >= 2, "trainer never published");
        handle.shutdown();

        // Second life: restarting over the same directory with a netinf
        // model must fail fast with a typed BackendMismatch, not serve
        // the wrong backend's checkpoint.
        let corpus = viralcast_propagation::CascadeSet::new(
            3,
            vec![viralcast_propagation::Cascade::new(vec![
                viralcast_propagation::Infection::new(0u32, 0.0),
                viralcast_propagation::Infection::new(1u32, 1.0),
            ])
            .unwrap()],
        );
        let netinf =
            viralcast_model::NetInfBackend::fit(&corpus, viralcast_model::NetInfConfig::default());
        let err = match start(Arc::new(netinf), identity_retrain(), cfg) {
            Err(e) => e,
            Ok(handle) => {
                handle.shutdown();
                panic!("a netinf boot over an embed checkpoint must fail");
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mismatch = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<BackendMismatch>())
            .expect("error carries a BackendMismatch");
        assert_eq!(mismatch.expected, "netinf");
        assert_eq!(mismatch.found, "embed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_requests_get_http_errors() {
        use std::io::{Read, Write};
        let handle = start(embeddings(), identity_retrain(), config()).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        handle.shutdown();
    }
}
