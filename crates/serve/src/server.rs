//! The daemon: listener, bounded worker pool, and lifecycle handle.
//!
//! The acceptor thread polls a non-blocking listener so it can notice
//! shutdown promptly, and feeds accepted connections into a bounded
//! channel. When every worker is busy and the channel is full the
//! acceptor answers 503 directly instead of queueing without bound.
//! Workers parse one request per connection, dispatch through the
//! router, and record per-endpoint latency histograms.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use viralcast_embed::Embeddings;
use viralcast_obs as obs;

use crate::http::{self, HttpError, HttpLimits, Response};
use crate::ingest::IngestBuffer;
use crate::router::{self, AppState};
use crate::snapshot::SnapshotStore;
use crate::trainer::{self, RetrainFn, TrainerConfig};

/// Latency histogram bounds, in milliseconds.
const LATENCY_BOUNDS_MS: [f64; 10] = [0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0];

/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests (≥ 1).
    pub workers: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Background trainer cadence.
    pub trainer: TrainerConfig,
    /// Ingest buffer capacity (cascades).
    pub ingest_capacity: usize,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            trainer: TrainerConfig::default(),
            ingest_capacity: 4096,
            limits: HttpLimits::default(),
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or `request_shutdown` + `join`).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    snapshots: Arc<SnapshotStore>,
    ingest: Arc<IngestBuffer>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The snapshot store the daemon serves from.
    pub fn snapshots(&self) -> Arc<SnapshotStore> {
        Arc::clone(&self.snapshots)
    }

    /// The ingest buffer feeding the trainer.
    pub fn ingest(&self) -> Arc<IngestBuffer> {
        Arc::clone(&self.ingest)
    }

    /// Asks every thread to wind down (returns immediately).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for all threads to exit. Call after `request_shutdown`.
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Graceful stop: request shutdown, then join.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Binds the listener and spawns acceptor, workers, and trainer.
///
/// `retrain` is invoked by the trainer with the current embeddings and a
/// fresh cascade batch; pass `viralcast::update_embeddings` wrapped in a
/// closure (see the `serve` subcommand) or any stand-in.
pub fn start(
    embeddings: Embeddings,
    retrain: RetrainFn,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let snapshots = Arc::new(SnapshotStore::new(embeddings));
    let ingest = Arc::new(IngestBuffer::new(config.ingest_capacity));
    let state = Arc::new(AppState {
        snapshots: Arc::clone(&snapshots),
        ingest: Arc::clone(&ingest),
        started: Instant::now(),
    });

    let workers = config.workers.max(1);
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers * 4);
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::with_capacity(workers + 2);
    for i in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let limits = config.limits;
        threads.push(
            std::thread::Builder::new()
                .name(format!("viralcast-worker-{i}"))
                .spawn(move || worker_loop(&rx, &state, &limits))?,
        );
    }

    threads.push(trainer::spawn(
        Arc::clone(&snapshots),
        Arc::clone(&ingest),
        retrain,
        config.trainer,
        Arc::clone(&shutdown),
    ));

    {
        let shutdown = Arc::clone(&shutdown);
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        threads.push(
            std::thread::Builder::new()
                .name("viralcast-acceptor".into())
                .spawn(move || {
                    accept_loop(&listener, &tx, &shutdown, read_timeout, write_timeout);
                    // `tx` drops here; workers unblock from `recv` and exit.
                })?,
        );
    }

    obs::info(
        "serve",
        &format!("listening on {addr} with {workers} workers"),
        &[],
    );
    Ok(ServerHandle {
        addr,
        shutdown,
        snapshots,
        ingest,
        threads,
    })
}

fn accept_loop(
    listener: &TcpListener,
    tx: &mpsc::SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(e) => {
                obs::warn("serve", &format!("accept failed: {e}"), &[]);
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        // The listener is non-blocking; per-connection I/O must not be.
        if stream.set_nonblocking(false).is_err()
            || stream.set_read_timeout(Some(read_timeout)).is_err()
            || stream.set_write_timeout(Some(write_timeout)).is_err()
        {
            continue;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                obs::metrics().counter("serve.http.overload").incr(1);
                let _ =
                    Response::error(503, "server overloaded; retry later").write_to(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &AppState, limits: &HttpLimits) {
    loop {
        // Take the lock only to dequeue; handling runs unlocked so slow
        // clients don't serialise the pool.
        let next = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match next {
            Ok(mut stream) => handle_connection(&mut stream, state, limits),
            Err(_) => break, // acceptor gone: shutdown
        }
    }
}

/// Reads one request, routes it, writes the response, records metrics.
fn handle_connection(stream: &mut TcpStream, state: &AppState, limits: &HttpLimits) {
    let started = Instant::now();
    obs::metrics().counter("serve.http.requests").incr(1);
    let response = match http::read_request(stream, limits) {
        Ok(req) => {
            let response = router::route(&req, state);
            let label = router::endpoint_label(&req.path);
            obs::metrics()
                .histogram(
                    &format!("serve.http.latency_ms.{label}"),
                    &LATENCY_BOUNDS_MS,
                )
                .record(started.elapsed().as_secs_f64() * 1e3);
            response
        }
        Err(HttpError::BadRequest(m)) => Response::error(400, m),
        Err(HttpError::HeadTooLarge(limit)) => {
            Response::error(431, format!("request head exceeds {limit} bytes"))
        }
        Err(HttpError::BodyTooLarge(limit)) => {
            Response::error(413, format!("request body exceeds {limit} bytes"))
        }
        // Nothing sensible to answer on a dead transport.
        Err(HttpError::Io(_)) | Err(HttpError::ConnectionClosed) => return,
    };
    if response.status >= 400 {
        obs::metrics().counter("serve.http.errors").incr(1);
    }
    let _ = response.write_to(stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            trainer: TrainerConfig {
                interval: Duration::from_millis(20),
                min_batch: 1,
            },
            ..ServeConfig::default()
        }
    }

    fn embeddings() -> Embeddings {
        Embeddings::from_matrices(3, 1, vec![1.0, 0.5, 0.0], vec![1.0, 1.0, 1.0])
    }

    fn identity_retrain() -> RetrainFn {
        Box::new(|emb, _| Ok(emb.clone()))
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let handle = start(embeddings(), identity_retrain(), config()).unwrap();
        let addr = handle.local_addr();

        let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"status\":\"ok\""), "{}", resp.body);

        let resp = client::request(
            &addr,
            "POST",
            "/v1/hazard",
            Some(r#"{"pairs":[[0,1]],"dt":1.0}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"rate\":"), "{}", resp.body);

        let resp = client::request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(resp.status, 404);

        handle.shutdown();
        // The port is released once the acceptor exits.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn ingest_triggers_a_background_retrain() {
        let handle = start(embeddings(), identity_retrain(), config()).unwrap();
        let addr = handle.local_addr();
        let resp = client::request(
            &addr,
            "POST",
            "/v1/ingest",
            Some(r#"{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":1.0}]]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"accepted\":1"), "{}", resp.body);

        let snapshots = handle.snapshots();
        let deadline = Instant::now() + Duration::from_secs(5);
        while snapshots.version() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(snapshots.version() >= 2, "trainer never published");
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_http_errors() {
        use std::io::{Read, Write};
        let handle = start(embeddings(), identity_retrain(), config()).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        handle.shutdown();
    }
}
