//! Row-block ownership for sharded serving.
//!
//! [`RowBlock`] moved into `viralcast-model` with the backend
//! abstraction — ownership masks are part of the trait surface
//! ([`viralcast_model::CascadeModel::rank_candidates`] scans an owned
//! block) — and is re-exported here so serve-level callers keep their
//! import path.

pub use viralcast_model::RowBlock;
