//! Follower-role state: who the leader is and how far behind we are.
//!
//! A follower daemon serves reads from snapshots it replicates off a
//! leader instead of training its own. The daemon itself only needs two
//! things from that arrangement: the leader's address (so write
//! attempts can be redirected with a 409) and a lag record the poller
//! keeps current (so `/healthz` and `/metrics` can report
//! `replica_lag_versions` / `replica_lag_ms`). The polling loop itself
//! lives in `viralcast-replica`; this module is just the shared state
//! it updates and the router reads.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lag bookkeeping shared between the replication poller (writer) and
/// the request path (reader). All methods are lock-free.
#[derive(Debug)]
pub struct ReplicaStatus {
    /// Highest version the leader has been seen to advertise.
    leader_version: AtomicU64,
    /// Version of the snapshot this follower currently serves.
    applied_version: AtomicU64,
    /// Milliseconds since `epoch` when we first fell behind the leader;
    /// [`u64::MAX`] while caught up.
    behind_since_ms: AtomicU64,
    epoch: Instant,
}

const CAUGHT_UP: u64 = u64::MAX;

impl ReplicaStatus {
    /// Fresh status with both versions at `applied` (caught up).
    pub fn new(applied: u64) -> ReplicaStatus {
        ReplicaStatus {
            leader_version: AtomicU64::new(applied),
            applied_version: AtomicU64::new(applied),
            behind_since_ms: AtomicU64::new(CAUGHT_UP),
            epoch: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis().min(u64::MAX as u128 - 1) as u64
    }

    /// Records that the leader advertises `version` (from a snapshot
    /// fetch or a not-modified poll). Starts the lag clock the first
    /// time the leader pulls ahead of what is applied.
    pub fn observe_leader(&self, version: u64) {
        let prev = self.leader_version.fetch_max(version, Ordering::SeqCst);
        let leader = prev.max(version);
        if leader > self.applied_version.load(Ordering::SeqCst) {
            let _ = self.behind_since_ms.compare_exchange(
                CAUGHT_UP,
                self.now_ms(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// Records that snapshot `version` is now serving locally; clears
    /// the lag clock once we have caught the leader.
    pub fn record_applied(&self, version: u64) {
        self.applied_version.fetch_max(version, Ordering::SeqCst);
        if self.applied_version.load(Ordering::SeqCst) >= self.leader_version.load(Ordering::SeqCst)
        {
            self.behind_since_ms.store(CAUGHT_UP, Ordering::SeqCst);
        }
    }

    /// Versions the leader is ahead of this follower (0 while caught up).
    pub fn lag_versions(&self) -> u64 {
        self.leader_version
            .load(Ordering::SeqCst)
            .saturating_sub(self.applied_version.load(Ordering::SeqCst))
    }

    /// How long this follower has been behind, milliseconds (0 while
    /// caught up).
    pub fn lag_ms(&self) -> f64 {
        match self.behind_since_ms.load(Ordering::SeqCst) {
            CAUGHT_UP => 0.0,
            since => self.now_ms().saturating_sub(since) as f64,
        }
    }

    /// Snapshot version this follower currently serves.
    pub fn applied_version(&self) -> u64 {
        self.applied_version.load(Ordering::SeqCst)
    }

    /// Highest leader version seen so far.
    pub fn leader_version(&self) -> u64 {
        self.leader_version.load(Ordering::SeqCst)
    }
}

/// Marks a daemon as a read-only follower of `leader`.
#[derive(Clone, Debug)]
pub struct ReplicaRole {
    /// The leader this follower replicates from (and redirects writes to).
    pub leader: SocketAddr,
    /// Shared lag bookkeeping the poller updates.
    pub status: Arc<ReplicaStatus>,
}

impl ReplicaRole {
    /// A follower of `leader`, caught up at `applied`.
    pub fn new(leader: SocketAddr, applied: u64) -> ReplicaRole {
        ReplicaRole {
            leader,
            status: Arc::new(ReplicaStatus::new(applied)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caught_up_status_reports_zero_lag() {
        let status = ReplicaStatus::new(3);
        assert_eq!(status.lag_versions(), 0);
        assert_eq!(status.lag_ms(), 0.0);
        assert_eq!(status.applied_version(), 3);
        assert_eq!(status.leader_version(), 3);
    }

    #[test]
    fn lag_opens_when_the_leader_advances_and_closes_on_apply() {
        let status = ReplicaStatus::new(1);
        status.observe_leader(4);
        assert_eq!(status.lag_versions(), 3);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(status.lag_ms() > 0.0, "lag clock never started");
        status.record_applied(4);
        assert_eq!(status.lag_versions(), 0);
        assert_eq!(status.lag_ms(), 0.0);
    }

    #[test]
    fn stale_observations_never_roll_versions_back() {
        let status = ReplicaStatus::new(5);
        status.observe_leader(2);
        assert_eq!(status.leader_version(), 5);
        status.record_applied(3);
        assert_eq!(status.applied_version(), 5);
        assert_eq!(status.lag_versions(), 0);
    }

    #[test]
    fn role_clones_share_one_status() {
        let role = ReplicaRole::new("127.0.0.1:7001".parse().unwrap(), 1);
        let clone = role.clone();
        role.status.observe_leader(2);
        assert_eq!(clone.status.lag_versions(), 1);
    }
}
