//! A minimal, defensive HTTP/1.1 request reader and response writer.
//!
//! Only what the daemon needs: one request per connection (every response
//! carries `Connection: close`), bounded head and body sizes, explicit
//! `Content-Length` bodies (chunked transfer encoding is rejected), and
//! descriptive errors that the worker maps to 4xx responses. The parser
//! reads from any `Read`, so the unit tests drive it with in-memory
//! cursors — no sockets required.

use std::io::{self, Read, Write};
use viralcast_obs::JsonValue;

/// Read-size caps enforced while parsing.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_head_bytes: usize,
    /// Maximum request body bytes (the declared `Content-Length`).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure (including read timeouts).
    Io(io::Error),
    /// The peer closed the connection before sending any bytes.
    ConnectionClosed,
    /// Malformed request line, header, or body framing.
    BadRequest(String),
    /// Request line + headers exceed [`HttpLimits::max_head_bytes`].
    HeadTooLarge(usize),
    /// Declared body exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "I/O error: {e}"),
            HttpError::ConnectionClosed => write!(f, "connection closed before a request"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::HeadTooLarge(limit) => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge(limit) => {
                write!(f, "request body exceeds {limit} bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from `r`.
pub fn read_request<R: Read>(r: &mut R, limits: &HttpLimits) -> Result<Request, HttpError> {
    // Accumulate until the blank line that ends the head. Reads are
    // chunked, so bytes past the terminator (the body prefix) stay in
    // `buf` and are handed to the body reader below.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge(limits.max_head_bytes));
        }
        let mut chunk = [0u8; 1024];
        let n = r.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::ConnectionClosed);
            }
            return Err(HttpError::BadRequest(
                "connection closed mid-head (no blank line)".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > limits.max_head_bytes {
        return Err(HttpError::HeadTooLarge(limits.max_head_bytes));
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request_head = Request {
        method: method.to_ascii_uppercase(),
        path: String::new(),
        query: Vec::new(),
        headers,
        body: Vec::new(),
    };
    if request_head
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported".into(),
        ));
    }

    let content_length = match request_head.header("content-length") {
        None => 0,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("invalid content-length {raw:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge(limits.max_body_bytes));
    }

    // Body: the bytes already buffered past the head, then the rest of
    // the declared length from the transport.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(16 * 1024)];
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest(format!(
                "body truncated: content-length {content_length} but only {} bytes sent",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    let (path, query) = split_target(target);
    Ok(Request {
        path,
        query,
        body,
        ..request_head
    })
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into path and parsed query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (part.to_string(), String::new()),
        })
        .collect();
    (path.to_string(), query)
}

/// An outgoing response (always `Connection: close`).
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers written after the fixed ones —
    /// the worker attaches `X-Request-Id` here.
    pub extra_headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &JsonValue) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: value.render().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Appends one extra header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// A JSON error envelope: `{"error": message}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(
            status,
            &JsonValue::obj(vec![("error", JsonValue::from(message.into()))]),
        )
    }

    /// Serialises status line, headers, and body onto `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes the daemon emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_bytes(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), &HttpLimits::default())
    }

    #[test]
    fn get_with_query_parses() {
        let req =
            parse_bytes(b"GET /v1/influencers?topic=2&top=5 HTTP/1.1\r\nHost: localhost\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/influencers");
        assert_eq!(req.query_param("topic"), Some("2"));
        assert_eq!(req.query_param("top"), Some("5"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_body_respects_content_length() {
        let req =
            parse_bytes(b"POST /v1/ingest HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\":[]}\nEXTRA")
                .unwrap();
        assert_eq!(req.body, b"{\"a\":[]}\n");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse_bytes(b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok").unwrap();
        assert_eq!(req.header("Content-Length"), Some("2"));
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn empty_connection_is_distinguished() {
        assert!(matches!(parse_bytes(b""), Err(HttpError::ConnectionClosed)));
    }

    #[test]
    fn truncated_head_is_rejected() {
        assert!(matches!(
            parse_bytes(b"GET / HTTP/1.1\r\nHost: x"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend_from_slice(&vec![b'a'; 64 * 1024]);
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse_bytes(&raw), Err(HttpError::HeadTooLarge(_))));
    }

    #[test]
    fn bad_content_length_is_rejected() {
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(parse_bytes(raw), Err(HttpError::BodyTooLarge(_))));
    }

    #[test]
    fn truncated_body_is_rejected() {
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            b"GET\r\n\r\n".to_vec(),
            b"GET /\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1 extra\r\n\r\n".to_vec(),
            b"GET / SPDY/3\r\n\r\n".to_vec(),
            b"nonsense\r\n\r\n".to_vec(),
        ] {
            assert!(
                matches!(parse_bytes(&raw), Err(HttpError::BadRequest(_))),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn malformed_header_is_rejected() {
        assert!(matches!(
            parse_bytes(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn response_serialises_with_framing() {
        let mut out = Vec::new();
        Response::text(200, "hello").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut out = Vec::new();
        Response::text(200, "ok")
            .with_header("X-Request-Id", "trace-7")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: trace-7\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok"), "{text}");
    }

    #[test]
    fn error_response_is_json() {
        let resp = Response::error(400, "nope");
        assert_eq!(resp.content_type, "application/json");
        assert_eq!(resp.body, b"{\"error\":\"nope\"}");
    }
}
