//! Request-scoped trace IDs.
//!
//! Every HTTP request gets exactly one trace ID: the client's
//! `X-Request-Id` header when it is well-formed, a generated one
//! otherwise. The ID rides on the response (`X-Request-Id` header), the
//! access log, and — for ingests — the trainer's publish log line, so a
//! cascade's acked-to-served latency is attributable to one ID across
//! the whole pipeline.

use crate::http::Request;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Longest accepted client-supplied trace ID.
pub const MAX_TRACE_ID_LEN: usize = 128;

/// The trace ID for one request: the client's `X-Request-Id` when
/// acceptable (see [`is_valid_trace_id`]), else a fresh generated ID.
pub fn trace_id_for(req: &Request) -> String {
    match req.header("x-request-id") {
        Some(id) if is_valid_trace_id(id) => id.to_string(),
        _ => generate_trace_id(),
    }
}

/// Whether a client-supplied ID is safe to echo into headers and logs:
/// non-empty, at most [`MAX_TRACE_ID_LEN`] bytes, and made of printable
/// ASCII excluding the characters that would need escaping in an HTTP
/// header or a JSON string (`"`, `\`, and whitespace).
pub fn is_valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TRACE_ID_LEN
        && id
            .bytes()
            .all(|b| (0x21..=0x7e).contains(&b) && b != b'"' && b != b'\\')
}

/// A process-unique trace ID: unix microseconds, pid, and a process-wide
/// sequence number, hex-encoded. Not globally unique, but unique enough
/// to join one daemon's access log against its trainer log.
pub fn generate_trace_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{micros:x}-{:x}-{seq:x}", std::process::id())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_with_header(value: Option<&str>) -> Request {
        Request {
            method: "GET".into(),
            path: "/healthz".into(),
            query: Vec::new(),
            headers: value
                .map(|v| vec![("x-request-id".to_string(), v.to_string())])
                .unwrap_or_default(),
            body: Vec::new(),
        }
    }

    #[test]
    fn accepts_a_well_formed_client_id() {
        let req = req_with_header(Some("load-test.worker-3:42"));
        assert_eq!(trace_id_for(&req), "load-test.worker-3:42");
    }

    #[test]
    fn rejects_ids_that_cannot_be_echoed() {
        for bad in [
            "",
            "has space",
            "quote\"inside",
            "back\\slash",
            "new\nline",
            "non-ascii-é",
            &"x".repeat(MAX_TRACE_ID_LEN + 1),
        ] {
            assert!(!is_valid_trace_id(bad), "accepted {bad:?}");
            let generated = trace_id_for(&req_with_header(Some(bad)));
            assert_ne!(generated, bad);
            assert!(is_valid_trace_id(&generated));
        }
    }

    #[test]
    fn generated_ids_are_distinct_and_valid() {
        let a = generate_trace_id();
        let b = generate_trace_id();
        assert_ne!(a, b);
        assert!(is_valid_trace_id(&a));
        assert!(is_valid_trace_id(&b));
        // No header at all also generates.
        assert!(is_valid_trace_id(&trace_id_for(&req_with_header(None))));
    }
}
