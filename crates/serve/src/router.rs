//! Endpoint dispatch: parsed request → response, no sockets involved.

use std::sync::{Arc, Mutex};
use std::time::Instant;
use viralcast_obs::{self as obs, JsonValue};
use viralcast_store::EventStore;

use crate::api;
use crate::http::{Request, Response};
use crate::ingest::IngestBuffer;
use crate::json;
use crate::snapshot::SnapshotStore;

/// Everything a request handler can touch.
pub struct AppState {
    /// The hot-swappable model.
    pub snapshots: Arc<SnapshotStore>,
    /// The trainer's input buffer.
    pub ingest: Arc<IngestBuffer>,
    /// The durable write-ahead log, when the daemon runs with a data
    /// directory. Ingests append here (and commit under the fsync
    /// policy) **before** acking, so a crash after the response cannot
    /// lose the batch.
    pub store: Option<Arc<Mutex<EventStore>>>,
    /// `retry_after_ms` hint returned with load-shed (429) responses.
    pub shed_retry_after_ms: u64,
    /// Daemon start time (for `/healthz` uptime).
    pub started: Instant,
}

/// A short label for per-endpoint metrics (`other` for unmatched paths).
pub fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/v1/hazard" => "v1_hazard",
        "/v1/predict" => "v1_predict",
        "/v1/influencers" => "v1_influencers",
        "/v1/ingest" => "v1_ingest",
        _ => "other",
    }
}

/// Dispatches one request.
pub fn route(req: &Request, state: &AppState) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(),
        ("POST", "/v1/hazard") => with_body(req, |body| {
            let parsed = api::parse_hazard(body).map_err(bad_request)?;
            api::hazard_json(&state.snapshots.current(), &parsed).map_err(unprocessable)
        }),
        ("POST", "/v1/predict") => with_body(req, |body| {
            let parsed = api::parse_predict(body).map_err(bad_request)?;
            api::predict_json(&state.snapshots.current(), &parsed).map_err(unprocessable)
        }),
        ("GET", "/v1/influencers") => influencers(req, state),
        ("POST", "/v1/ingest") => with_body(req, |body| ingest(body, state)),
        (
            _,
            "/healthz" | "/metrics" | "/v1/hazard" | "/v1/predict" | "/v1/influencers"
            | "/v1/ingest",
        ) => Response::error(405, format!("method {} not allowed", req.method)),
        _ => Response::error(404, format!("no such endpoint {}", req.path)),
    }
}

fn healthz(state: &AppState) -> Response {
    let snap = state.snapshots.current();
    Response::json(
        200,
        &JsonValue::obj(vec![
            ("status", JsonValue::from("ok")),
            ("snapshot_version", JsonValue::from(snap.version)),
            (
                "snapshot_published_unix",
                JsonValue::from(snap.published_unix),
            ),
            ("nodes", JsonValue::from(snap.embeddings.node_count())),
            ("topics", JsonValue::from(snap.embeddings.topic_count())),
            (
                "uptime_seconds",
                JsonValue::from(state.started.elapsed().as_secs_f64()),
            ),
            ("ingest_buffered", JsonValue::from(state.ingest.len())),
        ]),
    )
}

fn metrics() -> Response {
    Response::text(200, obs::metrics().snapshot().render_prometheus())
}

fn influencers(req: &Request, state: &AppState) -> Response {
    let top = match parse_query_usize(req, "top", 10) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    let topic = match req.query_param("topic") {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(t) => Some(t),
            Err(_) => return Response::error(400, format!("malformed topic {raw:?}")),
        },
    };
    match api::influencers_json(&state.snapshots.current(), topic, top) {
        Ok(body) => Response::json(200, &body),
        Err(message) => Response::error(422, message),
    }
}

fn ingest(body: &JsonValue, state: &AppState) -> Result<JsonValue, Response> {
    let node_count = state.snapshots.current().embeddings.node_count();
    let batch = api::parse_ingest(body, node_count).map_err(bad_request)?;
    let receipt = match &state.store {
        // Durable path: WAL append + buffer push happen atomically
        // under the store lock (the trainer drains under the same
        // lock), so a checkpoint offset can never cover an event that
        // is neither trained nor buffered. Only the cascades the
        // bounded buffer will admit are logged — shed events are
        // refused, not silently persisted.
        Some(store) => {
            let mut guard = store.lock().unwrap_or_else(|e| e.into_inner());
            let room = state
                .ingest
                .capacity()
                .saturating_sub(state.ingest.len())
                .min(batch.cascades.len());
            if room > 0 {
                guard.append_batch(&batch.cascades[..room]).map_err(|e| {
                    obs::metrics().counter("store.wal.errors").incr(1);
                    Response::error(500, format!("write-ahead log append failed: {e}"))
                })?;
            }
            state.ingest.push_batch(batch.cascades)
        }
        None => state.ingest.push_batch(batch.cascades),
    };
    if receipt.dropped > 0 {
        return Err(shed_response(state, &receipt, batch.rejected));
    }
    Ok(JsonValue::obj(vec![
        (
            "snapshot_version",
            JsonValue::from(state.snapshots.version()),
        ),
        ("accepted", JsonValue::from(receipt.accepted)),
        ("rejected", JsonValue::from(batch.rejected)),
        ("dropped", JsonValue::from(receipt.dropped)),
        ("buffered", JsonValue::from(receipt.buffered)),
        (
            "errors",
            JsonValue::Arr(batch.errors.into_iter().map(JsonValue::from).collect()),
        ),
    ]))
}

/// The structured 429 a load-shed ingest gets: what was still admitted,
/// what was shed, and when retrying is worthwhile (after the trainer's
/// next drain, roughly one retrain interval away).
fn shed_response(
    state: &AppState,
    receipt: &crate::ingest::IngestReceipt,
    rejected: usize,
) -> Response {
    obs::metrics()
        .counter("serve.ingest.shed_total")
        .incr(receipt.dropped as u64);
    Response::json(
        429,
        &JsonValue::obj(vec![
            (
                "error",
                JsonValue::from(format!(
                    "ingest buffer full: shed {} of {} cascades",
                    receipt.dropped,
                    receipt.accepted + receipt.dropped
                )),
            ),
            ("retry_after_ms", JsonValue::from(state.shed_retry_after_ms)),
            ("accepted", JsonValue::from(receipt.accepted)),
            ("rejected", JsonValue::from(rejected)),
            ("dropped", JsonValue::from(receipt.dropped)),
            ("buffered", JsonValue::from(receipt.buffered)),
            (
                "snapshot_version",
                JsonValue::from(state.snapshots.version()),
            ),
        ]),
    )
}

/// Decodes a JSON body and runs `handler`, mapping the three failure
/// layers (UTF-8, JSON syntax, handler) onto status codes.
fn with_body(
    req: &Request,
    handler: impl FnOnce(&JsonValue) -> Result<JsonValue, Response>,
) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "request body is not valid UTF-8"),
    };
    let body = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, format!("malformed JSON body: {e}")),
    };
    match handler(&body) {
        Ok(out) => Response::json(200, &out),
        Err(resp) => resp,
    }
}

fn bad_request(message: String) -> Response {
    Response::error(400, message)
}

fn unprocessable(message: String) -> Response {
    Response::error(422, message)
}

fn parse_query_usize(req: &Request, name: &str, default: usize) -> Result<usize, Box<Response>> {
    match req.query_param(name) {
        None => Ok(default),
        Some(raw) => raw.parse::<usize>().map_err(|_| {
            Box::new(Response::error(
                400,
                format!("malformed {name} {raw:?} (expected a non-negative integer)"),
            ))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_embed::Embeddings;

    fn state() -> AppState {
        state_with_capacity(4)
    }

    fn state_with_capacity(capacity: usize) -> AppState {
        AppState {
            snapshots: Arc::new(SnapshotStore::new(Embeddings::from_matrices(
                3,
                1,
                vec![1.0, 0.5, 0.0],
                vec![1.0, 1.0, 1.0],
            ))),
            ingest: Arc::new(IngestBuffer::new(capacity)),
            store: None,
            shed_retry_after_ms: 1234,
            started: Instant::now(),
        }
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (
                p.to_string(),
                q.split('&')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                        (k.to_string(), v.to_string())
                    })
                    .collect(),
            ),
            None => (path.to_string(), Vec::new()),
        };
        Request {
            method: method.to_string(),
            path,
            query,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn body_text(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).unwrap()
    }

    #[test]
    fn healthz_reports_the_model() {
        let resp = route(&request("GET", "/healthz", ""), &state());
        assert_eq!(resp.status, 200);
        let text = body_text(&resp);
        for needle in [
            "\"status\":\"ok\"",
            "\"snapshot_version\":1",
            "\"nodes\":3",
            "\"topics\":1",
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
    }

    #[test]
    fn unknown_paths_404_known_paths_405() {
        assert_eq!(route(&request("GET", "/nope", ""), &state()).status, 404);
        assert_eq!(
            route(&request("DELETE", "/healthz", ""), &state()).status,
            405
        );
        assert_eq!(
            route(&request("GET", "/v1/hazard", ""), &state()).status,
            405
        );
    }

    #[test]
    fn malformed_json_bodies_400() {
        let resp = route(&request("POST", "/v1/hazard", "{not json"), &state());
        assert_eq!(resp.status, 400);
        assert!(body_text(&resp).contains("malformed JSON body"));
    }

    #[test]
    fn out_of_range_nodes_422() {
        let resp = route(
            &request("POST", "/v1/hazard", r#"{"pairs":[[0,77]]}"#),
            &state(),
        );
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn ingest_reports_receipt_fields() {
        let s = state();
        let resp = route(
            &request(
                "POST",
                "/v1/ingest",
                r#"{"cascades":[[{"node":0,"time":0.0},{"node":1,"time":1.0}],[{"node":8,"time":0.0}]]}"#,
            ),
            &s,
        );
        assert_eq!(resp.status, 200);
        let text = body_text(&resp);
        for needle in ["\"accepted\":1", "\"rejected\":1", "\"buffered\":1"] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
        assert_eq!(s.ingest.len(), 1);
    }

    #[test]
    fn overflowing_ingest_sheds_with_a_structured_429() {
        let s = state_with_capacity(1);
        let body = r#"{"cascades":[
            [{"node":0,"time":0.0},{"node":1,"time":1.0}],
            [{"node":1,"time":0.0},{"node":2,"time":1.0}]
        ]}"#;
        let resp = route(&request("POST", "/v1/ingest", body), &s);
        assert_eq!(resp.status, 429);
        let text = body_text(&resp);
        for needle in [
            "\"error\":\"ingest buffer full: shed 1 of 2 cascades\"",
            "\"retry_after_ms\":1234",
            "\"accepted\":1",
            "\"dropped\":1",
        ] {
            assert!(text.contains(needle), "{needle} missing from {text}");
        }
        // The admitted cascade stays buffered; the shed counter is
        // exported through the Prometheus rendering of /metrics.
        assert_eq!(s.ingest.len(), 1);
        let metrics = obs::metrics().snapshot().render_prometheus();
        assert!(
            metrics.contains("serve_ingest_shed_total"),
            "shed counter missing from {metrics}"
        );
    }

    #[test]
    fn durable_ingest_appends_to_the_wal_before_acking() {
        let dir = std::env::temp_dir().join(format!("viralcast-router-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (es, _) = EventStore::open(&dir, viralcast_store::WalOptions::default()).unwrap();
        let mut s = state_with_capacity(1);
        s.store = Some(Arc::new(Mutex::new(es)));
        // Two cascades, room for one: the admitted one is logged, the
        // shed one is neither acked nor persisted.
        let body = r#"{"cascades":[
            [{"node":0,"time":0.0},{"node":1,"time":1.0}],
            [{"node":1,"time":0.0},{"node":2,"time":1.0}]
        ]}"#;
        let resp = route(&request("POST", "/v1/ingest", body), &s);
        assert_eq!(resp.status, 429);
        let next = s.store.as_ref().unwrap().lock().unwrap().next_index();
        assert_eq!(next, 1, "exactly the admitted cascade reaches the WAL");
        drop(s);
        let (_, recovery) = EventStore::open(&dir, viralcast_store::WalOptions::default()).unwrap();
        assert_eq!(recovery.pending.len(), 1);
        assert_eq!(recovery.pending[0].seed().node.0, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn influencers_query_params_are_validated() {
        let ok = route(&request("GET", "/v1/influencers?top=2", ""), &state());
        assert_eq!(ok.status, 200);
        assert!(body_text(&ok).contains("\"influencers\":"));
        let bad = route(&request("GET", "/v1/influencers?top=x", ""), &state());
        assert_eq!(bad.status, 400);
        let oob = route(&request("GET", "/v1/influencers?topic=9", ""), &state());
        assert_eq!(oob.status, 422);
    }

    #[test]
    fn predict_responds_with_version() {
        let resp = route(
            &request(
                "POST",
                "/v1/predict",
                r#"{"cascade":[{"node":0,"time":0.0}],"top":2}"#,
            ),
            &state(),
        );
        assert_eq!(resp.status, 200);
        assert!(body_text(&resp).contains("\"snapshot_version\":1"));
    }
}
