//! A one-shot HTTP client, just big enough to exercise the daemon.
//!
//! Used by the integration tests and the serving example; not a general
//! HTTP client. One request per connection, mirroring the server's
//! `Connection: close` contract.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code plus body text.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Response body, decoded as UTF-8 (lossily).
    pub body: String,
}

/// Sends one request and reads the full response.
///
/// `body` is sent with a `Content-Length` header when present. The
/// connection closes after the exchange.
pub fn request(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: viralcast\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    )?;
    stream.flush()?;

    // `Connection: close` framing: the response ends when the peer closes.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response status line: {:?}", text.lines().next()),
            )
        })?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok(ClientResponse { status, body })
}
