//! A one-shot HTTP client, just big enough to exercise the daemon.
//!
//! Used by the integration tests and the loadgen harness; not a general
//! HTTP client. One request per connection, mirroring the server's
//! `Connection: close` contract.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers, and body text.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Response header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body, decoded as UTF-8 (lossily).
    pub body: String,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response.
///
/// `body` is sent with a `Content-Length` header when present. The
/// connection closes after the exchange.
pub fn request(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    request_with_headers(addr, method, target, body, &[])
}

/// Like [`request`], with extra request headers (e.g. `X-Request-Id`).
pub fn request_with_headers(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let payload = body.unwrap_or("");
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: viralcast\r\nContent-Length: {}\r\n",
        payload.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(stream, "{head}\r\n{payload}")?;
    stream.flush()?;

    // `Connection: close` framing: the response ends when the peer closes.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response status line: {:?}", text.lines().next()),
            )
        })?;
    let (head, body) = match text.find("\r\n\r\n") {
        Some(i) => (&text[..i], text[i + 4..].to_string()),
        None => (&text[..], String::new()),
    };
    let headers = head
        .split("\r\n")
        .skip(1) // the status line
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
