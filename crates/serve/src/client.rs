//! A one-shot HTTP client, just big enough to exercise the daemon.
//!
//! Used by the integration tests, the loadgen harness, and the chaos
//! harness; not a general HTTP client. One request per connection,
//! mirroring the server's `Connection: close` contract.
//!
//! [`request_with_retry`] layers transient-failure handling on top:
//! connection resets, mid-response EOFs, and 429/503 responses are
//! retried with capped, jittered exponential backoff instead of
//! surfacing to the caller — during a chaos run one daemon restart must
//! not poison a whole worker's statistics.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers, and body text.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Response header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body, decoded as UTF-8 (lossily).
    pub body: String,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response whose body is kept as raw bytes — the replication path
/// fetches binary checkpoint payloads that a lossy UTF-8 decode would
/// corrupt.
#[derive(Clone, Debug)]
pub struct RawResponse {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Response header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes, verbatim.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response.
///
/// `body` is sent with a `Content-Length` header when present. The
/// connection closes after the exchange.
pub fn request(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    request_with_headers(addr, method, target, body, &[])
}

/// An ordered list of `host:port` endpoints — a router plus its shards,
/// or several replicas — that the load and chaos harnesses address
/// uniformly instead of doing string surgery on a single `addr`.
///
/// Rotation starts from a per-process offset (a splitmix64 hash of pid
/// and boot time) so concurrent harness processes sharing one endpoint
/// list spread their first attempts across it instead of all hammering
/// the first address. Equality compares the addresses only, so lists
/// parsed in different processes still compare equal.
#[derive(Clone, Debug)]
pub struct Endpoints {
    addrs: Vec<SocketAddr>,
    offset: u64,
}

impl PartialEq for Endpoints {
    fn eq(&self, other: &Endpoints) -> bool {
        self.addrs == other.addrs
    }
}

impl Eq for Endpoints {}

/// The process-wide rotation offset: hashed once from pid + wall clock,
/// then shared by every [`Endpoints`] built in this process.
fn process_rotation_offset() -> u64 {
    static OFFSET: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *OFFSET.get_or_init(|| {
        let pid = u64::from(std::process::id());
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(pid ^ now)
    })
}

impl Endpoints {
    /// Parses a comma-separated list of `host:port` entries (spaces
    /// around entries tolerated, empty entries rejected).
    pub fn parse(spec: &str) -> Result<Endpoints, String> {
        let mut addrs = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("empty endpoint in list {spec:?}"));
            }
            let addr = part
                .parse::<SocketAddr>()
                .map_err(|e| format!("malformed endpoint {part:?}: {e}"))?;
            addrs.push(addr);
        }
        if addrs.is_empty() {
            return Err("endpoint list is empty".into());
        }
        Ok(Endpoints {
            addrs,
            offset: process_rotation_offset(),
        })
    }

    /// A single-endpoint list.
    pub fn single(addr: SocketAddr) -> Endpoints {
        Endpoints {
            addrs: vec![addr],
            offset: process_rotation_offset(),
        }
    }

    /// Pins the rotation start to `offset` instead of the per-process
    /// hash — for tests and callers needing a deterministic first
    /// target.
    pub fn with_rotation_offset(mut self, offset: u64) -> Endpoints {
        self.offset = offset;
        self
    }

    /// The endpoints, in the order given.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Number of endpoints (≥ 1 by construction).
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Always false — [`Endpoints::parse`] rejects empty lists — but
    /// present so `len` reads idiomatically.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The endpoint attempt number `attempt` (0-based) should target:
    /// round-robin across the list from the per-process offset, so
    /// consecutive retries rotate away from a dead endpoint and
    /// concurrent processes start from different entries.
    pub fn rotate(&self, attempt: u32) -> &SocketAddr {
        let index =
            (self.offset.wrapping_add(u64::from(attempt)) % self.addrs.len() as u64) as usize;
        &self.addrs[index]
    }
}

impl std::fmt::Display for Endpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, addr) in self.addrs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{addr}")?;
        }
        Ok(())
    }
}

/// Like [`request`], with extra request headers (e.g. `X-Request-Id`).
pub fn request_with_headers(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    request_with_options(addr, method, target, body, headers, Duration::from_secs(10))
}

/// Like [`request_with_headers`], with an explicit per-request timeout
/// covering connect, read, and write — the router's scatter path uses a
/// tight deadline here so one dead shard cannot stall a fan-out.
pub fn request_with_options(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let raw = request_bytes(addr, method, target, body, headers, timeout)?;
    Ok(ClientResponse {
        status: raw.status,
        headers: raw.headers,
        body: String::from_utf8_lossy(&raw.body).into_owned(),
    })
}

/// Like [`request_with_options`], but hands back the body as raw bytes.
/// The replica fetch path uses this: checkpoint payloads are binary and
/// must survive the trip bit-exactly.
pub fn request_bytes(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> io::Result<RawResponse> {
    let mut stream = TcpStream::connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let payload = body.unwrap_or("");
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: viralcast\r\nContent-Length: {}\r\n",
        payload.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(stream, "{head}\r\n{payload}")?;
    stream.flush()?;

    // `Connection: close` framing: the response ends when the peer closes.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Parses a raw `Connection: close` response, detecting a peer that died
/// mid-body: when `Content-Length` promises more bytes than arrived, the
/// response is truncated and surfaces as `UnexpectedEof` (a transient
/// error [`request_with_retry`] will retry) instead of silently handing
/// the caller a cut-off body.
fn parse_response(raw: &[u8]) -> io::Result<RawResponse> {
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n");
    let (head_bytes, body_bytes) = match header_end {
        Some(i) => (&raw[..i], &raw[i + 4..]),
        None => (raw, &raw[raw.len()..]),
    };
    let head = String::from_utf8_lossy(head_bytes);
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response status line: {:?}", head.lines().next()),
            )
        })?;
    let headers: Vec<(String, String)> = head
        .split("\r\n")
        .skip(1) // the status line
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let promised = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    if header_end.is_none() && promised.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "response cut off inside its headers",
        ));
    }
    if let Some(promised) = promised {
        if body_bytes.len() < promised {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "response truncated mid-body: got {} of {promised} byte(s)",
                    body_bytes.len()
                ),
            ));
        }
    }
    Ok(RawResponse {
        status,
        headers,
        body: body_bytes.to_vec(),
    })
}

/// How [`request_with_retry`] paces itself across transient failures:
/// connection errors (refused/reset/EOF mid-response) and 429/503
/// responses back off exponentially from `base_backoff`, capped at
/// `max_backoff`, with deterministic jitter derived from `jitter_seed`
/// so concurrent workers do not retry in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound any single backoff is capped to.
    pub max_backoff: Duration,
    /// Seed for the jitter; vary it per worker.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based): exponential,
    /// capped, scaled into `[50 %, 100 %]` by deterministic jitter.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(
                1u32.checked_shl(retry.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.max_backoff);
        let jitter = splitmix64(self.jitter_seed ^ u64::from(retry));
        // Map the hash into [0.5, 1.0).
        let scale = 0.5 + (jitter >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(scale)
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A response that survived the retry loop, with the attempt count the
/// caller folds into its stats.
#[derive(Clone, Debug)]
pub struct Retried {
    /// The final response (its status may still be 429/503 when the
    /// budget ran out while the server kept shedding).
    pub response: ClientResponse,
    /// Requests actually issued (1 = the first try succeeded).
    pub attempts: u32,
}

impl Retried {
    /// Retries spent on this exchange.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Whether a response status is worth retrying: the server is alive but
/// shedding (429) or momentarily unavailable (503).
pub fn transient_status(status: u16) -> bool {
    status == 429 || status == 503
}

/// [`request_with_headers`] wrapped in capped, jittered retry.
///
/// Transport errors (connect refused while a daemon restarts, connection
/// reset, EOF mid-response) and 429/503 responses are retried up to
/// `policy.max_attempts`. The last transport error is returned only when
/// every attempt failed; a final 429/503 is returned as a normal
/// response so the caller can count it as shed load rather than a
/// transport failure.
pub fn request_with_retry(
    addr: &SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
    policy: &RetryPolicy,
) -> io::Result<Retried> {
    request_with_retry_on(
        &Endpoints::single(*addr),
        method,
        target,
        body,
        headers,
        policy,
    )
}

/// [`request_with_retry`] over an endpoint list: attempt `n` targets
/// `endpoints.rotate(n)`, so retries walk away from a dead endpoint
/// instead of hammering it. With one endpoint this is exactly the
/// single-address retry loop.
pub fn request_with_retry_on(
    endpoints: &Endpoints,
    method: &str,
    target: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
    policy: &RetryPolicy,
) -> io::Result<Retried> {
    let attempts_budget = policy.max_attempts.max(1);
    let mut attempts = 0u32;
    loop {
        let addr = endpoints.rotate(attempts);
        attempts += 1;
        let outcome = request_with_headers(addr, method, target, body, headers);
        let last = attempts >= attempts_budget;
        match outcome {
            Ok(response) if transient_status(response.status) && !last => {}
            Ok(response) => return Ok(Retried { response, attempts }),
            Err(e) if last => return Err(e),
            Err(_) => {}
        }
        std::thread::sleep(policy.backoff(attempts));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_detects_a_body_truncated_mid_response() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n0123456789";
        let ok = parse_response(full).unwrap();
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"0123456789");

        let cut = &full[..full.len() - 4];
        let err = parse_response(cut).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let headless = b"HTTP/1.1 200 OK\r\nContent-Le";
        let err = parse_response(headless).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn backoff_is_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 7,
        };
        for retry in 1..=8 {
            let b = policy.backoff(retry);
            assert!(b <= Duration::from_millis(100), "retry {retry}: {b:?}");
            assert!(b >= Duration::from_millis(5), "retry {retry}: {b:?}");
        }
        // Deterministic for a seed, different across seeds.
        assert_eq!(policy.backoff(3), policy.backoff(3));
        let other = RetryPolicy {
            jitter_seed: 8,
            ..policy
        };
        assert_ne!(policy.backoff(3), other.backoff(3));
    }

    #[test]
    fn endpoints_parse_and_rotate() {
        let eps = Endpoints::parse("127.0.0.1:7001, 127.0.0.1:7002,127.0.0.1:7003")
            .unwrap()
            .with_rotation_offset(0);
        assert_eq!(eps.len(), 3);
        assert!(!eps.is_empty());
        assert_eq!(eps.rotate(0).port(), 7001);
        assert_eq!(eps.rotate(1).port(), 7002);
        assert_eq!(eps.rotate(3).port(), 7001);
        assert_eq!(
            eps.to_string(),
            "127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003"
        );
        // Round-trips through its own Display form.
        assert_eq!(Endpoints::parse(&eps.to_string()).unwrap(), eps);
    }

    #[test]
    fn rotation_starts_from_the_process_offset() {
        let spec = "127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003";
        let a = Endpoints::parse(spec).unwrap();
        let b = Endpoints::parse(spec).unwrap();
        // All lists in one process share the offset: a harness spawning
        // many workers still rotates coherently, while a *different*
        // process (different pid/time hash) would start elsewhere.
        assert_eq!(a.rotate(0), b.rotate(0));
        // Whatever the offset, three consecutive attempts cover every
        // endpoint exactly once.
        let mut seen: Vec<u16> = (0..3).map(|i| a.rotate(i).port()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![7001, 7002, 7003]);
        // Pinning the offset makes the start deterministic.
        let pinned = a.clone().with_rotation_offset(1);
        assert_eq!(pinned.rotate(0).port(), 7002);
        assert_eq!(pinned.rotate(2).port(), 7001);
    }

    #[test]
    fn endpoints_reject_malformed_lists() {
        for bad in ["", ",", "127.0.0.1:1,", "localhost", "127.0.0.1:notaport"] {
            assert!(Endpoints::parse(bad).is_err(), "accepted {bad:?}");
        }
        let single = Endpoints::single("127.0.0.1:9".parse().unwrap());
        assert_eq!(single.addrs().len(), 1);
    }

    #[test]
    fn retry_rotates_across_endpoints_to_find_a_live_one() {
        use std::io::{Read as _, Write as _};
        // One dead port, one live listener that answers a fixed 200.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let live = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Drain the request head before replying; closing with
            // unread bytes pending would RST the connection and destroy
            // the response on the wire.
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") && stream.read(&mut byte).is_ok_and(|n| n > 0) {
                head.push(byte[0]);
            }
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
        });
        let eps = Endpoints::parse(&format!("127.0.0.1:9,{live}"))
            .unwrap()
            .with_rotation_offset(0);
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 3,
        };
        let out = request_with_retry_on(&eps, "GET", "/healthz", None, &[], &policy).unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.response.body, "ok");
        assert_eq!(out.attempts, 2, "first attempt hits the dead port");
        server.join().unwrap();
    }

    #[test]
    fn retry_gives_up_after_the_attempt_budget() {
        // A port with no listener: every attempt fails fast.
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 1,
        };
        let err = request_with_retry(&addr, "GET", "/healthz", None, &[], &policy);
        assert!(err.is_err());
    }
}
