//! The background incremental-retraining thread.
//!
//! Every `interval`, the trainer drains the ingest buffer and — when the
//! batch is big enough — hands the fresh cascades plus the *current*
//! snapshot's model to the injected retrain function (the CLI wires the
//! backend's [`CascadeModel::update`] here; tests inject stubs). A
//! successful retrain publishes the next snapshot version; request
//! threads keep serving the old `Arc` throughout, so readers never block
//! on training.
//!
//! With a durable [`EventStore`] attached, the drain happens under the
//! store lock so the WAL offset read alongside it provably covers
//! exactly the drained-or-already-trained records (the ingest path
//! appends to the WAL and pushes to the buffer under the same lock).
//! After a successful publish the trainer checkpoints: the new model
//! lands atomically next to a manifest recording the snapshot version,
//! the backend id, and that offset, and fully covered WAL segments are
//! compacted away.
//!
//! The retrain function is injected rather than imported so tests can
//! stub it and the CLI can decorate the backend's update (validation,
//! option overrides) without this crate knowing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use viralcast_model::CascadeModel;
use viralcast_obs::{self as obs, warn, JsonValue};
use viralcast_propagation::CascadeSet;
use viralcast_store::EventStore;

use crate::ingest::{DrainedBatch, IngestBuffer};
use crate::snapshot::SnapshotStore;

/// Warm-start retraining: `(current model, fresh cascades) → new model`.
/// The cascade set's universe matches the model's node count. The
/// default wiring is the backend's own [`CascadeModel::update`].
pub type RetrainFn = Box<
    dyn Fn(&Arc<dyn CascadeModel>, &CascadeSet) -> Result<Arc<dyn CascadeModel>, String> + Send,
>;

/// Trainer cadence knobs.
#[derive(Clone, Copy, Debug)]
pub struct TrainerConfig {
    /// How often to check the buffer and retrain.
    pub interval: Duration,
    /// Minimum buffered cascades before a retrain fires (≥ 1).
    pub min_batch: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            interval: Duration::from_secs(5),
            min_batch: 1,
        }
    }
}

/// Spawns the trainer thread; it exits promptly once `shutdown` is set.
pub fn spawn(
    store: Arc<SnapshotStore>,
    buffer: Arc<IngestBuffer>,
    event_store: Option<Arc<Mutex<EventStore>>>,
    retrain: RetrainFn,
    config: TrainerConfig,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("viralcast-trainer".into())
        .spawn(move || run(store, buffer, event_store, retrain, config, shutdown))
        .expect("spawning the trainer thread")
}

fn run(
    store: Arc<SnapshotStore>,
    buffer: Arc<IngestBuffer>,
    event_store: Option<Arc<Mutex<EventStore>>>,
    retrain: RetrainFn,
    config: TrainerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let min_batch = config.min_batch.max(1);
    let tick = Duration::from_millis(10).min(config.interval.max(Duration::from_millis(1)));
    let mut last_attempt = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        if last_attempt.elapsed() < config.interval {
            continue;
        }
        last_attempt = Instant::now();
        if buffer.len() < min_batch {
            continue;
        }
        // Drain under the event-store lock: the ingest path appends to
        // the WAL and pushes to the buffer atomically under the same
        // lock, so `next_index` read here covers exactly the records
        // drained now or in earlier ticks — the offset a checkpoint
        // after this batch may safely claim.
        let (batch, covered) = match &event_store {
            Some(es) => {
                let guard = es.lock().unwrap_or_else(|e| e.into_inner());
                (buffer.drain(), Some(guard.next_index()))
            }
            None => (buffer.drain(), None),
        };
        retrain_once(&store, event_store.as_deref(), batch, covered, &retrain);
    }
}

/// One retrain attempt over a drained batch (no-op on an empty batch).
/// `covered` is the WAL offset the batch extends the model to; with an
/// event store attached, a successful publish checkpoints there.
fn retrain_once(
    store: &SnapshotStore,
    event_store: Option<&Mutex<EventStore>>,
    batch: DrainedBatch,
    covered: Option<u64>,
    retrain: &RetrainFn,
) {
    if batch.is_empty() {
        return;
    }
    let snap = store.current();
    let count = batch.cascades.len();
    let fresh = CascadeSet::new(snap.model.node_count(), batch.cascades);
    let started = Instant::now();
    match retrain(&snap.model, &fresh) {
        Ok(model) => {
            let seconds = started.elapsed().as_secs_f64();
            let version = store.publish(model);
            obs::metrics().counter("serve.retrain.runs").incr(1);
            obs::metrics()
                .counter("serve.retrain.cascades")
                .incr(count as u64);
            obs::metrics()
                .histogram(
                    "serve.retrain.seconds",
                    &[0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0],
                )
                .record(seconds);
            obs::info(
                "serve.retrain",
                &format!("published snapshot v{version} from {count} cascades in {seconds:.2}s"),
                &[],
            );
            report_publish_lag(&batch.traces, version);
            if let (Some(es), Some(offset)) = (event_store, covered) {
                let published = store.current();
                let mut guard = es.lock().unwrap_or_else(|e| e.into_inner());
                // A failed checkpoint degrades durability (recovery
                // replays from the previous one), not serving.
                if let Err(e) = guard.checkpoint(version, offset, published.model.as_ref()) {
                    obs::metrics().counter("store.checkpoint.errors").incr(1);
                    warn(
                        "serve.retrain",
                        &format!("checkpoint of snapshot v{version} failed: {e}"),
                        &[],
                    );
                }
            }
        }
        Err(message) => {
            obs::metrics().counter("serve.retrain.errors").incr(1);
            warn(
                "serve.retrain",
                &format!("retrain over {count} cascades failed: {message}"),
                &[],
            );
        }
    }
}

/// Records, per contributing ingest trace, the acked-to-published
/// latency of the snapshot that now covers it: the histogram
/// `serve.ingest_to_publish_ms`, the last-batch gauge
/// `serve.lag.ingest_to_publish_ms` (the worst lag of this publish),
/// and one log line joining the trace ID to the snapshot version.
fn report_publish_lag(traces: &[crate::ingest::TraceMark], version: u64) {
    let mut worst_ms = 0.0f64;
    for mark in traces {
        let lag_ms = mark.enqueued.elapsed().as_secs_f64() * 1e3;
        worst_ms = worst_ms.max(lag_ms);
        obs::metrics()
            .histogram_exponential("serve.ingest_to_publish_ms", 1.0, 2.0, 16)
            .record(lag_ms);
        obs::info(
            "serve.retrain",
            &format!(
                "trace {} ({} cascade(s)) covered by snapshot v{version} after {lag_ms:.1}ms",
                mark.trace_id, mark.cascades
            ),
            &[
                ("trace_id", JsonValue::from(mark.trace_id.as_str())),
                ("snapshot_version", JsonValue::from(version)),
                ("lag_ms", JsonValue::from(lag_ms)),
            ],
        );
    }
    if !traces.is_empty() {
        obs::metrics()
            .gauge("serve.lag.ingest_to_publish_ms")
            .set(worst_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::TraceMark;
    use viralcast_embed::Embeddings;
    use viralcast_model::EmbeddingBackend;
    use viralcast_propagation::{Cascade, Infection};

    fn embeddings() -> Arc<dyn CascadeModel> {
        Arc::new(EmbeddingBackend::new(Embeddings::from_matrices(
            4,
            1,
            vec![0.1; 4],
            vec![0.1; 4],
        )))
    }

    /// The wrapped embeddings of a published embed-backend snapshot.
    fn inner(model: &Arc<dyn CascadeModel>) -> &Embeddings {
        model
            .as_any()
            .downcast_ref::<EmbeddingBackend>()
            .expect("embed backend")
            .embeddings()
    }

    fn identity() -> RetrainFn {
        Box::new(|model, _| Ok(Arc::clone(model)))
    }

    fn cascade() -> Cascade {
        Cascade::new(vec![Infection::new(0u32, 0.0), Infection::new(1u32, 0.3)]).unwrap()
    }

    fn batch_of(cascades: Vec<Cascade>) -> DrainedBatch {
        DrainedBatch {
            cascades,
            traces: Vec::new(),
        }
    }

    #[test]
    fn drained_batch_publishes_a_new_version() {
        let store = SnapshotStore::new(embeddings());
        // A retrain that bumps every influence entry by 1 and records the
        // batch size it saw.
        let retrain: RetrainFn = Box::new(|model, fresh| {
            assert_eq!(fresh.node_count(), 4);
            assert_eq!(fresh.len(), 2);
            let emb = model
                .as_any()
                .downcast_ref::<EmbeddingBackend>()
                .expect("embed backend")
                .embeddings();
            let a: Vec<f64> = emb.influence_matrix().iter().map(|x| x + 1.0).collect();
            Ok(Arc::new(EmbeddingBackend::new(Embeddings::from_matrices(
                emb.node_count(),
                emb.topic_count(),
                a,
                emb.selectivity_matrix().to_vec(),
            ))))
        });
        retrain_once(
            &store,
            None,
            batch_of(vec![cascade(), cascade()]),
            None,
            &retrain,
        );
        let snap = store.current();
        assert_eq!(snap.version, 2);
        assert!((inner(&snap.model).influence_matrix()[0] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn failed_retrain_keeps_the_old_snapshot() {
        let store = SnapshotStore::new(embeddings());
        let retrain: RetrainFn = Box::new(|_, _| Err("synthetic failure".into()));
        retrain_once(&store, None, batch_of(vec![cascade()]), None, &retrain);
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let store = SnapshotStore::new(embeddings());
        let retrain: RetrainFn = Box::new(|_, _| panic!("must not be called"));
        retrain_once(&store, None, DrainedBatch::default(), None, &retrain);
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn successful_publish_checkpoints_the_event_store() {
        let dir =
            std::env::temp_dir().join(format!("viralcast-trainer-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut es, _) = EventStore::open(&dir, viralcast_store::WalOptions::default()).unwrap();
        es.append_batch(&[Cascade::new(vec![
            Infection::new(0u32, 0.0),
            Infection::new(1u32, 0.3),
        ])
        .unwrap()])
            .unwrap();
        let es = Mutex::new(es);
        let store = SnapshotStore::new(embeddings());
        let retrain: RetrainFn = identity();
        retrain_once(
            &store,
            Some(&es),
            batch_of(vec![cascade()]),
            Some(1),
            &retrain,
        );
        assert_eq!(store.version(), 2);
        // The checkpoint landed: reopening recovers snapshot v2 with
        // nothing left pending below the recorded offset.
        drop(es);
        let (_, recovery) = EventStore::open(&dir, viralcast_store::WalOptions::default()).unwrap();
        assert_eq!(recovery.snapshot_version(), 2);
        assert!(recovery.pending.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publish_reports_per_trace_lag() {
        let store = SnapshotStore::new(embeddings());
        let retrain: RetrainFn = identity();
        let hist_before = obs::metrics()
            .histogram_exponential("serve.ingest_to_publish_ms", 1.0, 2.0, 16)
            .count();
        let batch = DrainedBatch {
            cascades: vec![cascade(), cascade()],
            traces: vec![
                TraceMark {
                    trace_id: "lag-a".into(),
                    cascades: 1,
                    enqueued: Instant::now(),
                },
                TraceMark {
                    trace_id: "lag-b".into(),
                    cascades: 1,
                    enqueued: Instant::now(),
                },
            ],
        };
        retrain_once(&store, None, batch, None, &retrain);
        assert_eq!(store.version(), 2);
        let hist = obs::metrics()
            .histogram_exponential("serve.ingest_to_publish_ms", 1.0, 2.0, 16)
            .count();
        assert_eq!(hist - hist_before, 2, "one lag sample per trace mark");
        let lag = obs::metrics().gauge("serve.lag.ingest_to_publish_ms").get();
        assert!(
            (0.0..60_000.0).contains(&lag),
            "implausible lag gauge {lag}"
        );
    }

    #[test]
    fn trainer_thread_drains_and_shuts_down() {
        let store = Arc::new(SnapshotStore::new(embeddings()));
        let buffer = Arc::new(IngestBuffer::new(16));
        let shutdown = Arc::new(AtomicBool::new(false));
        let retrain: RetrainFn = identity();
        let handle = spawn(
            Arc::clone(&store),
            Arc::clone(&buffer),
            None,
            retrain,
            TrainerConfig {
                interval: Duration::from_millis(20),
                min_batch: 1,
            },
            Arc::clone(&shutdown),
        );
        buffer.push_batch(vec![cascade()], Some("trainer-test"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while store.version() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(store.version() >= 2, "trainer never published");
        assert!(buffer.is_empty());
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }
}
