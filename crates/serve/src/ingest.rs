//! The bounded in-memory buffer between `/v1/ingest` and the trainer.
//!
//! Request threads append validated cascades; the background trainer
//! drains the whole buffer at each retrain tick. The buffer is bounded so
//! a client outpacing the trainer degrades to load-shedding (dropped
//! cascades are counted, and the ingest response reports them) instead of
//! unbounded memory growth.

use std::collections::VecDeque;
use std::sync::Mutex;
use viralcast_obs as obs;
use viralcast_propagation::Cascade;

/// What happened to one ingest batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Cascades admitted to the buffer.
    pub accepted: usize,
    /// Cascades shed because the buffer was full.
    pub dropped: usize,
    /// Buffer depth after the batch.
    pub buffered: usize,
}

/// A bounded FIFO of cascades awaiting retraining.
#[derive(Debug)]
pub struct IngestBuffer {
    capacity: usize,
    queue: Mutex<VecDeque<Cascade>>,
}

impl IngestBuffer {
    /// A buffer holding at most `capacity` cascades (minimum 1).
    pub fn new(capacity: usize) -> Self {
        IngestBuffer {
            capacity: capacity.max(1),
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Maximum number of buffered cascades.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current buffer depth.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a batch, shedding whatever exceeds the capacity.
    pub fn push_batch(&self, cascades: Vec<Cascade>) -> IngestReceipt {
        let total = cascades.len();
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let room = self.capacity.saturating_sub(queue.len());
        let accepted = total.min(room);
        for c in cascades.into_iter().take(accepted) {
            queue.push_back(c);
        }
        let receipt = IngestReceipt {
            accepted,
            dropped: total - accepted,
            buffered: queue.len(),
        };
        drop(queue);
        obs::metrics()
            .counter("serve.ingest.accepted")
            .incr(receipt.accepted as u64);
        obs::metrics()
            .counter("serve.ingest.dropped")
            .incr(receipt.dropped as u64);
        obs::metrics()
            .gauge("serve.ingest.buffered")
            .set(receipt.buffered as f64);
        receipt
    }

    /// Appends a batch **ignoring the capacity bound** — boot-time
    /// replay of the durable log only. Shedding here would silently
    /// drop events the daemon already acked in a previous life; the
    /// buffer may transiently exceed its capacity until the trainer's
    /// next drain instead.
    pub fn preload(&self, cascades: Vec<Cascade>) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.extend(cascades);
        let depth = queue.len();
        drop(queue);
        obs::metrics()
            .gauge("serve.ingest.buffered")
            .set(depth as f64);
    }

    /// Removes and returns everything buffered (FIFO order).
    pub fn drain(&self) -> Vec<Cascade> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let out: Vec<Cascade> = queue.drain(..).collect();
        drop(queue);
        obs::metrics().gauge("serve.ingest.buffered").set(0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_propagation::Infection;

    fn cascade(node: u32) -> Cascade {
        Cascade::new(vec![
            Infection::new(node, 0.0),
            Infection::new(node + 1, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn accepts_up_to_capacity_then_sheds() {
        let buf = IngestBuffer::new(3);
        let r = buf.push_batch(vec![cascade(0), cascade(2)]);
        assert_eq!(
            r,
            IngestReceipt {
                accepted: 2,
                dropped: 0,
                buffered: 2
            }
        );
        let r = buf.push_batch(vec![cascade(4), cascade(6), cascade(8)]);
        assert_eq!(
            r,
            IngestReceipt {
                accepted: 1,
                dropped: 2,
                buffered: 3
            }
        );
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn drain_empties_in_fifo_order() {
        let buf = IngestBuffer::new(10);
        buf.push_batch(vec![cascade(0), cascade(5)]);
        let drained = buf.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seed().node.0, 0);
        assert_eq!(drained[1].seed().node.0, 5);
        assert!(buf.is_empty());
        assert!(buf.drain().is_empty());
    }

    #[test]
    fn preload_bypasses_the_capacity_bound() {
        let buf = IngestBuffer::new(2);
        buf.preload(vec![cascade(0), cascade(2), cascade(4), cascade(6)]);
        assert_eq!(buf.len(), 4);
        // Over-capacity state drains normally and new pushes shed.
        assert_eq!(buf.push_batch(vec![cascade(8)]).dropped, 1);
        assert_eq!(buf.drain().len(), 4);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let buf = IngestBuffer::new(0);
        assert_eq!(buf.capacity(), 1);
        let r = buf.push_batch(vec![cascade(0), cascade(2)]);
        assert_eq!(r.accepted, 1);
        assert_eq!(r.dropped, 1);
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let buf = std::sync::Arc::new(IngestBuffer::new(50));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let buf = std::sync::Arc::clone(&buf);
                scope.spawn(move || {
                    for i in 0..20 {
                        buf.push_batch(vec![cascade(t * 100 + i)]);
                    }
                });
            }
        });
        assert_eq!(buf.len(), 50);
    }
}
