//! The bounded in-memory buffer between `/v1/ingest` and the trainer.
//!
//! Request threads append validated cascades; the background trainer
//! drains the whole buffer at each retrain tick. The buffer is bounded so
//! a client outpacing the trainer degrades to load-shedding (dropped
//! cascades are counted, and the ingest response reports them) instead of
//! unbounded memory growth.
//!
//! Alongside the cascades, the buffer keeps one [`TraceMark`] per
//! admitted ingest request — the request's trace ID, how many of its
//! cascades were admitted, and when. The trainer carries the marks
//! through retraining so a publish can report, per trace, the
//! acked-to-served latency (`serve.ingest_to_publish_ms`).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;
use viralcast_obs as obs;
use viralcast_propagation::Cascade;

/// What happened to one ingest batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Cascades admitted to the buffer.
    pub accepted: usize,
    /// Cascades shed because the buffer was full.
    pub dropped: usize,
    /// Buffer depth after the batch.
    pub buffered: usize,
}

/// One admitted ingest request awaiting retraining.
#[derive(Clone, Debug)]
pub struct TraceMark {
    /// The ingest request's trace ID.
    pub trace_id: String,
    /// How many of its cascades were admitted.
    pub cascades: usize,
    /// When the batch was acked into the buffer.
    pub enqueued: Instant,
}

/// Everything one trainer drain removed: the cascades plus the trace
/// marks of the requests that contributed them.
#[derive(Clone, Debug, Default)]
pub struct DrainedBatch {
    /// Drained cascades in FIFO order.
    pub cascades: Vec<Cascade>,
    /// Trace marks of the contributing ingests, in arrival order.
    pub traces: Vec<TraceMark>,
}

impl DrainedBatch {
    /// Whether nothing was drained.
    pub fn is_empty(&self) -> bool {
        self.cascades.is_empty()
    }
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<Cascade>,
    traces: Vec<TraceMark>,
}

/// A bounded FIFO of cascades awaiting retraining.
#[derive(Debug)]
pub struct IngestBuffer {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl IngestBuffer {
    /// A buffer holding at most `capacity` cascades (minimum 1).
    pub fn new(capacity: usize) -> Self {
        IngestBuffer {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Maximum number of buffered cascades.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current buffer depth.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a batch, shedding whatever exceeds the capacity. When
    /// `trace_id` is given and at least one cascade is admitted, a
    /// [`TraceMark`] rides along to the next drain.
    pub fn push_batch(&self, cascades: Vec<Cascade>, trace_id: Option<&str>) -> IngestReceipt {
        let total = cascades.len();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let room = self.capacity.saturating_sub(inner.queue.len());
        let accepted = total.min(room);
        for c in cascades.into_iter().take(accepted) {
            inner.queue.push_back(c);
        }
        if accepted > 0 {
            if let Some(trace_id) = trace_id {
                inner.traces.push(TraceMark {
                    trace_id: trace_id.to_string(),
                    cascades: accepted,
                    enqueued: Instant::now(),
                });
            }
        }
        let receipt = IngestReceipt {
            accepted,
            dropped: total - accepted,
            buffered: inner.queue.len(),
        };
        drop(inner);
        obs::metrics()
            .counter("serve.ingest.accepted")
            .incr(receipt.accepted as u64);
        obs::metrics()
            .counter("serve.ingest.dropped")
            .incr(receipt.dropped as u64);
        obs::metrics()
            .gauge("serve.ingest.buffered")
            .set(receipt.buffered as f64);
        receipt
    }

    /// Appends a batch **ignoring the capacity bound** — boot-time
    /// replay of the durable log only. Shedding here would silently
    /// drop events the daemon already acked in a previous life; the
    /// buffer may transiently exceed its capacity until the trainer's
    /// next drain instead. The replay is marked with the `boot-replay`
    /// trace ID.
    pub fn preload(&self, cascades: Vec<Cascade>) {
        let count = cascades.len();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.queue.extend(cascades);
        if count > 0 {
            inner.traces.push(TraceMark {
                trace_id: "boot-replay".to_string(),
                cascades: count,
                enqueued: Instant::now(),
            });
        }
        let depth = inner.queue.len();
        drop(inner);
        obs::metrics()
            .gauge("serve.ingest.buffered")
            .set(depth as f64);
    }

    /// Removes and returns everything buffered (FIFO order) together
    /// with the trace marks accumulated since the previous drain.
    pub fn drain(&self) -> DrainedBatch {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let batch = DrainedBatch {
            cascades: inner.queue.drain(..).collect(),
            traces: std::mem::take(&mut inner.traces),
        };
        drop(inner);
        obs::metrics().gauge("serve.ingest.buffered").set(0.0);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_propagation::Infection;

    fn cascade(node: u32) -> Cascade {
        Cascade::new(vec![
            Infection::new(node, 0.0),
            Infection::new(node + 1, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn accepts_up_to_capacity_then_sheds() {
        let buf = IngestBuffer::new(3);
        let r = buf.push_batch(vec![cascade(0), cascade(2)], None);
        assert_eq!(
            r,
            IngestReceipt {
                accepted: 2,
                dropped: 0,
                buffered: 2
            }
        );
        let r = buf.push_batch(vec![cascade(4), cascade(6), cascade(8)], None);
        assert_eq!(
            r,
            IngestReceipt {
                accepted: 1,
                dropped: 2,
                buffered: 3
            }
        );
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn drain_empties_in_fifo_order() {
        let buf = IngestBuffer::new(10);
        buf.push_batch(vec![cascade(0), cascade(5)], None);
        let drained = buf.drain();
        assert_eq!(drained.cascades.len(), 2);
        assert_eq!(drained.cascades[0].seed().node.0, 0);
        assert_eq!(drained.cascades[1].seed().node.0, 5);
        assert!(buf.is_empty());
        assert!(buf.drain().is_empty());
    }

    #[test]
    fn trace_marks_ride_to_the_next_drain() {
        let buf = IngestBuffer::new(3);
        buf.push_batch(vec![cascade(0), cascade(2)], Some("req-a"));
        // Partially shed batches still mark their admitted share.
        buf.push_batch(vec![cascade(4), cascade(6)], Some("req-b"));
        // Fully shed batches leave no mark: nothing of theirs publishes.
        buf.push_batch(vec![cascade(8)], Some("req-c"));
        let drained = buf.drain();
        assert_eq!(drained.cascades.len(), 3);
        let ids: Vec<&str> = drained.traces.iter().map(|t| t.trace_id.as_str()).collect();
        assert_eq!(ids, vec!["req-a", "req-b"]);
        assert_eq!(drained.traces[0].cascades, 2);
        assert_eq!(drained.traces[1].cascades, 1);
        // The next drain starts with a clean slate.
        assert!(buf.drain().traces.is_empty());
    }

    #[test]
    fn preload_bypasses_the_capacity_bound() {
        let buf = IngestBuffer::new(2);
        buf.preload(vec![cascade(0), cascade(2), cascade(4), cascade(6)]);
        assert_eq!(buf.len(), 4);
        // Over-capacity state drains normally and new pushes shed.
        assert_eq!(buf.push_batch(vec![cascade(8)], None).dropped, 1);
        let drained = buf.drain();
        assert_eq!(drained.cascades.len(), 4);
        assert_eq!(drained.traces[0].trace_id, "boot-replay");
        assert_eq!(drained.traces[0].cascades, 4);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let buf = IngestBuffer::new(0);
        assert_eq!(buf.capacity(), 1);
        let r = buf.push_batch(vec![cascade(0), cascade(2)], None);
        assert_eq!(r.accepted, 1);
        assert_eq!(r.dropped, 1);
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let buf = std::sync::Arc::new(IngestBuffer::new(50));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let buf = std::sync::Arc::clone(&buf);
                scope.spawn(move || {
                    for i in 0..20 {
                        buf.push_batch(vec![cascade(t * 100 + i)], Some("concurrent"));
                    }
                });
            }
        });
        assert_eq!(buf.len(), 50);
    }
}
