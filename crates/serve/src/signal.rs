//! Ctrl-c / SIGTERM without a signal-handling crate.
//!
//! The handler does the only async-signal-safe thing possible — it sets a
//! static atomic flag — and the daemon's accept loop polls that flag. On
//! Unix the registration goes straight through libc's `signal(2)` (libc
//! is always linked); elsewhere the flag simply never fires and the
//! daemon runs until killed.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, SHUTDOWN_REQUESTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() -> &'static AtomicBool {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
        &SHUTDOWN_REQUESTED
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{AtomicBool, SHUTDOWN_REQUESTED};

    pub fn install() -> &'static AtomicBool {
        &SHUTDOWN_REQUESTED
    }
}

/// Installs handlers for SIGINT and SIGTERM (idempotent) and returns the
/// flag they set.
pub fn install_ctrlc() -> &'static AtomicBool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_unset_and_is_reachable() {
        let flag = install_ctrlc();
        // Another test in this process may have raised a signal; only
        // assert the handle is usable, not its value.
        let _ = flag.load(Ordering::SeqCst);
    }
}
