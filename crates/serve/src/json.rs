//! A strict JSON parser for request bodies.
//!
//! `viralcast-obs` ships the workspace's dependency-free JSON *writer*
//! ([`JsonValue`]); the daemon additionally needs to *read* JSON, so this
//! module adds the missing half: a recursive-descent parser into the same
//! value tree, plus the typed accessors the endpoint codecs use. Strict
//! by design — no comments, no trailing commas, no unquoted keys — and
//! depth-limited so a hostile body cannot blow the worker stack.

use viralcast_obs::JsonValue;

/// Nesting depth past which parsing aborts (a flat request body for this
/// API nests 4 levels; 64 leaves two orders of magnitude of headroom).
const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening '"'
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are rejected rather than
                        // combined; the API never emits them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte 0x{c:02x} in string"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid by construction).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    if !fractional {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(JsonValue::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(JsonValue::I64(n));
        }
    }
    let x: f64 = text
        .parse()
        .map_err(|_| format!("malformed number {text:?}"))?;
    if !x.is_finite() {
        return Err(format!("number {text:?} overflows f64"));
    }
    Ok(JsonValue::F64(x))
}

/// The value under `key` in an object, if present.
pub fn get<'a>(value: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match value {
        JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Numeric coercion across the integer/float variants.
pub fn as_f64(value: &JsonValue) -> Option<f64> {
    match value {
        JsonValue::U64(n) => Some(*n as f64),
        JsonValue::I64(n) => Some(*n as f64),
        JsonValue::F64(x) => Some(*x),
        _ => None,
    }
}

/// A non-negative integer (rejects floats with fractional parts).
pub fn as_u64(value: &JsonValue) -> Option<u64> {
    match value {
        JsonValue::U64(n) => Some(*n),
        JsonValue::I64(n) if *n >= 0 => Some(*n as u64),
        JsonValue::F64(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
            Some(*x as u64)
        }
        _ => None,
    }
}

/// The array items, if `value` is an array.
pub fn as_arr(value: &JsonValue) -> Option<&[JsonValue]> {
    match value {
        JsonValue::Arr(items) => Some(items),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), JsonValue::U64(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::I64(-7));
        assert_eq!(parse("1.5e2").unwrap(), JsonValue::F64(150.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn structures_parse() {
        let v = parse(r#"{"pairs":[[0,1],[2,3]],"dt":0.5}"#).unwrap();
        let pairs = as_arr(get(&v, "pairs").unwrap()).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(as_u64(&as_arr(&pairs[1]).unwrap()[0]), Some(2));
        assert_eq!(as_f64(get(&v, "dt").unwrap()), Some(0.5));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            JsonValue::Str("a\"b\\c\ndA".into())
        );
    }

    #[test]
    fn round_trips_through_the_obs_writer() {
        let text = r#"{"a":[1,2.5,"x",null,true],"b":{"c":-3}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "01x",
            "nul",
            "[1] trailing",
            "{\"a\":1,}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integer_widths() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            JsonValue::U64(u64::MAX)
        );
        assert_eq!(
            parse("-9223372036854775808").unwrap(),
            JsonValue::I64(i64::MIN)
        );
        assert!(parse("1e400").is_err());
    }

    #[test]
    fn accessors_coerce() {
        assert_eq!(as_f64(&JsonValue::U64(3)), Some(3.0));
        assert_eq!(as_u64(&JsonValue::F64(4.0)), Some(4));
        assert_eq!(as_u64(&JsonValue::F64(4.5)), None);
        assert_eq!(as_u64(&JsonValue::I64(-1)), None);
        assert!(get(&JsonValue::Null, "k").is_none());
    }
}
