//! Versioned, atomically hot-swappable model snapshots.
//!
//! Readers grab an `Arc<ModelSnapshot>` and keep serving from it for the
//! whole request — a retrain publishing version `n+1` mid-request cannot
//! tear the model out from under them, and in-flight responses honestly
//! report the version they were computed from. The swap itself holds a
//! write lock only long enough to replace one `Arc`, so request threads
//! never wait on training.

use std::sync::{Arc, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};
use viralcast_model::CascadeModel;
use viralcast_obs as obs;

/// One immutable published model version.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Monotone version, starting at 1 for the snapshot loaded at boot.
    pub version: u64,
    /// The model this version serves — any [`CascadeModel`] backend.
    pub model: Arc<dyn CascadeModel>,
    /// Unix seconds at publication (0 if the clock is unavailable).
    pub published_unix: u64,
}

/// The swap point between request threads and the trainer.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<ModelSnapshot>>,
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn set_version_gauge(version: u64) {
    obs::metrics()
        .gauge("serve.snapshot.version")
        .set(version as f64);
}

impl SnapshotStore {
    /// A store whose first snapshot (version 1) wraps `model`.
    pub fn new(model: Arc<dyn CascadeModel>) -> Self {
        Self::with_version(model, 1)
    }

    /// A store whose first snapshot resumes a recovered lineage at
    /// `version` (clamped to ≥ 1) — used when booting from a durable
    /// checkpoint so versions stay monotone across restarts.
    pub fn with_version(model: Arc<dyn CascadeModel>, version: u64) -> Self {
        let version = version.max(1);
        set_version_gauge(version);
        SnapshotStore {
            current: RwLock::new(Arc::new(ModelSnapshot {
                version,
                model,
                published_unix: unix_now(),
            })),
        }
    }

    /// The current snapshot. Cheap: one read lock, one `Arc` clone.
    pub fn current(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Current version without cloning the snapshot.
    pub fn version(&self) -> u64 {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .version
    }

    /// Publishes `model` as the next version and returns it.
    pub fn publish(&self, model: Arc<dyn CascadeModel>) -> u64 {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        let version = slot.version + 1;
        *slot = Arc::new(ModelSnapshot {
            version,
            model,
            published_unix: unix_now(),
        });
        drop(slot);
        set_version_gauge(version);
        obs::metrics().counter("serve.snapshot.publishes").incr(1);
        version
    }

    /// Publishes `model` under a caller-chosen version — the follower
    /// path, where the version comes from the leader's lineage rather
    /// than a local increment. Monotone-guarded: a version at or below
    /// the current one is rejected (returns the unchanged current
    /// version) so stale replication fetches can never roll the store
    /// backwards.
    pub fn publish_version(&self, model: Arc<dyn CascadeModel>, version: u64) -> u64 {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        if version <= slot.version {
            return slot.version;
        }
        *slot = Arc::new(ModelSnapshot {
            version,
            model,
            published_unix: unix_now(),
        });
        drop(slot);
        set_version_gauge(version);
        obs::metrics().counter("serve.snapshot.publishes").incr(1);
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_embed::Embeddings;
    use viralcast_graph::NodeId;
    use viralcast_model::EmbeddingBackend;

    fn emb(seed: f64) -> Arc<dyn CascadeModel> {
        Arc::new(EmbeddingBackend::new(Embeddings::from_matrices(
            2,
            1,
            vec![seed, seed],
            vec![seed, seed],
        )))
    }

    /// `emb(seed)` has all-equal entries, so every pairwise hazard is
    /// `seed²` — the probe the swap tests read through the trait.
    fn probe(snap: &ModelSnapshot) -> f64 {
        snap.model.hazard(NodeId(0), NodeId(1))
    }

    #[test]
    fn boot_snapshot_is_version_one() {
        let store = SnapshotStore::new(emb(0.5));
        assert_eq!(store.version(), 1);
        assert_eq!(store.current().version, 1);
    }

    #[test]
    fn recovered_lineage_resumes_at_its_version() {
        let store = SnapshotStore::with_version(emb(0.5), 7);
        assert_eq!(store.version(), 7);
        assert_eq!(store.publish(emb(0.6)), 8);
        // Version 0 is not a publishable lineage; clamp to the floor.
        assert_eq!(SnapshotStore::with_version(emb(0.5), 0).version(), 1);
    }

    #[test]
    fn publish_version_adopts_forward_and_rejects_backward() {
        let store = SnapshotStore::new(emb(0.5));
        // Adopt a leader version far ahead of the local lineage.
        assert_eq!(store.publish_version(emb(0.7), 9), 9);
        assert_eq!(store.version(), 9);
        assert_eq!(probe(&store.current()), 0.7 * 0.7);
        // Stale and equal versions are rejected without swapping.
        assert_eq!(store.publish_version(emb(0.9), 9), 9);
        assert_eq!(store.publish_version(emb(0.9), 3), 9);
        assert_eq!(probe(&store.current()), 0.7 * 0.7);
        // A local publish resumes after the adopted version.
        assert_eq!(store.publish(emb(0.8)), 10);
    }

    #[test]
    fn publish_bumps_version_and_swaps() {
        let store = SnapshotStore::new(emb(0.5));
        let held = store.current();
        assert_eq!(store.publish(emb(0.7)), 2);
        assert_eq!(store.version(), 2);
        // The old handle still sees the model it started with.
        assert_eq!(held.version, 1);
        assert_eq!(probe(&held), 0.5 * 0.5);
        assert_eq!(probe(&store.current()), 0.7 * 0.7);
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_model() {
        // Each published model has all-equal entries; a "torn" read would
        // surface as a hazard inconsistent with the snapshot version.
        let store = Arc::new(SnapshotStore::new(emb(1.0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = store.current();
                        let v = snap.version as f64;
                        assert_eq!(probe(&snap), v * v, "torn snapshot at v{}", snap.version);
                    }
                });
            }
            // emb(v) tags every entry with the version number; the single
            // publisher keeps the loop variable and the assigned version
            // in lockstep.
            let store2 = Arc::clone(&store);
            scope.spawn(move || {
                for v in 2..=199u64 {
                    store2.publish(emb(v as f64));
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(store.version(), 199);
    }
}
