//! The refactor's byte-identity contract for the embed backend.
//!
//! Before `CascadeModel`, the serving endpoints evaluated the concrete
//! `Embeddings` type directly. These tests pin the refactored path to
//! an inline oracle that recomputes the pre-refactor algorithm from the
//! raw matrices — same candidate filters, same summation order, same
//! (score desc, node asc) comparator, same JSON field order — and
//! assert the rendered responses match **byte for byte**, both at the
//! codec layer and through a live daemon.

use std::sync::Arc;

use viralcast_embed::Embeddings;
use viralcast_graph::NodeId;
use viralcast_model::EmbeddingBackend;
use viralcast_obs::JsonValue;
use viralcast_serve::snapshot::ModelSnapshot;
use viralcast_serve::{api, RowBlock};

/// An asymmetric fixture: 6 nodes x 3 topics with irregular weights so
/// rates are distinct, irrational, and order-sensitive.
fn embeddings() -> Embeddings {
    let n = 6;
    let k = 3;
    let mut influence = Vec::with_capacity(n * k);
    let mut selectivity = Vec::with_capacity(n * k);
    for u in 0..n {
        for t in 0..k {
            influence.push(((u * k + t) as f64 * 0.37 + 0.11).sin().abs());
            selectivity.push(((u * k + t) as f64 * 0.53 + 0.29).cos().abs());
        }
    }
    Embeddings::from_matrices(n, k, influence, selectivity)
}

fn snapshot(version: u64) -> ModelSnapshot {
    ModelSnapshot {
        version,
        model: Arc::new(EmbeddingBackend::new(embeddings())),
        published_unix: 0,
    }
}

/// The pre-refactor pairwise rate: `sum_t A_u[t] * B_v[t]`, summed in
/// topic order exactly as `Embeddings::rate` always did.
fn oracle_rate(emb: &Embeddings, u: NodeId, v: NodeId) -> f64 {
    emb.influence(u)
        .iter()
        .zip(emb.selectivity(v))
        .map(|(a, b)| a * b)
        .sum()
}

/// The pre-refactor `/v1/predict` evaluation, verbatim: scan every row
/// (optionally masked), skip infected rows, sum rates over the sorted
/// infected set, sort by (rate desc, node asc), truncate.
fn oracle_predict(
    emb: &Embeddings,
    version: u64,
    infections: &[(u32, f64)],
    top: usize,
    owned: Option<&RowBlock>,
) -> String {
    let mut infected: Vec<NodeId> = infections.iter().map(|&(u, _)| NodeId(u)).collect();
    infected.sort_unstable();
    infected.dedup();
    let mut scored: Vec<(NodeId, f64)> = (0..emb.node_count())
        .map(NodeId::new)
        .filter(|v| owned.map_or(true, |block| block.contains(*v)))
        .filter(|v| infected.binary_search(v).is_err())
        .map(|v| {
            let rate: f64 = infected.iter().map(|&u| oracle_rate(emb, u, v)).sum();
            (v, rate)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(top);
    let candidates = scored
        .into_iter()
        .map(|(v, rate)| {
            JsonValue::obj(vec![
                ("node", JsonValue::from(v.0 as u64)),
                ("rate", JsonValue::from(rate)),
            ])
        })
        .collect();
    JsonValue::obj(vec![
        ("snapshot_version", JsonValue::from(version)),
        ("observed", JsonValue::from(infections.len())),
        ("candidates", JsonValue::Arr(candidates)),
    ])
    .render()
}

/// The pre-refactor `/v1/influencers` evaluation, verbatim.
fn oracle_influencers(
    emb: &Embeddings,
    version: u64,
    topic: Option<usize>,
    top: usize,
    owned: Option<&RowBlock>,
) -> String {
    let mut scored: Vec<(NodeId, f64)> = (0..emb.node_count())
        .map(NodeId::new)
        .filter(|u| owned.map_or(true, |block| block.contains(*u)))
        .map(|u| {
            let row = emb.influence(u);
            let score = match topic {
                Some(t) => row[t],
                None => row.iter().map(|x| x * x).sum::<f64>().sqrt(),
            };
            (u, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(top);
    let influencers = scored
        .into_iter()
        .map(|(u, score)| {
            JsonValue::obj(vec![
                ("node", JsonValue::from(u.0 as u64)),
                ("score", JsonValue::from(score)),
            ])
        })
        .collect();
    let mut fields = vec![("snapshot_version", JsonValue::from(version))];
    if let Some(t) = topic {
        fields.push(("topic", JsonValue::from(t)));
    }
    fields.push(("influencers", JsonValue::Arr(influencers)));
    JsonValue::obj(fields).render()
}

/// The pre-refactor `/v1/hazard` evaluation, verbatim.
fn oracle_hazard(emb: &Embeddings, version: u64, pairs: &[(u32, u32)], dt: Option<f64>) -> String {
    let results = pairs
        .iter()
        .map(|&(u, v)| {
            let rate = oracle_rate(emb, NodeId(u), NodeId(v));
            let mut fields = vec![
                ("source", JsonValue::from(u as u64)),
                ("target", JsonValue::from(v as u64)),
                ("rate", JsonValue::from(rate)),
            ];
            if let Some(dt) = dt {
                fields.push(("survival", JsonValue::from((-rate * dt).exp())));
            }
            JsonValue::obj(fields)
        })
        .collect();
    JsonValue::obj(vec![
        ("snapshot_version", JsonValue::from(version)),
        ("results", JsonValue::Arr(results)),
    ])
    .render()
}

fn parse(body: &str) -> JsonValue {
    viralcast_serve::json::parse(body).unwrap()
}

#[test]
fn predict_is_byte_identical_to_the_pre_refactor_algorithm() {
    let snap = snapshot(7);
    let emb = embeddings();
    for (body, infections, top) in [
        (
            r#"{"cascade":[{"node":0,"time":0.0}],"top":10}"#,
            vec![(0u32, 0.0)],
            10,
        ),
        (
            r#"{"cascade":[{"node":4,"time":0.5},{"node":1,"time":0.0},{"node":4,"time":1.5}],"top":3}"#,
            vec![(4, 0.5), (1, 0.0), (4, 1.5)],
            3,
        ),
        (
            r#"{"cascade":[{"node":5,"time":0.0},{"node":2,"time":2.0}],"top":1}"#,
            vec![(5, 0.0), (2, 2.0)],
            1,
        ),
    ] {
        let req = api::parse_predict(&parse(body)).unwrap();
        let refactored = api::predict_json(&snap, &req, None).unwrap().render();
        let oracle = oracle_predict(&emb, 7, &infections, top, None);
        assert_eq!(refactored, oracle, "for body {body}");
    }
}

#[test]
fn sharded_predict_is_byte_identical_to_the_pre_refactor_algorithm() {
    let snap = snapshot(3);
    let emb = embeddings();
    let req = api::parse_predict(&parse(r#"{"cascade":[{"node":0,"time":0.0}],"top":6}"#)).unwrap();
    for shard in 0..3 {
        let block = RowBlock::round_robin(6, shard, 3).unwrap();
        let refactored = api::predict_json(&snap, &req, Some(&block))
            .unwrap()
            .render();
        let oracle = oracle_predict(&emb, 3, &[(0, 0.0)], 6, Some(&block));
        assert_eq!(refactored, oracle, "for shard {shard}");
    }
}

#[test]
fn influencers_is_byte_identical_to_the_pre_refactor_algorithm() {
    let snap = snapshot(9);
    let emb = embeddings();
    for (topic, top) in [(None, 6), (None, 2), (Some(0), 4), (Some(2), 6)] {
        let refactored = api::influencers_json(&snap, topic, top, None)
            .unwrap()
            .render();
        let oracle = oracle_influencers(&emb, 9, topic, top, None);
        assert_eq!(refactored, oracle, "for topic {topic:?} top {top}");
    }
    let block = RowBlock::round_robin(6, 1, 2).unwrap();
    let refactored = api::influencers_json(&snap, None, 6, Some(&block))
        .unwrap()
        .render();
    assert_eq!(
        refactored,
        oracle_influencers(&emb, 9, None, 6, Some(&block))
    );
}

#[test]
fn hazard_is_byte_identical_to_the_pre_refactor_algorithm() {
    let snap = snapshot(2);
    let emb = embeddings();
    let req = api::parse_hazard(&parse(r#"{"pairs":[[0,1],[5,2],[3,3]],"dt":0.75}"#)).unwrap();
    let refactored = api::hazard_json(&snap, &req).unwrap().render();
    assert_eq!(
        refactored,
        oracle_hazard(&emb, 2, &[(0, 1), (5, 2), (3, 3)], Some(0.75))
    );
    let req = api::parse_hazard(&parse(r#"{"pairs":[[1,0]]}"#)).unwrap();
    let refactored = api::hazard_json(&snap, &req).unwrap().render();
    assert_eq!(refactored, oracle_hazard(&emb, 2, &[(1, 0)], None));
}

#[test]
fn live_daemon_responses_are_byte_identical_to_the_oracle() {
    use std::time::Duration;
    use viralcast_serve::{client, start, trainer::TrainerConfig, ServeConfig};

    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        trainer: TrainerConfig {
            interval: Duration::from_secs(3600),
            min_batch: 1,
        },
        ..ServeConfig::default()
    };
    let handle = start(
        Arc::new(EmbeddingBackend::new(embeddings())),
        Box::new(|m, _| Ok(Arc::clone(m))),
        config,
    )
    .unwrap();
    let addr = handle.local_addr();
    let emb = embeddings();

    let resp = client::request(
        &addr,
        "POST",
        "/v1/predict",
        Some(r#"{"cascade":[{"node":0,"time":0.0},{"node":3,"time":1.0}],"top":4}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body,
        oracle_predict(&emb, 1, &[(0, 0.0), (3, 1.0)], 4, None)
    );

    let resp = client::request(&addr, "GET", "/v1/influencers?top=3", None).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, oracle_influencers(&emb, 1, None, 3, None));

    let resp = client::request(
        &addr,
        "POST",
        "/v1/hazard",
        Some(r#"{"pairs":[[2,4]],"dt":1.5}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, oracle_hazard(&emb, 1, &[(2, 4)], Some(1.5)));

    handle.shutdown();
}
