//! Property-style exercises of the WAL codec and recovery reader: no
//! external fuzzing dependency, just a hand-rolled LCG driving many
//! random shapes through the same assertions.
//!
//! Two invariants the durability story rests on:
//!
//! * any valid cascade survives `encode → decode` bit-identically;
//! * cutting a valid log at **every** byte position recovers exactly
//!   the maximal intact record prefix — never a panic, never a lost
//!   intact record, never a phantom one.

use viralcast_propagation::{Cascade, Infection};
use viralcast_store::codec::{decode_cascade, encode_cascade, frame};
use viralcast_store::wal::SEGMENT_MAGIC;
use viralcast_store::{Wal, WalOptions};

/// Deterministic 64-bit LCG (Knuth's MMIX constants): enough entropy
/// for shape coverage, zero dependencies, reproducible failures.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A random valid cascade: 1–24 distinct nodes, non-negative finite
/// times including repeats, zeros, and fractional values.
fn arbitrary_cascade(rng: &mut Lcg) -> Cascade {
    let len = 1 + rng.below(24) as usize;
    // Distinct nodes via a stride over a coprime ring.
    let start = rng.below(1 << 20) as u32;
    let stride = 1 + rng.below(997) as u32;
    let infections: Vec<Infection> = (0..len)
        .map(|i| {
            let time = match rng.below(4) {
                0 => 0.0,
                1 => rng.below(1_000) as f64,
                2 => rng.below(1_000_000) as f64 / 1024.0,
                _ => (i as f64) * 0.5, // ties across cascades
            };
            Infection::new(start.wrapping_add(stride * i as u32), time)
        })
        .collect();
    Cascade::new(infections).expect("generator only emits valid cascades")
}

#[test]
fn arbitrary_cascades_round_trip_identically() {
    let mut rng = Lcg(0x5eed);
    for case in 0..200 {
        let cascade = arbitrary_cascade(&mut rng);
        let payload = encode_cascade(&cascade);
        let back =
            decode_cascade(&payload).unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(cascade, back, "case {case}: round trip changed the cascade");
        // Framing is stable too: the frame parser hands back the exact
        // payload bytes.
        let framed = frame(&payload);
        assert_eq!(&framed[8..], &payload[..], "case {case}: frame body");
    }
}

/// Writes `cascades` into a single-segment WAL and returns the raw
/// segment bytes plus each record's end offset within the file.
fn build_segment(dir: &std::path::Path, cascades: &[Cascade]) -> (Vec<u8>, Vec<usize>) {
    let (mut wal, _) = Wal::open(dir, WalOptions::default(), 0).unwrap();
    let mut boundaries = Vec::new();
    let mut offset = SEGMENT_MAGIC.len();
    for cascade in cascades {
        wal.append(cascade).unwrap();
        offset += 8 + encode_cascade(cascade).len();
        boundaries.push(offset);
    }
    wal.commit().unwrap();
    drop(wal);
    let path = segment_file(dir);
    (std::fs::read(path).unwrap(), boundaries)
}

fn segment_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut segments: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "expected a single segment");
    segments.pop().unwrap()
}

#[test]
fn every_truncation_point_recovers_the_maximal_intact_prefix() {
    let base = std::env::temp_dir().join(format!(
        "viralcast-codec-props-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&base);

    let mut rng = Lcg(0xfeed);
    let cascades: Vec<Cascade> = (0..6).map(|_| arbitrary_cascade(&mut rng)).collect();
    let build_dir = base.join("build");
    let (bytes, boundaries) = build_segment(&build_dir, &cascades);
    assert_eq!(*boundaries.last().unwrap(), bytes.len());

    let cut_dir = base.join("cut");
    for cut in 0..=bytes.len() {
        let _ = std::fs::remove_dir_all(&cut_dir);
        std::fs::create_dir_all(&cut_dir).unwrap();
        std::fs::write(cut_dir.join("wal-00000000000000000000.log"), &bytes[..cut]).unwrap();

        let (wal, replay) = Wal::open(&cut_dir, WalOptions::default(), 0)
            .unwrap_or_else(|e| panic!("cut at {cut}/{}: open failed: {e}", bytes.len()));

        // The maximal intact prefix: every record whose frame ends at
        // or before the cut, and nothing else.
        let intact = boundaries.iter().filter(|&&end| end <= cut).count();
        assert_eq!(replay.records.len(), intact, "cut at {cut}");
        for (record, original) in replay.records.iter().zip(&cascades) {
            assert_eq!(&record.cascade, original, "cut at {cut}");
        }
        assert_eq!(wal.next_index(), intact as u64, "cut at {cut}");

        // Everything after the last intact boundary was truncated away
        // (a cut inside the magic trims the whole header).
        let kept = if intact > 0 {
            boundaries[intact - 1]
        } else {
            0
        };
        let expected_truncated = if cut < SEGMENT_MAGIC.len() {
            cut
        } else {
            cut - kept.max(SEGMENT_MAGIC.len())
        };
        assert_eq!(
            replay.truncated_bytes, expected_truncated as u64,
            "cut at {cut}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn recovery_after_any_cut_resumes_a_writable_log() {
    let base = std::env::temp_dir().join(format!(
        "viralcast-codec-props-resume-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&base);

    let mut rng = Lcg(0xacce5);
    let cascades: Vec<Cascade> = (0..3).map(|_| arbitrary_cascade(&mut rng)).collect();
    let build_dir = base.join("build");
    let (bytes, boundaries) = build_segment(&build_dir, &cascades);

    // A handful of representative cuts: inside the magic, on a record
    // boundary, and mid-record.
    let cuts = [3, boundaries[0], boundaries[1] - 5, bytes.len()];
    for &cut in &cuts {
        let dir = base.join(format!("cut-{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal-00000000000000000000.log"), &bytes[..cut]).unwrap();
        let (mut wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        let recovered = replay.records.len() as u64;
        // The next append reuses the first lost (or fresh) index and a
        // reopen sees a whole log again.
        assert_eq!(wal.append(&cascades[0]).unwrap(), recovered);
        wal.commit().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        assert_eq!(replay.records.len() as u64, recovered + 1, "cut at {cut}");
        assert_eq!(replay.truncated_bytes, 0, "cut at {cut}: still torn");
    }
    std::fs::remove_dir_all(&base).ok();
}
