//! Failpoint matrix: for every injected fault class — short write, torn
//! record, fsync failure, rotate failure, checkpoint failure — the store
//! surfaces a typed error (never a panic), never resurrects records the
//! caller was not acked for, and resumes service once the fault clears.

use std::path::{Path, PathBuf};
use viralcast_propagation::{Cascade, Infection};
use viralcast_store::fault::is_injected;
use viralcast_store::{EventStore, FaultKind, FaultPlan, FsyncPolicy, Wal, WalOptions};

fn cascade(seed: u32) -> Cascade {
    Cascade::new(vec![
        Infection::new(seed, 0.0),
        Infection::new(seed + 1, 1.0),
    ])
    .unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "viralcast-failpoints-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn replayed_seeds(dir: &Path, options: WalOptions) -> Vec<u32> {
    let (_, recovery) = EventStore::open(dir, options).unwrap();
    recovery.pending.iter().map(|c| c.seed().node.0).collect()
}

fn tiny_segments() -> WalOptions {
    WalOptions {
        segment_bytes: 64,
        fsync: FsyncPolicy::Always,
    }
}

#[test]
fn short_write_is_rolled_back_and_service_resumes() {
    let dir = tmp_dir("short");
    let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
    store.append_batch(&[cascade(0), cascade(10)]).unwrap();

    let handle = store.arm_faults(FaultPlan::new().fail(FaultKind::ShortWrite, 1));
    let err = store.append_batch(&[cascade(20)]).unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(handle.fired(), 1);
    // The unacked record is gone from the log, not half-written.
    assert_eq!(store.next_index(), 2);

    // The fault was one-shot: the retried batch lands.
    store.append_batch(&[cascade(30)]).unwrap();
    drop(store);

    let (_, recovery) = EventStore::open(&dir, WalOptions::default()).unwrap();
    // Rollback already cleaned the tail, so recovery truncates nothing.
    assert_eq!(recovery.truncated_bytes, 0);
    assert_eq!(replayed_seeds(&dir, WalOptions::default()), vec![0, 10, 30]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_record_is_rolled_back_and_service_resumes() {
    let dir = tmp_dir("torn");
    let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
    store.append_batch(&[cascade(0)]).unwrap();

    let handle = store.arm_faults(FaultPlan::new().fail(FaultKind::TornRecord, 1));
    let err = store.append_batch(&[cascade(10)]).unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(handle.fired(), 1);
    assert_eq!(store.next_index(), 1);

    store.append_batch(&[cascade(20)]).unwrap();
    drop(store);
    assert_eq!(replayed_seeds(&dir, WalOptions::default()), vec![0, 20]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_batch_fault_unwinds_the_whole_batch() {
    let dir = tmp_dir("midbatch");
    let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
    store.append_batch(&[cascade(0), cascade(10)]).unwrap();

    // The second record of the batch tears; the first was written
    // intact — but the client NACKs the whole batch, so neither may
    // survive to be replayed as acked data.
    store.arm_faults(FaultPlan::new().fail(FaultKind::ShortWrite, 2));
    let err = store
        .append_batch(&[cascade(20), cascade(30), cascade(40)])
        .unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(store.next_index(), 2);
    drop(store);
    assert_eq!(replayed_seeds(&dir, WalOptions::default()), vec![0, 10]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_before_rollback_truncates_to_the_last_good_record() {
    // Drive the Wal directly (no EventStore rollback) so the torn bytes
    // actually hit the reopened log: recovery must truncate, not panic.
    for kind in [FaultKind::ShortWrite, FaultKind::TornRecord] {
        let dir = tmp_dir("crash");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            wal.append(&cascade(0)).unwrap();
            wal.sync().unwrap();
            wal.arm_faults(FaultPlan::new().fail(kind, 1));
            let err = wal.append(&cascade(10)).unwrap_err();
            assert!(is_injected(&err), "{err}");
            // Simulated crash: no rollback, no final sync.
            wal.abandon();
        }
        let (mut wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        assert_eq!(replay.records.len(), 1, "{kind:?}");
        assert!(replay.truncated_bytes > 0, "{kind:?}");
        // The log is whole again: index 1 is free for the next append.
        assert_eq!(wal.append(&cascade(20)).unwrap(), 1);
        wal.sync().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn fsync_failure_fails_the_commit_and_rolls_the_batch_back() {
    let dir = tmp_dir("fsync");
    let options = WalOptions {
        segment_bytes: 8 << 20,
        fsync: FsyncPolicy::Always,
    };
    let (mut store, _) = EventStore::open(&dir, options).unwrap();
    store.append_batch(&[cascade(0)]).unwrap();

    let handle = store.arm_faults(FaultPlan::new().fail(FaultKind::FsyncFail, 1));
    // The record reaches the file, but the commit's fsync fails — the
    // durability promise the ack depends on is broken, so the batch is
    // rejected and unwound.
    let err = store.append_batch(&[cascade(10)]).unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(handle.fired(), 1);
    assert_eq!(store.next_index(), 1);

    store.append_batch(&[cascade(20)]).unwrap();
    drop(store);
    assert_eq!(replayed_seeds(&dir, options), vec![0, 20]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotate_failure_rejects_the_batch_and_the_retry_rotates() {
    let dir = tmp_dir("rotate");
    let options = tiny_segments();
    let (mut store, _) = EventStore::open(&dir, options).unwrap();
    // One ~36-byte record nearly fills a 64-byte segment, so the next
    // append must rotate.
    store.append_batch(&[cascade(0)]).unwrap();

    let handle = store.arm_faults(FaultPlan::new().fail(FaultKind::RotateFail, 1));
    let err = store.append_batch(&[cascade(10)]).unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(handle.fired(), 1);
    assert_eq!(store.next_index(), 1);

    // The retry rotates for real and the record lands.
    store.append_batch(&[cascade(10)]).unwrap();
    drop(store);
    assert_eq!(replayed_seeds(&dir, options), vec![0, 10]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cross_segment_rollback_deletes_the_batchs_new_segments() {
    let dir = tmp_dir("crosseg");
    let options = tiny_segments();
    let (mut store, _) = EventStore::open(&dir, options).unwrap();
    store.append_batch(&[cascade(0)]).unwrap();

    // Each record forces a rotation, so by the time the 4th append
    // tears, the batch spans several fresh segments — all of which must
    // vanish with the rollback.
    store.arm_faults(FaultPlan::new().fail(FaultKind::ShortWrite, 4));
    let err = store
        .append_batch(&[cascade(10), cascade(20), cascade(30), cascade(40)])
        .unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(store.next_index(), 1);
    assert_eq!(wal_segments(&dir), 1);

    store.append_batch(&[cascade(50)]).unwrap();
    drop(store);
    assert_eq!(replayed_seeds(&dir, options), vec![0, 50]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_failure_is_typed_and_the_retry_lands() {
    let dir = tmp_dir("ckpt");
    let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
    store.append_batch(&[cascade(0), cascade(10)]).unwrap();
    let emb = viralcast_store::model::EmbeddingBackend::new(
        viralcast_embed::Embeddings::from_matrices(4, 1, vec![0.5; 4], vec![0.5; 4]),
    );

    let handle = store.arm_faults(FaultPlan::new().fail(FaultKind::CheckpointFail, 1));
    let err = store.checkpoint(2, 2, &emb).unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(handle.fired(), 1);
    // Nothing was committed: the pending frontier is unchanged.
    assert_eq!(store.pending_records(), 2);

    store.checkpoint(2, 2, &emb).unwrap();
    assert_eq!(store.pending_records(), 0);
    drop(store);
    let (_, recovery) = EventStore::open(&dir, WalOptions::default()).unwrap();
    assert_eq!(recovery.snapshot_version(), 2);
    assert!(recovery.pending.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

fn wal_segments(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .count()
}
