//! The WAL record codec: length-prefixed, CRC32-framed binary frames
//! around a fixed-width cascade payload.
//!
//! On disk a record is
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! and a cascade payload is
//!
//! ```text
//! [u32 LE infection count] then per infection [u32 LE node][u64 LE time bits]
//! ```
//!
//! Everything is little-endian and fixed-width, so a record's size is
//! knowable from its header and the reader never parses ambiguous text.
//! The CRC is over the payload only: a torn length prefix, a torn
//! payload, and a bit-flipped payload are all detected (the first two by
//! running out of bytes, the last by the checksum), which is exactly the
//! information [`crate::wal`]'s recovery reader needs to truncate a torn
//! tail without discarding intact records.

use crate::crc32::crc32;
use viralcast_graph::NodeId;
use viralcast_propagation::{Cascade, Infection};

/// Bytes of framing before the payload: length prefix + CRC.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a single payload. Corruption in the length prefix
/// would otherwise make the reader trust an absurd length (and attempt
/// the allocation); anything above this is classified as corrupt.
pub const MAX_PAYLOAD_BYTES: usize = 64 << 20;

/// Why a payload failed to decode back into a cascade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the declared infection count was read.
    Truncated,
    /// The payload has bytes left over after the declared infections.
    TrailingBytes(usize),
    /// The infections do not form a valid cascade (empty, duplicate
    /// node, non-finite time).
    InvalidCascade(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload shorter than its infection count"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the infections"),
            CodecError::InvalidCascade(m) => write!(f, "payload is not a valid cascade: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes one cascade as a payload (no frame header).
pub fn encode_cascade(cascade: &Cascade) -> Vec<u8> {
    let infections = cascade.infections();
    let mut out = Vec::with_capacity(4 + infections.len() * 12);
    out.extend_from_slice(&(infections.len() as u32).to_le_bytes());
    for inf in infections {
        out.extend_from_slice(&inf.node.0.to_le_bytes());
        out.extend_from_slice(&inf.time.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a payload previously written by [`encode_cascade`].
pub fn decode_cascade(payload: &[u8]) -> Result<Cascade, CodecError> {
    let count = u32::from_le_bytes(
        payload
            .get(..4)
            .ok_or(CodecError::Truncated)?
            .try_into()
            .unwrap(),
    ) as usize;
    let body = &payload[4..];
    let expected = count.checked_mul(12).ok_or(CodecError::Truncated)?;
    if body.len() < expected {
        return Err(CodecError::Truncated);
    }
    if body.len() > expected {
        return Err(CodecError::TrailingBytes(body.len() - expected));
    }
    let mut infections = Vec::with_capacity(count);
    for chunk in body.chunks_exact(12) {
        let node = u32::from_le_bytes(chunk[..4].try_into().unwrap());
        let time = f64::from_bits(u64::from_le_bytes(chunk[4..].try_into().unwrap()));
        infections.push(Infection {
            node: NodeId(node),
            time,
        });
    }
    Cascade::new(infections).map_err(|e| CodecError::InvalidCascade(e.to_string()))
}

/// Wraps a payload in the on-disk frame (length, CRC, payload).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD_BYTES);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of the recovery reader over a byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A complete record whose CRC matched; `consumed` bytes of input.
    Complete {
        /// The validated payload.
        payload: &'a [u8],
        /// Total frame size (header + payload).
        consumed: usize,
    },
    /// The buffer ends before the record does — a torn tail.
    Torn,
    /// The header parsed but the payload failed its CRC (or the length
    /// prefix is beyond [`MAX_PAYLOAD_BYTES`]): corruption, not a clean
    /// cut.
    Corrupt,
    /// The buffer is exhausted exactly at a record boundary.
    End,
}

/// Reads the frame starting at `buf[pos..]`.
pub fn read_frame(buf: &[u8], pos: usize) -> FrameRead<'_> {
    let rest = &buf[pos.min(buf.len())..];
    if rest.is_empty() {
        return FrameRead::End;
    }
    if rest.len() < FRAME_HEADER_BYTES {
        return FrameRead::Torn;
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return FrameRead::Corrupt;
    }
    let expected_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let Some(payload) = rest.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len) else {
        return FrameRead::Torn;
    };
    if crc32(payload) != expected_crc {
        return FrameRead::Corrupt;
    }
    FrameRead::Complete {
        payload,
        consumed: FRAME_HEADER_BYTES + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cascade(nodes: &[(u32, f64)]) -> Cascade {
        Cascade::new(
            nodes
                .iter()
                .map(|&(n, t)| Infection::new(n, t))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn cascade_round_trip() {
        let c = cascade(&[(0, 0.0), (7, 1.5), (3, 2.25)]);
        let back = decode_cascade(&encode_cascade(&c)).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn decode_rejects_bad_shapes() {
        let payload = encode_cascade(&cascade(&[(0, 0.0), (1, 1.0)]));
        assert_eq!(
            decode_cascade(&payload[..payload.len() - 1]),
            Err(CodecError::Truncated)
        );
        let mut padded = payload.clone();
        padded.push(0);
        assert_eq!(decode_cascade(&padded), Err(CodecError::TrailingBytes(1)));
        // Count = 0 decodes to an empty infection list → invalid cascade.
        let empty = 0u32.to_le_bytes().to_vec();
        assert!(matches!(
            decode_cascade(&empty),
            Err(CodecError::InvalidCascade(_))
        ));
    }

    #[test]
    fn frame_round_trip() {
        let payload = encode_cascade(&cascade(&[(5, 0.5)]));
        let framed = frame(&payload);
        match read_frame(&framed, 0) {
            FrameRead::Complete {
                payload: got,
                consumed,
            } => {
                assert_eq!(got, &payload[..]);
                assert_eq!(consumed, framed.len());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
        assert_eq!(read_frame(&framed, framed.len()), FrameRead::End);
    }

    #[test]
    fn torn_and_corrupt_frames_are_distinguished() {
        let framed = frame(&encode_cascade(&cascade(&[(1, 0.0), (2, 3.0)])));
        // Any strict prefix is torn, never corrupt, never complete.
        for cut in 1..framed.len() {
            assert_eq!(read_frame(&framed[..cut], 0), FrameRead::Torn, "cut {cut}");
        }
        // A payload bit flip is corrupt.
        let mut flipped = framed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(read_frame(&flipped, 0), FrameRead::Corrupt);
        // An absurd length prefix is corrupt, not a huge allocation.
        let mut huge = framed;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(read_frame(&huge, 0), FrameRead::Corrupt);
    }
}
