//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Every WAL record carries a CRC over its payload so the recovery
//! reader can tell a torn or bit-rotted record from a good one without
//! trusting the length prefix alone. Hand-rolled (≈20 lines) to keep the
//! durability layer dependency-free.

/// The reflected polynomial 0xEDB88320 (bit-reversed 0x04C11DB7).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the standard variant
/// `cksum`, zlib, and PNG all use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = b"viralcast write-ahead log".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
