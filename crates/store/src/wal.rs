//! The append-only write-ahead log: segment files, rotation, fsync
//! policy, torn-tail recovery, and prefix compaction.
//!
//! A log is a directory of segment files named `wal-<start>.log`, where
//! `<start>` is the zero-padded global index of the segment's first
//! record. Each segment begins with an 8-byte magic tag and then holds
//! consecutive [`crate::codec`] frames; record indices are implicit
//! (segment start + ordinal), so the files contain no redundant
//! sequence numbers to keep consistent.
//!
//! Durability is governed by [`FsyncPolicy`]: writes always reach the
//! file via `write_all`, and [`Wal::commit`] decides when `fsync`
//! actually runs. `Always` syncs at every commit point (the ingest path
//! commits once per acked batch), `Interval` bounds the data-loss window
//! by time, and `OnRotate` only syncs when a segment closes — the
//! throughput end of the trade-off.
//!
//! Recovery ([`Wal::open`]) replays every intact record. A torn or
//! corrupt frame in the **final** segment is a crash signature: the file
//! is truncated back to the last intact record boundary and appending
//! resumes there. The same damage in a non-final segment means records
//! known to be followed by later writes are unreadable — that is data
//! loss the log cannot silently repair, so `open` refuses with an error
//! instead of dropping acked records on the floor.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use viralcast_obs as obs;
use viralcast_propagation::Cascade;

use crate::codec::{self, FrameRead};
use crate::fault::{self, FaultHandle, FaultKind, FaultPlan};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"VCWALSG1";

/// When appended records are fsynced to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync at every commit point (each acked ingest batch). Slowest,
    /// loses nothing that was acked.
    Always,
    /// Sync when this much time has passed since the last sync. Bounds
    /// the loss window by time instead of by batch.
    Interval(Duration),
    /// Sync only when a segment rotates (and on explicit [`Wal::sync`]).
    /// Fastest; a crash can lose up to a segment of acked records.
    OnRotate,
}

impl FsyncPolicy {
    /// Parses `always`, `rotate`, `interval`, or `interval:<millis>`.
    pub fn parse(raw: &str) -> Result<FsyncPolicy, String> {
        match raw {
            "always" => Ok(FsyncPolicy::Always),
            "rotate" => Ok(FsyncPolicy::OnRotate),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(200))),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("malformed fsync interval {ms:?} (expected millis)")),
                None => Err(format!(
                    "unknown fsync policy {other:?} (expected always|interval[:MS]|rotate)"
                )),
            },
        }
    }
}

/// Tunables for a log.
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// When appends are fsynced.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A replayed record: its global index and the decoded cascade.
#[derive(Clone, Debug, PartialEq)]
pub struct SequencedCascade {
    /// Global record index (position in the log since its creation).
    pub index: u64,
    /// The recovered cascade.
    pub cascade: Cascade,
}

/// What [`Wal::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Every intact record, in index order.
    pub records: Vec<SequencedCascade>,
    /// Bytes cut from a torn final segment.
    pub truncated_bytes: u64,
    /// Segment files present after recovery.
    pub segments: usize,
}

/// The append-only log over one directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    file: File,
    /// Global index of the current segment's first record.
    segment_start: u64,
    /// Bytes written to the current segment (including the magic).
    segment_len: u64,
    /// Index the next appended record will get.
    next_index: u64,
    /// Appends not yet fsynced.
    dirty: bool,
    last_sync: Instant,
    /// Armed failpoints ([`crate::fault`]); `None` outside tests/chaos.
    faults: Option<FaultHandle>,
}

/// Where a batch started, so a mid-batch failure can be unwound. Taken
/// with [`Wal::mark`] before the first append of the batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchMark {
    segment_start: u64,
    segment_len: u64,
    next_index: u64,
}

fn segment_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("wal-{start:020}.log"))
}

/// Parses the start index out of a `wal-<start>.log` file name.
fn segment_start_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// All segment files under `dir`, sorted by start index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(start) = segment_start_of(&path) {
            segments.push((start, path));
        }
    }
    segments.sort_by_key(|&(start, _)| start);
    Ok(segments)
}

fn corrupt(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Wal {
    /// Opens (or creates) the log in `dir`, replaying every intact
    /// record and truncating a torn final segment. When the directory
    /// holds no segments, the first record gets index `base_index`
    /// (non-zero after a checkpoint compacted the whole log away).
    pub fn open(dir: &Path, options: WalOptions, base_index: u64) -> io::Result<(Wal, Replay)> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let mut replay = Replay::default();
        let mut next_index = base_index;

        for (pos, &(start, ref path)) in segments.iter().enumerate() {
            let is_last = pos + 1 == segments.len();
            if pos > 0 && start != next_index {
                return Err(corrupt(format!(
                    "segment {} starts at record {start} but the previous segment \
                     ends at {next_index}: a segment is missing or misnamed",
                    path.display()
                )));
            }
            next_index = start;
            let read = replay_segment(path, start, is_last, &mut replay)?;
            next_index += read;
        }

        // Resume appending in the last segment, or start a fresh one.
        let (segment_start, path) = match segments.last() {
            Some(&(start, ref path)) => (start, path.clone()),
            None => (next_index, segment_path(dir, next_index)),
        };
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut segment_len = file.metadata()?.len();
        if segment_len < SEGMENT_MAGIC.len() as u64 {
            // Brand new (or a crash cut the magic itself before any
            // record): start the segment over.
            file.set_len(0)?;
            file.write_all(SEGMENT_MAGIC)?;
            file.sync_data()?;
            segment_len = SEGMENT_MAGIC.len() as u64;
        }
        replay.segments = segments.len().max(1);

        obs::metrics()
            .counter("store.wal.replayed_records")
            .incr(replay.records.len() as u64);
        obs::metrics()
            .counter("store.wal.truncated_bytes")
            .incr(replay.truncated_bytes);
        obs::metrics()
            .gauge("store.wal.segments")
            .set(replay.segments as f64);

        Ok((
            Wal {
                dir: dir.to_path_buf(),
                options,
                file,
                segment_start,
                segment_len,
                next_index,
                dirty: false,
                last_sync: Instant::now(),
                faults: None,
            },
            replay,
        ))
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index the next appended record will get.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Arms an injectable [`FaultPlan`] on this log's I/O paths,
    /// returning the shared handle the caller queries for fired counts.
    /// Arming replaces any earlier plan.
    pub fn arm_faults(&mut self, plan: FaultPlan) -> FaultHandle {
        let handle = FaultHandle::arm(plan);
        self.faults = Some(handle.clone());
        handle
    }

    /// Fires an armed checkpoint fault, if any — called by
    /// [`crate::EventStore::checkpoint`], which owns no plan itself.
    pub(crate) fn fault_on_checkpoint(&self) -> bool {
        self.faults.as_ref().is_some_and(FaultHandle::on_checkpoint)
    }

    /// Appends one cascade, returning its record index. The bytes reach
    /// the file before this returns; whether they reach the *disk* is
    /// [`Wal::commit`]'s job.
    pub fn append(&mut self, cascade: &Cascade) -> io::Result<u64> {
        let mut framed = codec::frame(&codec::encode_cascade(cascade));
        if self.segment_len + framed.len() as u64 > self.options.segment_bytes
            && self.next_index > self.segment_start
        {
            self.rotate()?;
        }
        match self.faults.as_ref().and_then(FaultHandle::on_append) {
            Some(FaultKind::ShortWrite) => {
                // Write a strict prefix of the frame — the torn-tail
                // crash signature — then fail the append.
                let cut = framed.len() / 2;
                self.file.write_all(&framed[..cut])?;
                self.segment_len += cut as u64;
                self.dirty = true;
                return Err(fault::injected("short write"));
            }
            Some(FaultKind::TornRecord) => {
                // Write the full frame with its CRC trailer corrupted.
                let last = framed.len() - 1;
                framed[last] ^= 0xFF;
                self.file.write_all(&framed)?;
                self.segment_len += framed.len() as u64;
                self.dirty = true;
                return Err(fault::injected("torn record (CRC mismatch)"));
            }
            _ => {}
        }
        self.file.write_all(&framed)?;
        self.segment_len += framed.len() as u64;
        self.dirty = true;
        let index = self.next_index;
        self.next_index += 1;
        obs::metrics().counter("store.wal.appends").incr(1);
        Ok(index)
    }

    /// A commit point (one acked ingest batch): applies the fsync
    /// policy to everything appended so far.
    pub fn commit(&mut self) -> io::Result<()> {
        match self.options.fsync {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::OnRotate => Ok(()),
        }
    }

    /// Forces an fsync of the current segment.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            if self.faults.as_ref().is_some_and(FaultHandle::on_fsync) {
                // The log stays dirty: a later sync retries for real.
                return Err(fault::injected("fsync failure"));
            }
            self.file.sync_data()?;
            self.dirty = false;
            obs::metrics().counter("store.wal.fsyncs").incr(1);
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Closes the current segment (synced regardless of policy) and
    /// starts the next one.
    fn rotate(&mut self) -> io::Result<()> {
        if self.faults.as_ref().is_some_and(FaultHandle::on_rotate) {
            // Fails before the old segment is closed or the new file
            // exists, so the log keeps appending to the current segment
            // once the caller retries.
            return Err(fault::injected("rotate failure"));
        }
        self.sync()?;
        let path = segment_path(&self.dir, self.next_index);
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .append(true)
            .open(&path)?;
        file.write_all(SEGMENT_MAGIC)?;
        file.sync_data()?;
        self.file = file;
        self.segment_start = self.next_index;
        self.segment_len = SEGMENT_MAGIC.len() as u64;
        obs::metrics().counter("store.wal.rotations").incr(1);
        self.update_segment_gauge()?;
        Ok(())
    }

    /// Removes every segment whose records all fall below `upto` (the
    /// first index **not** covered by the last checkpoint). The active
    /// segment is never removed. Returns how many files were deleted.
    pub fn compact(&mut self, upto: u64) -> io::Result<usize> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0usize;
        for window in segments.windows(2) {
            let (start, ref path) = window[0];
            let (next_start, _) = window[1];
            if start < self.segment_start && next_start <= upto {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            obs::metrics()
                .counter("store.wal.compacted_segments")
                .incr(removed as u64);
            self.update_segment_gauge()?;
        }
        Ok(removed)
    }

    /// Where the log stands right now — take one before the first
    /// append of a batch so a mid-batch failure can be unwound with
    /// [`Wal::rollback_to`].
    pub fn mark(&self) -> BatchMark {
        BatchMark {
            segment_start: self.segment_start,
            segment_len: self.segment_len,
            next_index: self.next_index,
        }
    }

    /// Unwinds every byte appended since `mark` — the partially written
    /// batch a client was never acked for must not be resurrected by a
    /// later replay. Segments created after the mark are deleted, the
    /// marked segment is truncated back to its marked length, and the
    /// truncation is fsynced before returning. Returns the bytes
    /// removed from the marked segment.
    pub fn rollback_to(&mut self, mark: &BatchMark) -> io::Result<u64> {
        if mark.segment_start != self.segment_start {
            // The batch crossed one or more rotations: drop the newer
            // segments wholesale and resume the marked one.
            for (start, path) in list_segments(&self.dir)? {
                if start > mark.segment_start {
                    fs::remove_file(&path)?;
                }
            }
            let path = segment_path(&self.dir, mark.segment_start);
            self.file = OpenOptions::new().read(true).append(true).open(&path)?;
            self.segment_start = mark.segment_start;
            self.segment_len = self.file.metadata()?.len();
            self.update_segment_gauge()?;
        }
        let removed = self.segment_len.saturating_sub(mark.segment_len);
        self.file.set_len(mark.segment_len)?;
        // Syncs the truncation (and, as a side effect, every surviving
        // record in the file) directly — the armed fsync failpoint is
        // deliberately bypassed so a rollback cannot be re-injected.
        self.file.sync_data()?;
        self.segment_len = mark.segment_len;
        self.next_index = mark.next_index;
        self.dirty = false;
        self.last_sync = Instant::now();
        obs::metrics()
            .counter("store.wal.rollback_bytes")
            .incr(removed);
        Ok(removed)
    }

    fn update_segment_gauge(&self) -> io::Result<()> {
        let count = list_segments(&self.dir)?.len();
        obs::metrics().gauge("store.wal.segments").set(count as f64);
        Ok(())
    }

    /// Drops the log without flushing anything buffered in the OS —
    /// test/demo hook for simulating a crash at the process boundary.
    /// (Appends go straight to the file, so this mainly skips the final
    /// policy-driven fsync.)
    pub fn abandon(self) {
        std::mem::forget(self.file);
    }
}

/// Replays one segment into `replay`; returns how many records it held.
/// Torn or corrupt tails are truncated in the final segment and are
/// errors anywhere else.
fn replay_segment(path: &Path, start: u64, is_last: bool, replay: &mut Replay) -> io::Result<u64> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;

    // A segment cut before (or inside) its magic holds no records; the
    // torn bytes are trimmed like any other torn tail.
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        if bytes.len() >= SEGMENT_MAGIC.len() {
            return Err(corrupt(format!(
                "{} does not start with the WAL segment magic — not a viralcast log",
                path.display()
            )));
        }
        if !is_last {
            return Err(corrupt(format!(
                "non-final segment {} is cut inside its header",
                path.display()
            )));
        }
        replay.truncated_bytes += bytes.len() as u64;
        truncate_to(path, 0)?;
        return Ok(0);
    }

    let mut pos = SEGMENT_MAGIC.len();
    let mut count = 0u64;
    loop {
        match codec::read_frame(&bytes, pos) {
            FrameRead::End => break,
            FrameRead::Complete { payload, consumed } => match codec::decode_cascade(payload) {
                Ok(cascade) => {
                    replay.records.push(SequencedCascade {
                        index: start + count,
                        cascade,
                    });
                    pos += consumed;
                    count += 1;
                }
                // A frame whose CRC matched but whose payload is not a
                // cascade was never written by this codec: corruption.
                Err(e) => {
                    return truncate_tail(
                        path,
                        pos,
                        bytes.len(),
                        is_last,
                        replay,
                        format!("undecodable record: {e}"),
                    )
                    .map(|()| count)
                }
            },
            FrameRead::Torn => {
                return truncate_tail(
                    path,
                    pos,
                    bytes.len(),
                    is_last,
                    replay,
                    "torn record".into(),
                )
                .map(|()| count)
            }
            FrameRead::Corrupt => {
                return truncate_tail(
                    path,
                    pos,
                    bytes.len(),
                    is_last,
                    replay,
                    "CRC mismatch".into(),
                )
                .map(|()| count)
            }
        }
    }
    Ok(count)
}

/// Handles a damaged tail at byte `pos`: truncate in the final segment,
/// refuse anywhere else.
fn truncate_tail(
    path: &Path,
    pos: usize,
    len: usize,
    is_last: bool,
    replay: &mut Replay,
    why: String,
) -> io::Result<()> {
    if !is_last {
        return Err(corrupt(format!(
            "{} at byte {pos} of non-final segment {}: later records exist, \
             refusing to silently drop them",
            why,
            path.display()
        )));
    }
    let cut = (len - pos) as u64;
    obs::warn(
        "store.wal",
        &format!(
            "{} at byte {pos} of {}: truncating {cut} torn byte(s)",
            why,
            path.display()
        ),
        &[],
    );
    replay.truncated_bytes += cut;
    truncate_to(path, pos as u64)
}

fn truncate_to(path: &Path, len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_propagation::Infection;

    fn cascade(seed: u32) -> Cascade {
        Cascade::new(vec![
            Infection::new(seed, 0.0),
            Infection::new(seed + 1, 1.0),
        ])
        .unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "viralcast-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            assert!(replay.records.is_empty());
            for i in 0..5u32 {
                assert_eq!(wal.append(&cascade(i * 10)).unwrap(), i as u64);
            }
            wal.commit().unwrap();
        }
        let (wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.truncated_bytes, 0);
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.index, i as u64);
            assert_eq!(rec.cascade.seed().node.0, i as u32 * 10);
        }
        assert_eq!(wal.next_index(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = tmp_dir("rotate");
        let options = WalOptions {
            segment_bytes: 64, // tiny: a record is 8 + 4 + 24 = 36 bytes
            fsync: FsyncPolicy::OnRotate,
        };
        {
            let (mut wal, _) = Wal::open(&dir, options, 0).unwrap();
            for i in 0..6u32 {
                wal.append(&cascade(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "expected rotations, got {segments:?}");
        let (_, replay) = Wal::open(&dir, options, 0).unwrap();
        assert_eq!(replay.records.len(), 6);
        assert_eq!(replay.records[5].index, 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            for i in 0..3u32 {
                wal.append(&cascade(i)).unwrap();
            }
            wal.commit().unwrap();
        }
        // Tear the last record by cutting 5 bytes off the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        truncate_to(&path, len - 5).unwrap();

        let (mut wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.truncated_bytes > 0);
        // The log is whole again: index 2 is reassigned to the next append.
        assert_eq!(wal.append(&cascade(99)).unwrap(), 2);
        wal.commit().unwrap();
        let (_, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[2].cascade.seed().node.0, 99);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_a_non_final_segment_is_refused() {
        let dir = tmp_dir("midcorrupt");
        let options = WalOptions {
            segment_bytes: 64,
            fsync: FsyncPolicy::OnRotate,
        };
        {
            let (mut wal, _) = Wal::open(&dir, options, 0).unwrap();
            for i in 0..6u32 {
                wal.append(&cascade(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 2);
        // Flip a payload byte in the first segment.
        let (_, first) = &segments[0];
        let mut bytes = fs::read(first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(first, &bytes).unwrap();
        let err = Wal::open(&dir, options, 0).unwrap_err();
        assert!(err.to_string().contains("non-final"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_removes_covered_segments_only() {
        let dir = tmp_dir("compact");
        let options = WalOptions {
            segment_bytes: 64,
            fsync: FsyncPolicy::OnRotate,
        };
        let (mut wal, _) = Wal::open(&dir, options, 0).unwrap();
        for i in 0..9u32 {
            wal.append(&cascade(i)).unwrap();
        }
        wal.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        assert!(before >= 3);
        // Nothing below offset 0 → nothing removed.
        assert_eq!(wal.compact(0).unwrap(), 0);
        // Everything is covered → all but the active segment removed.
        let removed = wal.compact(wal.next_index()).unwrap();
        assert_eq!(removed, before - 1);
        // Replay still yields the active segment's records, contiguous.
        drop(wal);
        let (_, replay) = Wal::open(&dir, options, 0).unwrap();
        assert!(!replay.records.is_empty());
        assert_eq!(replay.records.last().unwrap().index, 8);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_starts_at_the_base_index() {
        let dir = tmp_dir("base");
        let (mut wal, replay) = Wal::open(&dir, WalOptions::default(), 42).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(wal.next_index(), 42);
        assert_eq!(wal.append(&cascade(0)).unwrap(), 42);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("rotate"), Ok(FsyncPolicy::OnRotate));
        assert_eq!(
            FsyncPolicy::parse("interval:50"),
            Ok(FsyncPolicy::Interval(Duration::from_millis(50)))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:x").is_err());
    }
}
