//! Checkpoints: atomically persisted model snapshots plus the manifest
//! tying each snapshot to the WAL offset it covers.
//!
//! A checkpoint is two files in the data directory:
//!
//! * `checkpoint-<version>.bin` — the model in the store's own binary
//!   format: an 8-byte magic followed by one CRC-framed record holding
//!   the backend's own payload ([`CascadeModel::encode`]; for the
//!   default embed backend that is `[u32 LE n][u32 LE k]`, then `n·k`
//!   influence and `n·k` selectivity entries as `u64 LE` f64 bits),
//!   written atomically via [`atomic_write`];
//! * `manifest` — a tiny line-oriented text file naming the snapshot
//!   version, the model file, the backend that wrote it, and
//!   `wal_offset`, the first WAL record index **not** folded into this
//!   snapshot.
//!
//! The manifest is the commit point: it is written to a temp file,
//! fsynced, and renamed over the old manifest, so recovery always sees
//! either the previous checkpoint or the new one, never a mix. Only
//! after the manifest lands are stale `checkpoint-*` files deleted
//! and WAL segments below `wal_offset` eligible for compaction.
//!
//! Neither format is JSON: the store crate hand rolls its I/O (like obs
//! and serve), the manifest is a few `key=value` lines needing no parser
//! worth depending on, and the model file reuses the WAL's frame codec
//! so a bit-flipped checkpoint is detected at load rather than silently
//! served.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use viralcast_embed::Embeddings;
use viralcast_model::{CascadeModel, EmbeddingBackend};

use crate::codec::{frame, read_frame, FrameRead};

/// First line of every manifest file.
pub const MANIFEST_FORMAT: &str = "viralcast-manifest-v1";

/// File name of the manifest inside a data directory.
pub const MANIFEST_FILE: &str = "manifest";

/// The durable record of the latest checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Snapshot version the checkpointed embeddings were published as.
    pub snapshot_version: u64,
    /// First WAL record index not covered by this checkpoint: records
    /// `< wal_offset` are baked into the snapshot, records `>=` must be
    /// replayed into the trainer on boot.
    pub wal_offset: u64,
    /// Embeddings file name (relative to the data directory).
    pub embeddings_file: String,
    /// Backend that encoded the checkpoint payload (a
    /// [`CascadeModel::backend_id`]). Manifests written before the
    /// backend split carry no `backend` line and parse as `"embed"`.
    pub backend: String,
}

impl Manifest {
    fn render(&self) -> String {
        format!(
            "{MANIFEST_FORMAT}\nsnapshot_version={}\nwal_offset={}\nembeddings_file={}\nbackend={}\n",
            self.snapshot_version, self.wal_offset, self.embeddings_file, self.backend
        )
    }

    fn parse(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_FORMAT) => {}
            Some(other) => return Err(format!("format tag {other:?} != {MANIFEST_FORMAT:?}")),
            None => return Err("empty manifest".into()),
        }
        let mut version = None;
        let mut offset = None;
        let mut file = None;
        let mut backend = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed line {line:?}"))?;
            match key {
                "snapshot_version" => {
                    version = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad version {value:?}"))?,
                    )
                }
                "wal_offset" => {
                    offset = Some(value.parse().map_err(|_| format!("bad offset {value:?}"))?)
                }
                "embeddings_file" => file = Some(value.to_string()),
                "backend" => backend = Some(value.to_string()),
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(Manifest {
            snapshot_version: version.ok_or("missing snapshot_version")?,
            wal_offset: offset.ok_or("missing wal_offset")?,
            embeddings_file: file.ok_or("missing embeddings_file")?,
            backend: backend.unwrap_or_else(|| EmbeddingBackend::ID.to_string()),
        })
    }

    /// Loads the manifest from `dir`, `Ok(None)` when none exists yet.
    pub fn load(dir: &Path) -> io::Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_FILE);
        let mut text = String::new();
        match File::open(&path) {
            Ok(mut f) => f.read_to_string(&mut text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Manifest::parse(&text).map(Some).map_err(|m| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid manifest {}: {m}", path.display()),
            )
        })
    }

    /// Atomically replaces the manifest in `dir` with `self`.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        atomic_write(&dir.join(MANIFEST_FILE), self.render().as_bytes())
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target. A crash at any point leaves either the
/// old file or the new one, never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_sibling(path);
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself (the directory entry) where possible;
    // failure here (e.g. exotic filesystems) degrades durability, not
    // correctness, so it is not fatal.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// The temp-file path `atomic_write` stages through: a dot-prefixed
/// sibling so the rename never crosses filesystems.
pub fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic");
    path.with_file_name(format!(".{name}.tmp"))
}

/// Name of the embeddings file a checkpoint of `version` writes.
pub fn checkpoint_file_name(version: u64) -> String {
    format!("checkpoint-{version}.bin")
}

/// First 8 bytes of every checkpoint model file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"VCCKPT01";

/// Serialises a model into the checkpoint file format: the magic
/// followed by one CRC-framed record of the backend's payload.
pub fn encode_model(model: &dyn CascadeModel) -> Vec<u8> {
    let payload = model.encode();
    let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + 8 + payload.len());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&frame(&payload));
    out
}

/// Unwraps the magic + CRC frame of a checkpoint file, returning the
/// backend payload inside.
fn unwrap_checkpoint(bytes: &[u8]) -> Result<Vec<u8>, String> {
    let rest = bytes
        .strip_prefix(CHECKPOINT_MAGIC.as_slice())
        .ok_or("missing checkpoint magic")?;
    match read_frame(rest, 0) {
        FrameRead::Complete { payload, consumed } if consumed == rest.len() => Ok(payload.to_vec()),
        FrameRead::Complete { .. } => Err("trailing bytes after the record".into()),
        FrameRead::Torn => Err("truncated checkpoint record".into()),
        FrameRead::Corrupt => Err("checkpoint record failed its CRC".into()),
        FrameRead::End => Err("empty checkpoint record".into()),
    }
}

/// Decodes a checkpoint file through the backend registry, dispatching
/// on the `backend` id the manifest recorded next to the file name.
pub fn decode_checkpoint(bytes: &[u8], backend: &str) -> Result<Arc<dyn CascadeModel>, String> {
    viralcast_model::decode_model(backend, &unwrap_checkpoint(bytes)?)
}

/// Serialises embeddings into the checkpoint file format — the embed
/// backend's special case of [`encode_model`], kept for callers that
/// hold a bare [`Embeddings`].
pub fn encode_embeddings(embeddings: &Embeddings) -> Vec<u8> {
    encode_model(&EmbeddingBackend::new(embeddings.clone()))
}

/// Decodes a checkpoint file previously written by [`encode_embeddings`]
/// (or by [`encode_model`] on the embed backend).
pub fn decode_embeddings(bytes: &[u8]) -> Result<Embeddings, String> {
    EmbeddingBackend::decode(&unwrap_checkpoint(bytes)?).map(|b| b.embeddings().clone())
}

/// Loads the checkpointed embeddings file at `path` (embed backend
/// only; see [`load_model_checkpoint`] for the registry-dispatched
/// path).
pub fn load_checkpoint(path: &Path) -> io::Result<Embeddings> {
    let bytes = fs::read(path)?;
    decode_embeddings(&bytes).map_err(|m| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid checkpoint {}: {m}", path.display()),
        )
    })
}

/// Loads the checkpointed model file at `path`, decoding it with the
/// backend the manifest named.
pub fn load_model_checkpoint(path: &Path, backend: &str) -> io::Result<Arc<dyn CascadeModel>> {
    let bytes = fs::read(path)?;
    decode_checkpoint(&bytes, backend).map_err(|m| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid checkpoint {}: {m}", path.display()),
        )
    })
}

/// Persists a checkpoint: the model first, then the manifest commit
/// point, then garbage-collects superseded `checkpoint-*` files.
pub fn save_checkpoint(
    dir: &Path,
    version: u64,
    wal_offset: u64,
    model: &dyn CascadeModel,
) -> io::Result<Manifest> {
    let file_name = checkpoint_file_name(version);
    atomic_write(&dir.join(&file_name), &encode_model(model))?;
    let manifest = Manifest {
        snapshot_version: version,
        wal_offset,
        embeddings_file: file_name.clone(),
        backend: model.backend_id().to_string(),
    };
    manifest.save(dir)?;
    // Stale checkpoints are unreferenced once the manifest points at the
    // new one; failing to unlink them wastes disk but breaks nothing.
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("checkpoint-") && name != file_name {
            let _ = fs::remove_file(&path);
        }
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "viralcast-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trip() {
        let dir = tmp_dir("manifest");
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let m = Manifest {
            snapshot_version: 7,
            wal_offset: 123,
            embeddings_file: "checkpoint-7.bin".into(),
            backend: "netinf".into(),
        };
        m.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifests_without_a_backend_line_default_to_embed() {
        // Written before the backend split: three key=value lines only.
        let m = Manifest::parse(
            "viralcast-manifest-v1\nsnapshot_version=3\nwal_offset=9\nembeddings_file=checkpoint-3.bin\n",
        )
        .unwrap();
        assert_eq!(m.backend, "embed");
        assert_eq!(m.snapshot_version, 3);
    }

    #[test]
    fn manifest_rejects_garbage() {
        for bad in [
            "",
            "something-else\nsnapshot_version=1\nwal_offset=0\nembeddings_file=x",
            "viralcast-manifest-v1\nsnapshot_version=abc\nwal_offset=0\nembeddings_file=x",
            "viralcast-manifest-v1\nwal_offset=0\nembeddings_file=x",
            "viralcast-manifest-v1\nno equals sign",
        ] {
            assert!(Manifest::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn save_checkpoint_replaces_and_garbage_collects() {
        let dir = tmp_dir("gc");
        let emb = Embeddings::from_matrices(2, 1, vec![0.1, 0.2], vec![0.3, 0.4]);
        let model = EmbeddingBackend::new(emb.clone());
        save_checkpoint(&dir, 2, 10, &model).unwrap();
        save_checkpoint(&dir, 5, 40, &model).unwrap();
        let manifest = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(manifest.snapshot_version, 5);
        assert_eq!(manifest.wal_offset, 40);
        assert_eq!(manifest.backend, "embed");
        assert!(dir.join("checkpoint-5.bin").exists());
        assert!(!dir.join("checkpoint-2.bin").exists(), "stale kept");
        let back = load_checkpoint(&dir.join(&manifest.embeddings_file)).unwrap();
        assert!(emb.max_abs_diff(&back) < 1e-12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_checkpoints_round_trip_any_backend() {
        use viralcast_propagation::{Cascade, CascadeSet, Infection};
        let dir = tmp_dir("netinf");
        let corpus = CascadeSet::new(
            3,
            vec![Cascade::new(vec![Infection::new(0u32, 0.0), Infection::new(1u32, 0.4)]).unwrap()],
        );
        let model = viralcast_model::NetInfBackend::fit(&corpus, Default::default());
        let manifest = save_checkpoint(&dir, 4, 7, &model).unwrap();
        assert_eq!(manifest.backend, "netinf");
        let back =
            load_model_checkpoint(&dir.join(&manifest.embeddings_file), &manifest.backend).unwrap();
        assert_eq!(back.backend_id(), "netinf");
        assert_eq!(back.node_count(), 3);
        // The embed-only loader refuses a netinf checkpoint payload.
        assert!(load_checkpoint(&dir.join(&manifest.embeddings_file)).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn embeddings_codec_round_trips_exactly() {
        let emb = Embeddings::from_matrices(
            3,
            2,
            vec![0.5, -1.25, 0.0, f64::MIN_POSITIVE, 1e300, 7.75],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        );
        let bytes = encode_embeddings(&emb);
        let back = decode_embeddings(&bytes).unwrap();
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.topic_count(), 2);
        assert_eq!(back.influence_matrix(), emb.influence_matrix());
        assert_eq!(back.selectivity_matrix(), emb.selectivity_matrix());
    }

    #[test]
    fn embeddings_codec_rejects_corruption() {
        let emb = Embeddings::from_matrices(2, 1, vec![0.1, 0.2], vec![0.3, 0.4]);
        let good = encode_embeddings(&emb);
        assert!(decode_embeddings(b"not a checkpoint").is_err());
        // Every strict prefix fails cleanly rather than panicking.
        for cut in 0..good.len() {
            assert!(decode_embeddings(&good[..cut]).is_err(), "cut {cut}");
        }
        // A flipped matrix bit fails the CRC.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(decode_embeddings(&flipped).unwrap_err().contains("CRC"));
        // A shape lie with matching CRC still fails the cell count.
        let mut payload = vec![9u8, 0, 0, 0, 1, 0, 0, 0];
        payload.extend_from_slice(&[0u8; 16]);
        let mut lied = CHECKPOINT_MAGIC.to_vec();
        lied.extend_from_slice(&frame(&payload));
        assert!(decode_embeddings(&lied).unwrap_err().contains("disagrees"));
    }

    #[test]
    fn atomic_write_survives_a_stale_temp_file() {
        let dir = tmp_dir("stale");
        let target = dir.join("file.txt");
        // A previous crash left a partial temp behind.
        fs::write(temp_sibling(&target), b"partial garbage").unwrap();
        atomic_write(&target, b"good").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"good");
        assert!(!temp_sibling(&target).exists());
        fs::remove_dir_all(&dir).ok();
    }
}
