//! Injectable I/O failpoints for the durability layer.
//!
//! Recovery code that is only exercised by real crashes is recovery code
//! that is hoped-for, not tested. A [`FaultPlan`] arms deterministic
//! faults on the WAL's I/O paths — short writes, torn (CRC-corrupt)
//! records, fsync failures, rotation failures, and checkpoint failures —
//! each firing at the Nth operation of its class. Every injected fault
//! surfaces as a typed [`std::io::Error`] whose message starts with
//! `injected fault:`; nothing in this crate panics on one.
//!
//! Plans are armed through [`crate::wal::Wal::arm_faults`] or
//! [`crate::EventStore::arm_faults`], which return a [`FaultHandle`] the
//! test keeps to ask how many faults actually fired. Each armed fault is
//! one-shot: after it fires, the same operation succeeds again, so tests
//! can drive the store through fault → recovery → resumed service.

use std::io;
use std::sync::{Arc, Mutex};

/// The fault classes a plan can arm. `ShortWrite` and `TornRecord`
/// count *append* operations; the others count their own class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The targeted append writes only a strict prefix of its frame and
    /// then fails — the crash signature torn-tail recovery truncates.
    ShortWrite,
    /// The targeted append writes the full frame with its trailing CRC
    /// bytes corrupted and then fails — bit-rot / interrupted-overwrite
    /// damage that replay must detect by checksum.
    TornRecord,
    /// The targeted fsync fails without syncing; appended bytes stay in
    /// the page cache and the log stays dirty.
    FsyncFail,
    /// The targeted segment rotation fails before the new segment file
    /// is created.
    RotateFail,
    /// The targeted [`crate::EventStore::checkpoint`] fails before
    /// writing anything.
    CheckpointFail,
}

impl FaultKind {
    fn counter(self) -> OpClass {
        match self {
            FaultKind::ShortWrite | FaultKind::TornRecord => OpClass::Append,
            FaultKind::FsyncFail => OpClass::Fsync,
            FaultKind::RotateFail => OpClass::Rotate,
            FaultKind::CheckpointFail => OpClass::Checkpoint,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Append,
    Fsync,
    Rotate,
    Checkpoint,
}

#[derive(Debug)]
struct Armed {
    kind: FaultKind,
    /// 1-based ordinal of the operation (within its class, counted from
    /// when the plan was armed) this fault fires at.
    at: u64,
    fired: bool,
}

/// A deterministic schedule of I/O faults. Build one with
/// [`FaultPlan::new`] + [`FaultPlan::fail`], then arm it on a
/// [`crate::wal::Wal`] or [`crate::EventStore`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: Vec<Armed>,
    appends: u64,
    fsyncs: u64,
    rotations: u64,
    checkpoints: u64,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms `kind` to fire at the `nth` (1-based) operation of its
    /// class. Arming the same class twice is fine; each arm is one-shot.
    pub fn fail(mut self, kind: FaultKind, nth: u64) -> FaultPlan {
        assert!(nth >= 1, "fault ordinals are 1-based");
        self.arms.push(Armed {
            kind,
            at: nth,
            fired: false,
        });
        self
    }

    /// How many armed faults have fired so far.
    pub fn fired(&self) -> usize {
        self.arms.iter().filter(|a| a.fired).count()
    }

    /// How many armed faults have not fired yet.
    pub fn pending(&self) -> usize {
        self.arms.iter().filter(|a| !a.fired).count()
    }

    fn trip(&mut self, class: OpClass) -> Option<FaultKind> {
        let count = match class {
            OpClass::Append => {
                self.appends += 1;
                self.appends
            }
            OpClass::Fsync => {
                self.fsyncs += 1;
                self.fsyncs
            }
            OpClass::Rotate => {
                self.rotations += 1;
                self.rotations
            }
            OpClass::Checkpoint => {
                self.checkpoints += 1;
                self.checkpoints
            }
        };
        let arm = self
            .arms
            .iter_mut()
            .find(|a| !a.fired && a.kind.counter() == class && a.at == count)?;
        arm.fired = true;
        Some(arm.kind)
    }
}

/// A shared handle to an armed plan; the arming call returns it so tests
/// can keep querying [`FaultPlan::fired`] while the store owns the plan.
#[derive(Clone, Debug, Default)]
pub struct FaultHandle(Arc<Mutex<FaultPlan>>);

impl FaultHandle {
    pub(crate) fn arm(plan: FaultPlan) -> FaultHandle {
        FaultHandle(Arc::new(Mutex::new(plan)))
    }

    /// How many armed faults have fired so far.
    pub fn fired(&self) -> usize {
        self.lock().fired()
    }

    /// How many armed faults have not fired yet.
    pub fn pending(&self) -> usize {
        self.lock().pending()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn on_append(&self) -> Option<FaultKind> {
        self.lock().trip(OpClass::Append)
    }

    pub(crate) fn on_fsync(&self) -> bool {
        self.lock().trip(OpClass::Fsync).is_some()
    }

    pub(crate) fn on_rotate(&self) -> bool {
        self.lock().trip(OpClass::Rotate).is_some()
    }

    pub(crate) fn on_checkpoint(&self) -> bool {
        self.lock().trip(OpClass::Checkpoint).is_some()
    }
}

/// Prefix every injected error carries, so tests (and operators reading
/// logs from a chaos run) can tell injected faults from real ones.
pub const INJECTED_PREFIX: &str = "injected fault";

/// Builds the typed error an injected fault surfaces as.
pub(crate) fn injected(what: &str) -> io::Error {
    io::Error::other(format!("{INJECTED_PREFIX}: {what}"))
}

/// Whether `err` (or its message) came from an injected fault.
pub fn is_injected(err: &io::Error) -> bool {
    err.to_string().contains(INJECTED_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_at_their_ordinal_once() {
        let handle = FaultHandle::arm(
            FaultPlan::new()
                .fail(FaultKind::ShortWrite, 2)
                .fail(FaultKind::FsyncFail, 1),
        );
        assert_eq!(handle.on_append(), None); // append #1
        assert_eq!(handle.on_append(), Some(FaultKind::ShortWrite)); // #2
        assert_eq!(handle.on_append(), None); // one-shot
        assert!(handle.on_fsync()); // fsync #1
        assert!(!handle.on_fsync());
        assert_eq!(handle.fired(), 2);
        assert_eq!(handle.pending(), 0);
    }

    #[test]
    fn classes_count_independently() {
        let handle = FaultHandle::arm(
            FaultPlan::new()
                .fail(FaultKind::TornRecord, 1)
                .fail(FaultKind::RotateFail, 1)
                .fail(FaultKind::CheckpointFail, 1),
        );
        assert!(handle.on_rotate());
        assert_eq!(handle.on_append(), Some(FaultKind::TornRecord));
        assert!(handle.on_checkpoint());
        assert_eq!(handle.fired(), 3);
    }

    #[test]
    fn injected_errors_are_recognizable() {
        let err = injected("short write");
        assert!(is_injected(&err));
        assert!(err.to_string().contains("short write"));
        assert!(!is_injected(&io::Error::other("disk on fire")));
    }
}
