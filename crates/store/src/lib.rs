//! `viralcast-store` — the durability layer under the online pipeline:
//! an append-only write-ahead log for ingested cascades plus atomically
//! checkpointed model snapshots, so a crash or restart loses no acked
//! event and resumes the same snapshot lineage.
//!
//! Layering, bottom to top:
//!
//! - [`crc32`] — the IEEE CRC-32 every record frame is checksummed with;
//! - [`codec`] — length-prefixed, CRC-framed binary records holding
//!   fixed-width cascade payloads;
//! - [`wal`] — segment files, rotation, fsync policy, torn-tail
//!   recovery, and prefix compaction;
//! - [`checkpoint`] — atomic snapshot persistence (temp + fsync +
//!   rename) and the manifest tying a snapshot version to the WAL
//!   offset it covers;
//! - [`EventStore`] — the composition the daemon uses: one data
//!   directory holding the log, the latest checkpoint, and the
//!   manifest, opened with full crash recovery.
//!
//! Like `viralcast-obs` and `viralcast-serve`, this crate takes no
//! dependencies outside the workspace and the standard library.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc32;
pub mod fault;
pub mod wal;

pub use checkpoint::{
    atomic_write, decode_checkpoint, decode_embeddings, encode_embeddings, encode_model,
    load_checkpoint, load_model_checkpoint, save_checkpoint, Manifest,
};
pub use codec::{CodecError, FrameRead};
pub use fault::{FaultHandle, FaultKind, FaultPlan};
pub use wal::{BatchMark, FsyncPolicy, Replay, SequencedCascade, Wal, WalOptions};

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
pub use viralcast_model::{self as model, CascadeModel};
use viralcast_obs as obs;
use viralcast_propagation::Cascade;

/// What [`EventStore::open`] reconstructed from a data directory.
#[derive(Debug)]
pub struct Recovery {
    /// The last committed checkpoint, if any.
    pub manifest: Option<Manifest>,
    /// The checkpointed model (present iff `manifest` is), decoded by
    /// the backend the manifest named.
    pub model: Option<Arc<dyn CascadeModel>>,
    /// Replayed cascades **not** covered by the checkpoint, in log
    /// order: the acked-but-untrained tail the caller must feed back
    /// into its pipeline.
    pub pending: Vec<Cascade>,
    /// Total intact WAL records replayed (including checkpointed ones
    /// whose segments have not been compacted yet).
    pub replayed: usize,
    /// Bytes truncated from a torn final segment.
    pub truncated_bytes: u64,
}

impl Recovery {
    /// Snapshot version to resume at (1 when no checkpoint exists).
    pub fn snapshot_version(&self) -> u64 {
        self.manifest.as_ref().map_or(1, |m| m.snapshot_version)
    }
}

/// One data directory: the WAL, the latest checkpoint, the manifest.
///
/// The store is single-writer: callers that share it across threads
/// wrap it in a `Mutex` and hold the lock across any sequence that must
/// stay consistent with the log (the serve crate holds it across
/// "append to WAL, then hand to the trainer's buffer", and across
/// "drain the buffer, then read the covered offset").
#[derive(Debug)]
pub struct EventStore {
    dir: PathBuf,
    wal: Wal,
    /// First record index **not** covered by the latest checkpoint —
    /// everything in `[checkpoint_offset, next_index)` is durable but
    /// not yet folded into a snapshot.
    checkpoint_offset: u64,
}

impl EventStore {
    /// Opens (or creates) the store in `dir`: loads the manifest and its
    /// checkpointed model (decoded by the backend the manifest names),
    /// replays every intact WAL record, and truncates a torn final
    /// segment. A manifest that names a missing or unreadable checkpoint
    /// file is an error — that is corruption, not a cold start.
    pub fn open(dir: &Path, options: WalOptions) -> io::Result<(EventStore, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let manifest = Manifest::load(dir)?;
        let model = match &manifest {
            Some(m) => Some(
                checkpoint::load_model_checkpoint(&dir.join(&m.embeddings_file), &m.backend)
                    .map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "manifest names checkpoint {} but it cannot be loaded: {e}",
                                m.embeddings_file
                            ),
                        )
                    })?,
            ),
            None => None,
        };
        let offset = manifest.as_ref().map_or(0, |m| m.wal_offset);
        let (wal, replay) = Wal::open(dir, options, offset)?;
        let pending = replay
            .records
            .iter()
            .filter(|r| r.index >= offset)
            .map(|r| r.cascade.clone())
            .collect();
        let recovery = Recovery {
            manifest,
            model,
            pending,
            replayed: replay.records.len(),
            truncated_bytes: replay.truncated_bytes,
        };
        obs::info(
            "store",
            &format!(
                "opened {}: {} record(s) replayed, {} pending, checkpoint v{}",
                dir.display(),
                recovery.replayed,
                recovery.pending.len(),
                recovery.snapshot_version(),
            ),
            &[],
        );
        let store = EventStore {
            dir: dir.to_path_buf(),
            wal,
            checkpoint_offset: offset,
        };
        store.set_pending_gauge();
        Ok((store, recovery))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index the next appended record will get — also the exclusive
    /// upper bound of everything durable so far.
    pub fn next_index(&self) -> u64 {
        self.wal.next_index()
    }

    /// Durable records not yet folded into a checkpointed snapshot —
    /// the WAL lag a dashboard watches to see the trainer falling
    /// behind ingest.
    pub fn pending_records(&self) -> u64 {
        self.wal.next_index().saturating_sub(self.checkpoint_offset)
    }

    fn set_pending_gauge(&self) {
        obs::metrics()
            .gauge("store.wal.pending_records")
            .set(self.pending_records() as f64);
    }

    /// Arms an injectable [`fault::FaultPlan`] on the store's I/O paths
    /// (WAL appends/fsyncs/rotations and checkpoints), returning the
    /// handle that reports how many faults fired.
    pub fn arm_faults(&mut self, plan: FaultPlan) -> FaultHandle {
        self.wal.arm_faults(plan)
    }

    /// Appends a batch and commits it under the fsync policy. Once this
    /// returns, the batch is as durable as the policy promises and the
    /// caller may ack it.
    ///
    /// On failure the partially appended batch is rolled back out of the
    /// log before the error is returned: the caller will NACK the whole
    /// batch, so none of its records may survive to be replayed as if
    /// they had been acked. If the rollback itself fails, the error says
    /// so — recovery's torn-tail truncation is then the backstop.
    pub fn append_batch(&mut self, cascades: &[Cascade]) -> io::Result<u64> {
        let mark = self.wal.mark();
        let mut failure = None;
        for cascade in cascades {
            if let Err(e) = self.wal.append(cascade) {
                failure = Some(e);
                break;
            }
        }
        let failure = match failure {
            None => self.wal.commit().err(),
            failed => failed,
        };
        if let Some(e) = failure {
            let outcome = self.wal.rollback_to(&mark);
            self.set_pending_gauge();
            return match outcome {
                Ok(removed) => {
                    obs::metrics()
                        .counter("store.wal.rolled_back_batches")
                        .incr(1);
                    obs::warn(
                        "store",
                        &format!(
                            "append batch failed ({e}); rolled back {removed} unacked byte(s)"
                        ),
                        &[],
                    );
                    Err(e)
                }
                Err(rb) => Err(io::Error::new(
                    e.kind(),
                    format!(
                        "{e}; rollback of the unacked batch also failed: {rb} \
                         (recovery will truncate any torn tail)"
                    ),
                )),
            };
        }
        self.set_pending_gauge();
        Ok(self.wal.next_index())
    }

    /// Forces an fsync regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Persists a checkpoint — the model atomically, then the manifest
    /// commit point — and garbage-collects WAL segments wholly below
    /// `wal_offset` (the first record index **not** folded into the
    /// snapshot).
    pub fn checkpoint(
        &mut self,
        snapshot_version: u64,
        wal_offset: u64,
        model: &dyn CascadeModel,
    ) -> io::Result<Manifest> {
        if self.wal.fault_on_checkpoint() {
            return Err(fault::injected("checkpoint failure"));
        }
        let manifest = save_checkpoint(&self.dir, snapshot_version, wal_offset, model)?;
        self.wal.compact(wal_offset)?;
        self.checkpoint_offset = self.checkpoint_offset.max(wal_offset);
        self.set_pending_gauge();
        obs::metrics().counter("store.checkpoint.saves").incr(1);
        obs::metrics()
            .gauge("store.checkpoint.wal_offset")
            .set(wal_offset as f64);
        obs::metrics()
            .gauge("store.checkpoint.snapshot_version")
            .set(snapshot_version as f64);
        Ok(manifest)
    }

    /// Drops the store without the final policy-driven fsync — a
    /// test/demo hook simulating a crash at the process boundary.
    pub fn abandon(self) {
        self.wal.abandon();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_propagation::Infection;

    fn cascade(seed: u32) -> Cascade {
        Cascade::new(vec![
            Infection::new(seed, 0.0),
            Infection::new(seed + 1, 1.0),
        ])
        .unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "viralcast-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn emb(seed: f64) -> viralcast_model::EmbeddingBackend {
        viralcast_model::EmbeddingBackend::new(viralcast_embed::Embeddings::from_matrices(
            4,
            1,
            vec![seed; 4],
            vec![seed; 4],
        ))
    }

    #[test]
    fn cold_start_is_empty() {
        let dir = tmp_dir("cold");
        let (store, recovery) = EventStore::open(&dir, WalOptions::default()).unwrap();
        assert!(recovery.manifest.is_none());
        assert!(recovery.model.is_none());
        assert!(recovery.pending.is_empty());
        assert_eq!(recovery.snapshot_version(), 1);
        assert_eq!(store.next_index(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_reopen_replays_pending() {
        let dir = tmp_dir("pending");
        {
            let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
            let next = store
                .append_batch(&[cascade(0), cascade(10), cascade(20)])
                .unwrap();
            assert_eq!(next, 3);
        }
        let (store, recovery) = EventStore::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovery.replayed, 3);
        assert_eq!(recovery.pending.len(), 3);
        assert_eq!(recovery.pending[1].seed().node.0, 10);
        assert_eq!(store.next_index(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_splits_covered_from_pending() {
        let dir = tmp_dir("ckpt");
        {
            let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
            store.append_batch(&[cascade(0), cascade(10)]).unwrap();
            // Snapshot v5 covers the first two records…
            store.checkpoint(5, 2, &emb(0.5)).unwrap();
            // …then one more arrives after the checkpoint.
            store.append_batch(&[cascade(20)]).unwrap();
        }
        let (store, recovery) = EventStore::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovery.snapshot_version(), 5);
        let back = recovery.model.expect("checkpointed model");
        assert_eq!(back.backend_id(), "embed");
        let back = back
            .as_any()
            .downcast_ref::<viralcast_model::EmbeddingBackend>()
            .expect("embed backend");
        assert!(back.embeddings().max_abs_diff(emb(0.5).embeddings()) < 1e-12);
        assert_eq!(recovery.pending.len(), 1);
        assert_eq!(recovery.pending[0].seed().node.0, 20);
        assert_eq!(store.next_index(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_covered_segments() {
        let dir = tmp_dir("compact");
        let options = WalOptions {
            segment_bytes: 64,
            fsync: FsyncPolicy::OnRotate,
        };
        let (mut store, _) = EventStore::open(&dir, options).unwrap();
        for i in 0..9u32 {
            store.append_batch(&[cascade(i * 2)]).unwrap();
        }
        store.sync().unwrap();
        let segments_before = wal_segments(&dir);
        assert!(segments_before >= 3);
        store.checkpoint(2, store.next_index(), &emb(0.1)).unwrap();
        assert!(wal_segments(&dir) < segments_before);
        // Compaction never loses uncovered records: everything here was
        // covered, so a reopen has no pending work but full lineage.
        drop(store);
        let (_, recovery) = EventStore::open(&dir, options).unwrap();
        assert_eq!(recovery.snapshot_version(), 2);
        assert!(recovery.pending.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pending_records_track_the_checkpoint_frontier() {
        let dir = tmp_dir("lag");
        {
            let (mut store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
            assert_eq!(store.pending_records(), 0);
            store.append_batch(&[cascade(0), cascade(10)]).unwrap();
            assert_eq!(store.pending_records(), 2);
            store.checkpoint(2, 2, &emb(0.5)).unwrap();
            assert_eq!(store.pending_records(), 0);
            store.append_batch(&[cascade(20)]).unwrap();
            assert_eq!(store.pending_records(), 1);
        }
        // A reopen resumes the lag from the manifest, not from zero.
        let (store, _) = EventStore::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(store.pending_records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_naming_a_missing_checkpoint_is_an_error() {
        let dir = tmp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        Manifest {
            snapshot_version: 3,
            wal_offset: 0,
            embeddings_file: "checkpoint-3.bin".into(),
            backend: "embed".into(),
        }
        .save(&dir)
        .unwrap();
        let err = EventStore::open(&dir, WalOptions::default()).unwrap_err();
        assert!(err.to_string().contains("cannot be loaded"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn wal_segments(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("wal-") && name.ends_with(".log")
            })
            .count()
    }
}
