//! The acceptance scenario from the replica subsystem: a 2-shard
//! cluster with one follower per shard, fronted by the scatter-gather
//! router, keeps answering `/v1/predict` and `/v1/influencers` with
//! non-partial HTTP 200 responses *byte-identical* to the pre-kill
//! answers after any single leader dies. Daemons here are real serve
//! stacks on real sockets (the SIGKILL-a-process variant of the same
//! scenario runs in `scripts/ci.sh` as `smoke_replica`).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use viralcast_cluster::{start_router, ClusterManifest, RouterConfig};
use viralcast_replica::{start_follower, FollowerConfig};
use viralcast_serve::client::{self, RetryPolicy};
use viralcast_serve::{CascadeModel, RowBlock, ServeConfig, ServerHandle, TrainerConfig};

const NODES: usize = 6;
const TOPICS: usize = 2;

/// 6 nodes × 2 topics with distinct rows, so shard-local rankings are
/// non-trivial and merge order is fully determined.
fn embeddings() -> Arc<dyn CascadeModel> {
    let influence: Vec<f64> = (0..NODES * TOPICS).map(|i| 1.0 + i as f64 * 0.25).collect();
    let susceptibility: Vec<f64> = (0..NODES * TOPICS).map(|i| 0.5 + i as f64 * 0.1).collect();
    Arc::new(viralcast_model::EmbeddingBackend::new(
        viralcast_embed::Embeddings::from_matrices(NODES, TOPICS, influence, susceptibility),
    ))
}

fn leader(shard: usize) -> ServerHandle {
    viralcast_serve::start(
        embeddings(),
        Box::new(|model, _| Ok(Arc::clone(model))),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            trainer: TrainerConfig {
                interval: Duration::from_secs(3600),
                min_batch: usize::MAX,
            },
            shard: Some(RowBlock::round_robin(NODES, shard, 2).unwrap()),
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn follower(of: SocketAddr, shard: usize) -> viralcast_replica::FollowerHandle {
    start_follower(FollowerConfig {
        poll_interval: Duration::from_millis(50),
        boot_timeout: Duration::from_secs(10),
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shard: Some(RowBlock::round_robin(NODES, shard, 2).unwrap()),
            ..ServeConfig::default()
        },
        ..FollowerConfig::new(of)
    })
    .unwrap()
}

const PREDICT: &str = r#"{"cascade":[{"node":0,"time":0.0}],"top":4}"#;
const INFLUENCERS: &str = "/v1/influencers?top=4&topic=1";

#[test]
fn killing_one_leader_leaves_reads_non_partial_and_byte_identical() {
    let leaders = [leader(0), leader(1)];
    let followers = [
        follower(leaders[0].local_addr(), 0),
        follower(leaders[1].local_addr(), 1),
    ];
    let manifest =
        ClusterManifest::round_robin(&[leaders[0].local_addr(), leaders[1].local_addr()])
            .unwrap()
            .with_followers(vec![
                vec![followers[0].local_addr()],
                vec![followers[1].local_addr()],
            ])
            .unwrap();
    let router = start_router(
        manifest,
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            fanout_workers: 4,
            shard_timeout: Duration::from_secs(2),
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let addr = router.local_addr();

    // The reference answers, with every daemon alive.
    let pre_predict = client::request(&addr, "POST", "/v1/predict", Some(PREDICT)).unwrap();
    let pre_influencers = client::request(&addr, "GET", INFLUENCERS, None).unwrap();
    assert_eq!(pre_predict.status, 200, "{}", pre_predict.body);
    assert_eq!(pre_influencers.status, 200, "{}", pre_influencers.body);
    assert!(
        pre_predict.body.contains(r#""partial":false"#),
        "{}",
        pre_predict.body
    );
    assert!(
        pre_influencers.body.contains(r#""partial":false"#),
        "{}",
        pre_influencers.body
    );

    // Kill shard 0's leader. Reads must stay non-partial (the follower
    // answers for shard 0) and byte-identical to the pre-kill bodies —
    // repeatedly, so rotation across replicas never changes the answer.
    let [dead, alive] = leaders;
    dead.shutdown();
    for _ in 0..4 {
        let predict = client::request(&addr, "POST", "/v1/predict", Some(PREDICT)).unwrap();
        assert_eq!(predict.status, 200, "{}", predict.body);
        assert_eq!(predict.body, pre_predict.body);
        let influencers = client::request(&addr, "GET", INFLUENCERS, None).unwrap();
        assert_eq!(influencers.status, 200, "{}", influencers.body);
        assert_eq!(influencers.body, pre_influencers.body);
    }

    // Ingest still routes to the surviving leader through the router…
    let ingest = client::request(
        &addr,
        "POST",
        "/v1/ingest",
        Some(r#"{"cascades":[[{"node":1,"time":0.0},{"node":2,"time":1.0}]]}"#),
    )
    .unwrap();
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    assert!(ingest.body.contains(r#""accepted":1"#), "{}", ingest.body);

    // …while the follower itself refuses writes with a leader redirect.
    let refused = client::request(
        &followers[0].local_addr(),
        "POST",
        "/v1/ingest",
        Some(r#"{"cascades":[[{"node":1,"time":0.0}]]}"#),
    )
    .unwrap();
    assert_eq!(refused.status, 409, "{}", refused.body);
    assert!(
        refused.header("Location").unwrap().ends_with("/v1/ingest"),
        "{:?}",
        refused.headers
    );

    // Followers report bounded lag in their own /healthz.
    let health = client::request(&followers[1].local_addr(), "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.body.contains(r#""replica_lag_versions":0"#),
        "{}",
        health.body
    );
    assert!(
        health
            .body
            .contains(&format!(r#""leader":"{}""#, alive.local_addr())),
        "{}",
        health.body
    );

    router.shutdown();
    for f in followers {
        f.shutdown();
    }
    alive.shutdown();
}
