//! `viralcast-replica`: snapshot replication for the serve cluster.
//!
//! A leader daemon already exposes its current model as a VCCKPT01
//! checkpoint stream on `GET /v1/replica/snapshot` (see
//! `viralcast_serve::router`). This crate is the other half: a
//! *follower* that boots by fetching that stream, serves reads from it
//! through the ordinary serve stack, and keeps itself fresh by polling
//! the leader with capped exponential backoff, hot-swapping each new
//! version through [`SnapshotStore::publish_version`].
//!
//! A follower is deliberately dumb: it never trains (the trainer thread
//! is not spawned), never persists (no data directory — the leader owns
//! the durable lineage), and never accepts writes (`/v1/ingest` answers
//! 409 with a `Location` redirect to the leader). What it does do is
//! scale reads: the cluster router fans `/v1/predict` and
//! `/v1/influencers` across a shard's leader *and* followers, and fails
//! over to a follower when the leader dies — reads stay non-partial
//! through a leader crash.
//!
//! Replication is pull-based and versioned, not a log: the follower
//! asks `?have=N` and the leader answers `304 Not Modified` or a full
//! snapshot tagged `X-Replica-Version`. Snapshots are small (the model,
//! not the event history), which buys crash-trivial semantics — a
//! follower that restarts just fetches again — at the cost of
//! re-sending the full model per version. `/healthz` and `/metrics` on
//! the follower report `replica_lag_versions` / `replica_lag_ms` so
//! operators can see staleness.

#![warn(missing_docs)]

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use viralcast_obs as obs;
use viralcast_serve::client;
use viralcast_serve::replica::{ReplicaRole, ReplicaStatus};
use viralcast_serve::router::{REPLICA_BACKEND_HEADER, REPLICA_VERSION_HEADER};
use viralcast_serve::snapshot::SnapshotStore;
use viralcast_serve::{CascadeModel, ServeConfig, ServerHandle};

/// The serve crate, re-exported so follower callers reach
/// [`viralcast_serve::ServeConfig`] and friends without a separate
/// dependency.
pub use viralcast_serve as serve;

/// How long the poller sleeps per slice while waiting out an interval,
/// so shutdown stays responsive.
const SLEEP_SLICE: Duration = Duration::from_millis(25);

/// One snapshot fetched from a leader.
pub struct FetchedSnapshot {
    /// The decoded model.
    pub model: Arc<dyn CascadeModel>,
    /// The leader's snapshot version for this model.
    pub version: u64,
    /// The backend id the leader tagged the payload with.
    pub backend: String,
}

/// The outcome of one replication poll.
pub enum Poll {
    /// The leader is still on the version we already have.
    NotModified {
        /// The leader's current version (equals the `have` we sent).
        version: u64,
    },
    /// The leader has a newer snapshot.
    Snapshot(FetchedSnapshot),
}

/// Fetches the leader's current snapshot (or a 304 when `have` is
/// already current) from `GET /v1/replica/snapshot`.
///
/// # Errors
/// Connection failures, non-200/304 statuses, missing version/backend
/// headers, and undecodable payloads all surface as strings — the
/// caller (the poll loop) treats every error the same way: back off and
/// retry.
pub fn poll_snapshot(
    leader: &SocketAddr,
    have: Option<u64>,
    timeout: Duration,
) -> Result<Poll, String> {
    let target = match have {
        Some(v) => format!("/v1/replica/snapshot?have={v}"),
        None => "/v1/replica/snapshot".to_string(),
    };
    let raw = client::request_bytes(leader, "GET", &target, None, &[], timeout)
        .map_err(|e| format!("leader {leader} unreachable: {e}"))?;
    if raw.status != 200 && raw.status != 304 {
        return Err(format!(
            "leader {leader} answered {} to a snapshot poll",
            raw.status
        ));
    }
    let version = raw
        .header(REPLICA_VERSION_HEADER)
        .ok_or_else(|| format!("leader {leader} sent no {REPLICA_VERSION_HEADER} header"))?
        .parse::<u64>()
        .map_err(|e| format!("leader {leader} sent a malformed version: {e}"))?;
    match raw.status {
        304 => Ok(Poll::NotModified { version }),
        _ => {
            let backend = raw
                .header(REPLICA_BACKEND_HEADER)
                .ok_or_else(|| format!("leader {leader} sent no {REPLICA_BACKEND_HEADER} header"))?
                .to_string();
            let model = viralcast_store::decode_checkpoint(&raw.body, &backend)
                .map_err(|e| format!("leader {leader} snapshot v{version} undecodable: {e}"))?;
            Ok(Poll::Snapshot(FetchedSnapshot {
                model,
                version,
                backend,
            }))
        }
    }
}

/// Follower configuration.
pub struct FollowerConfig {
    /// The leader to replicate from.
    pub leader: SocketAddr,
    /// Steady-state cadence of the `?have=N` poll.
    pub poll_interval: Duration,
    /// Backoff cap when the leader is unreachable (doubles from
    /// `poll_interval` up to this).
    pub max_backoff: Duration,
    /// How long the initial snapshot fetch keeps retrying before
    /// [`start_follower`] gives up.
    pub boot_timeout: Duration,
    /// Per-request timeout on snapshot fetches.
    pub fetch_timeout: Duration,
    /// The serve stack the follower answers reads from. `data_dir` and
    /// `replica` are overridden: followers are in-memory and get their
    /// role installed by [`start_follower`].
    pub serve: ServeConfig,
}

impl FollowerConfig {
    /// A follower of `leader` with default pacing, serving on an
    /// ephemeral port.
    pub fn new(leader: SocketAddr) -> FollowerConfig {
        FollowerConfig {
            leader,
            poll_interval: Duration::from_millis(250),
            max_backoff: Duration::from_secs(5),
            boot_timeout: Duration::from_secs(30),
            fetch_timeout: Duration::from_secs(5),
            serve: ServeConfig::default(),
        }
    }
}

/// A running follower: the serve stack plus the replication poller.
/// Call [`FollowerHandle::shutdown`] to stop both; dropping the handle
/// does not.
pub struct FollowerHandle {
    server: ServerHandle,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    poller: Option<JoinHandle<()>>,
}

impl FollowerHandle {
    /// The address the follower's listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The snapshot store serving reads (the poller publishes into it).
    pub fn snapshots(&self) -> Arc<SnapshotStore> {
        self.server.snapshots()
    }

    /// The shared lag bookkeeping (`/healthz` reads the same instance).
    pub fn status(&self) -> Arc<ReplicaStatus> {
        Arc::clone(&self.status)
    }

    /// Graceful stop: halts the poller, then the serve stack.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(poller) = self.poller.take() {
            let _ = poller.join();
        }
        self.server.shutdown();
    }
}

/// Boots a follower: fetches the leader's snapshot (retrying with
/// capped backoff until `boot_timeout`), starts the serve stack in
/// follower role at the leader's version, and spawns the poll loop.
///
/// # Errors
/// Fails with `TimedOut` when no snapshot could be fetched within
/// `boot_timeout`, plus the usual serve bind failures.
pub fn start_follower(config: FollowerConfig) -> io::Result<FollowerHandle> {
    let FollowerConfig {
        leader,
        poll_interval,
        max_backoff,
        boot_timeout,
        fetch_timeout,
        serve: mut serve_config,
    } = config;

    let deadline = Instant::now() + boot_timeout;
    let mut backoff = poll_interval;
    let boot = loop {
        match poll_snapshot(&leader, None, fetch_timeout) {
            Ok(Poll::Snapshot(snapshot)) => break snapshot,
            Ok(Poll::NotModified { .. }) => {
                // Unreachable without `have`, but harmless: retry.
            }
            Err(e) => {
                obs::metrics().counter("replica.poll_errors").incr(1);
                obs::warn("replica", &format!("boot fetch failed: {e}"), &[]);
            }
        }
        if Instant::now() + backoff > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no snapshot from leader {leader} within {boot_timeout:?}"),
            ));
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(max_backoff);
    };

    let role = ReplicaRole::new(leader, boot.version);
    let status = Arc::clone(&role.status);
    serve_config.replica = Some(role);
    // Followers are in-memory: the leader owns the durable lineage, and
    // a restarting follower re-fetches instead of recovering.
    serve_config.data_dir = None;
    let server = viralcast_serve::start(
        Arc::clone(&boot.model),
        Box::new(|model, _| Ok(Arc::clone(model))),
        serve_config,
    )?;
    // The store boots at version 1; adopt the leader's version so
    // follower and leader report the same lineage from the first read.
    server.snapshots().publish_version(boot.model, boot.version);
    obs::info(
        "replica",
        &format!(
            "following {leader} from snapshot v{} ({} backend)",
            boot.version, boot.backend
        ),
        &[],
    );

    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&stop);
        let status = Arc::clone(&status);
        let snapshots = server.snapshots();
        std::thread::Builder::new()
            .name("replica-poller".into())
            .spawn(move || {
                poll_loop(
                    &leader,
                    &snapshots,
                    &status,
                    &stop,
                    poll_interval,
                    max_backoff,
                    fetch_timeout,
                );
            })?
    };

    Ok(FollowerHandle {
        server,
        status,
        stop,
        poller: Some(poller),
    })
}

/// The steady-state replication loop: poll `?have=applied`, publish
/// anything newer, and back off (capped doubling) while the leader is
/// unreachable.
fn poll_loop(
    leader: &SocketAddr,
    snapshots: &SnapshotStore,
    status: &ReplicaStatus,
    stop: &AtomicBool,
    poll_interval: Duration,
    max_backoff: Duration,
    fetch_timeout: Duration,
) {
    let mut wait = poll_interval;
    loop {
        let deadline = Instant::now() + wait;
        while Instant::now() < deadline {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(SLEEP_SLICE.min(deadline.saturating_duration_since(Instant::now())));
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match poll_snapshot(leader, Some(status.applied_version()), fetch_timeout) {
            Ok(Poll::NotModified { version }) => {
                status.observe_leader(version);
                wait = poll_interval;
            }
            Ok(Poll::Snapshot(snapshot)) => {
                status.observe_leader(snapshot.version);
                let adopted = snapshots.publish_version(snapshot.model, snapshot.version);
                status.record_applied(adopted);
                obs::metrics().counter("replica.snapshots_applied").incr(1);
                wait = poll_interval;
            }
            Err(e) => {
                obs::metrics().counter("replica.poll_errors").incr(1);
                obs::warn("replica", &format!("poll failed: {e}"), &[]);
                wait = (wait * 2).min(max_backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_serve::TrainerConfig;

    fn embeddings() -> Arc<dyn CascadeModel> {
        Arc::new(viralcast_model::EmbeddingBackend::new(
            viralcast_embed::Embeddings::from_matrices(
                3,
                1,
                vec![1.0, 0.5, 0.0],
                vec![1.0, 1.0, 1.0],
            ),
        ))
    }

    fn leader_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            trainer: TrainerConfig {
                interval: Duration::from_secs(3600),
                min_batch: usize::MAX,
            },
            ..ServeConfig::default()
        }
    }

    fn follower_config(leader: SocketAddr) -> FollowerConfig {
        FollowerConfig {
            poll_interval: Duration::from_millis(30),
            boot_timeout: Duration::from_secs(5),
            serve: ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                ..ServeConfig::default()
            },
            ..FollowerConfig::new(leader)
        }
    }

    #[test]
    fn follower_boots_from_the_leader_and_applies_new_versions() {
        let leader = viralcast_serve::start(
            embeddings(),
            Box::new(|model, _| Ok(Arc::clone(model))),
            leader_config(),
        )
        .unwrap();
        let follower = start_follower(follower_config(leader.local_addr())).unwrap();

        // Booted at the leader's version with the leader's model.
        assert_eq!(follower.snapshots().version(), leader.snapshots().version());
        assert_eq!(follower.snapshots().current().model.node_count(), 3);
        assert_eq!(follower.status().lag_versions(), 0);

        // A new leader version flows over within a few poll intervals.
        let bumped = leader.snapshots().publish(embeddings());
        let deadline = Instant::now() + Duration::from_secs(5);
        while follower.status().applied_version() < bumped {
            assert!(Instant::now() < deadline, "follower never caught up");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(follower.snapshots().version(), bumped);
        assert_eq!(follower.status().lag_versions(), 0);

        follower.shutdown();
        leader.shutdown();
    }

    #[test]
    fn poll_reports_not_modified_when_the_follower_is_current() {
        let leader = viralcast_serve::start(
            embeddings(),
            Box::new(|model, _| Ok(Arc::clone(model))),
            leader_config(),
        )
        .unwrap();
        let addr = leader.local_addr();
        let version = leader.snapshots().version();
        match poll_snapshot(&addr, Some(version), Duration::from_secs(2)).unwrap() {
            Poll::NotModified { version: v } => assert_eq!(v, version),
            Poll::Snapshot(_) => panic!("expected 304 when already current"),
        }
        match poll_snapshot(&addr, Some(version - 1), Duration::from_secs(2)).unwrap() {
            Poll::Snapshot(snapshot) => {
                assert_eq!(snapshot.version, version);
                assert_eq!(snapshot.backend, "embed");
                assert_eq!(snapshot.model.node_count(), 3);
            }
            Poll::NotModified { .. } => panic!("expected a snapshot for a stale have"),
        }
        leader.shutdown();
    }

    #[test]
    fn boot_fails_fast_when_no_leader_answers() {
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap();
        match start_follower(FollowerConfig {
            poll_interval: Duration::from_millis(10),
            boot_timeout: Duration::from_millis(200),
            fetch_timeout: Duration::from_millis(100),
            ..FollowerConfig::new(dead)
        }) {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::TimedOut),
            Ok(_) => panic!("boot against a dead leader must fail"),
        }
    }
}
