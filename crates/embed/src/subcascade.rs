//! Sub-cascade extraction — Algorithm 1, lines 1–11.
//!
//! "At the beginning, each cascade is divided into multiple sub-cascades
//! according to the node memberships." A sub-cascade keeps only the
//! infections of nodes in one community, preserving their relative
//! times, and is expressed in *local row indices* so that a worker
//! holding a community's matrix block can apply gradients without any
//! global indexing.

use std::ops::Range;
use viralcast_community::MergeHierarchy;
use viralcast_obs as obs;
use viralcast_propagation::{Cascade, CascadeSet};

/// Bucket bounds for the per-cascade split fan-out histogram
/// (`split.fanout` — how many sub-cascades one cascade produced).
const FANOUT_BOUNDS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// A cascade over local matrix rows: `rows[i]` was infected at
/// `times[i]`, times non-decreasing.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexedCascade {
    /// Local row indices, parallel to `times`.
    pub rows: Vec<u32>,
    /// Infection times, non-decreasing.
    pub times: Vec<f64>,
}

impl IndexedCascade {
    /// Number of infections.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the sub-cascade is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Builds from a full cascade with the identity node → row mapping
    /// (sequential inference over the whole matrix).
    pub fn from_cascade(c: &Cascade) -> Self {
        IndexedCascade {
            rows: c.infections().iter().map(|i| i.node.0).collect(),
            times: c.infections().iter().map(|i| i.time).collect(),
        }
    }
}

/// Splits every cascade of `set` into per-group sub-cascades for the
/// given hierarchy level. Returns one `Vec<IndexedCascade>` per group
/// (same order as [`MergeHierarchy::node_ranges`]); sub-cascades shorter
/// than two infections are dropped because they carry no likelihood
/// terms (the seed's own infection is conditioned on, not modelled).
pub fn split_cascades(
    set: &CascadeSet,
    hierarchy: &MergeHierarchy,
    level: usize,
) -> Vec<Vec<IndexedCascade>> {
    let ranges = hierarchy.node_ranges(level);
    split_cascades_by_ranges(set, hierarchy, &ranges)
}

/// As [`split_cascades`], for explicit position ranges (must be sorted
/// and disjoint, as produced by the hierarchy).
pub fn split_cascades_by_ranges(
    set: &CascadeSet,
    hierarchy: &MergeHierarchy,
    ranges: &[Range<usize>],
) -> Vec<Vec<IndexedCascade>> {
    let _span = obs::Span::enter("split");
    let fanout_hist = obs::metrics().histogram("split.fanout", &FANOUT_BOUNDS);
    let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
    let mut out: Vec<Vec<IndexedCascade>> = vec![Vec::new(); ranges.len()];
    // Scratch buffers reused across cascades.
    let mut buckets: Vec<IndexedCascade> = ranges
        .iter()
        .map(|_| IndexedCascade {
            rows: Vec::new(),
            times: Vec::new(),
        })
        .collect();
    for cascade in set.cascades() {
        for inf in cascade.infections() {
            let pos = hierarchy.position_of(inf.node);
            // Group index: last range starting at or before pos.
            let g = match starts.binary_search(&pos) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            debug_assert!(ranges[g].contains(&pos));
            buckets[g].rows.push((pos - ranges[g].start) as u32);
            buckets[g].times.push(inf.time);
        }
        let mut fanout = 0u64;
        for (g, bucket) in buckets.iter_mut().enumerate() {
            if bucket.len() >= 2 {
                out[g].push(bucket.clone());
                fanout += 1;
            }
            bucket.rows.clear();
            bucket.times.clear();
        }
        fanout_hist.record(fanout as f64);
    }
    obs::metrics()
        .counter("split.subcascades")
        .incr(out.iter().map(|g| g.len() as u64).sum());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use viralcast_community::{Balance, Partition};
    use viralcast_propagation::Infection;

    fn cascade(pairs: &[(u32, f64)]) -> Cascade {
        Cascade::new(pairs.iter().map(|&(n, t)| Infection::new(n, t)).collect()).unwrap()
    }

    /// 6 nodes, communities {0,1,2} and {3,4,5}.
    fn hierarchy() -> MergeHierarchy {
        MergeHierarchy::build(
            Partition::from_membership(&[0, 0, 0, 1, 1, 1]),
            Balance::LeafCount,
        )
    }

    #[test]
    fn identity_mapping_from_cascade() {
        let c = cascade(&[(4, 0.0), (1, 1.0)]);
        let ic = IndexedCascade::from_cascade(&c);
        assert_eq!(ic.rows, vec![4, 1]);
        assert_eq!(ic.times, vec![0.0, 1.0]);
    }

    #[test]
    fn split_respects_memberships() {
        let h = hierarchy();
        let set = CascadeSet::new(6, vec![cascade(&[(0, 0.0), (3, 1.0), (1, 2.0), (4, 3.0)])]);
        let groups = split_cascades(&set, &h, 0);
        assert_eq!(groups.len(), 2);
        // Community 0 sub-cascade: nodes 0, 1 at times 0, 2.
        assert_eq!(groups[0].len(), 1);
        assert_eq!(groups[0][0].times, vec![0.0, 2.0]);
        // Community 1 sub-cascade: nodes 3, 4 at times 1, 3.
        assert_eq!(groups[1].len(), 1);
        assert_eq!(groups[1][0].times, vec![1.0, 3.0]);
    }

    #[test]
    fn rows_are_local_to_the_block() {
        let h = hierarchy();
        let set = CascadeSet::new(6, vec![cascade(&[(3, 0.0), (5, 1.0)])]);
        let groups = split_cascades(&set, &h, 0);
        // Positions of 3 and 5 within the second block are local (0-based).
        assert!(groups[0].is_empty());
        let sc = &groups[1][0];
        assert!(
            sc.rows.iter().all(|&r| r < 3),
            "rows {:?} not local",
            sc.rows
        );
    }

    #[test]
    fn singleton_subcascades_dropped() {
        let h = hierarchy();
        // One infection in each community: both sub-cascades have size 1.
        let set = CascadeSet::new(6, vec![cascade(&[(0, 0.0), (3, 1.0)])]);
        let groups = split_cascades(&set, &h, 0);
        assert!(groups[0].is_empty());
        assert!(groups[1].is_empty());
    }

    #[test]
    fn top_level_keeps_whole_cascades() {
        let h = hierarchy();
        let set = CascadeSet::new(6, vec![cascade(&[(0, 0.0), (3, 1.0), (5, 2.0)])]);
        let top = h.level_count() - 1;
        let groups = split_cascades(&set, &h, top);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0][0].len(), 3);
        assert_eq!(groups[0][0].times, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn times_stay_sorted_in_subcascades() {
        let h = hierarchy();
        let set = CascadeSet::new(
            6,
            vec![cascade(&[(5, 0.5), (0, 1.0), (4, 2.0), (2, 3.0), (1, 4.0)])],
        );
        for group in split_cascades(&set, &h, 0) {
            for sc in group {
                assert!(sc.times.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn infection_counts_preserved_at_top_level() {
        let h = hierarchy();
        let set = CascadeSet::new(
            6,
            vec![
                cascade(&[(0, 0.0), (1, 1.0), (3, 2.0)]),
                cascade(&[(2, 0.0), (4, 1.0)]),
            ],
        );
        let top = h.level_count() - 1;
        let groups = split_cascades(&set, &h, top);
        let total: usize = groups[0].iter().map(|sc| sc.len()).sum();
        assert_eq!(total, set.total_infections());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use viralcast_community::{Balance, Partition};
    use viralcast_propagation::Infection;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Splitting conserves infections, modulo dropped singletons,
        /// and all rows stay inside their block.
        #[test]
        fn split_conserves_infections(
            membership in prop::collection::vec(0usize..4, 8..16),
            infs in prop::collection::btree_map(0usize..8, 0.0f64..10.0, 2..8),
        ) {
            let n = membership.len();
            let h = MergeHierarchy::build(
                Partition::from_membership(&membership),
                Balance::LeafCount,
            );
            let c = Cascade::new(
                infs.iter().map(|(&u, &t)| Infection::new(u as u32, t)).collect()
            ).unwrap();
            let set = CascadeSet::new(n, vec![c.clone()]);
            for level in 0..h.level_count() {
                let ranges = h.node_ranges(level);
                let groups = split_cascades(&set, &h, level);
                let kept: usize = groups.iter().flatten().map(|sc| sc.len()).sum();
                prop_assert!(kept <= c.len());
                for (g, group) in groups.iter().enumerate() {
                    for sc in group {
                        prop_assert!(sc.len() >= 2);
                        let width = ranges[g].len() as u32;
                        prop_assert!(sc.rows.iter().all(|&r| r < width));
                        prop_assert!(sc.times.windows(2).all(|w| w[0] <= w[1]));
                    }
                }
            }
            // At the top level nothing is dropped (single group holds all).
            let top = h.level_count() - 1;
            let groups = split_cascades(&set, &h, top);
            let kept: usize = groups.iter().flatten().map(|sc| sc.len()).sum();
            prop_assert_eq!(kept, c.len());
        }
    }
}
